//! Parallel-iterator API mapped onto sequential execution.
//!
//! Every `par_*` entry point returns [`Par`], a thin wrapper around a
//! standard sequential iterator. `Par` deliberately does **not** implement
//! [`Iterator`]: rayon's adaptor signatures differ from std's where it
//! matters (`reduce` and `fold` take an identity closure, `min`/`max`
//! variants mirror rayon), so exposing rayon's names on a distinct type
//! keeps call sites source-compatible with the real crate.

/// A "parallel" iterator executing sequentially on the calling thread.
pub struct Par<I>(I);

/// `Par` unwraps back into its sequential iterator, which both lets a
/// `Par` be consumed by a `for` loop and makes the blanket
/// [`IntoParallelIterator`] impl cover `Par` itself (needed when one
/// parallel iterator is passed to another's `zip`/`chain`). Rayon's
/// adaptor methods stay unambiguous because inherent methods take
/// precedence over `Iterator`'s.
impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Marker mirroring `rayon::iter::ParallelIterator`.
pub trait ParallelIterator {}
impl<I: Iterator> ParallelIterator for Par<I> {}

/// Marker mirroring `rayon::iter::IndexedParallelIterator`.
pub trait IndexedParallelIterator {}
impl<I: ExactSizeIterator> IndexedParallelIterator for Par<I> {}

impl<I: Iterator> Par<I> {
    // ---- adaptors (lazy, return Par) -------------------------------------

    /// Maps each element through `f`.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Keeps elements matching `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(pred))
    }

    /// Maps and filters in one pass.
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    /// Maps each element to an iterable and flattens.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, O, F>> {
        Par(self.0.flat_map(f))
    }

    /// Maps each element to a *sequential* iterable and flattens (rayon
    /// distinguishes this from `flat_map`; sequentially they coincide).
    pub fn flat_map_iter<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, O, F>> {
        Par(self.0.flat_map(f))
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Zips with another parallel iterator.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::SeqIter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    /// Chains another parallel iterator after this one.
    pub fn chain<C: IntoParallelIterator<Item = I::Item>>(
        self,
        other: C,
    ) -> Par<std::iter::Chain<I, C::SeqIter>> {
        Par(self.0.chain(other.into_par_iter().0))
    }

    /// Copies referenced elements.
    pub fn copied<'a, T: 'a + Copy>(self) -> Par<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.copied())
    }

    /// Clones referenced elements.
    pub fn cloned<'a, T: 'a + Clone>(self) -> Par<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.cloned())
    }

    /// Takes the first `n` elements.
    pub fn take(self, n: usize) -> Par<std::iter::Take<I>> {
        Par(self.0.take(n))
    }

    /// Skips the first `n` elements.
    pub fn skip(self, n: usize) -> Par<std::iter::Skip<I>> {
        Par(self.0.skip(n))
    }

    /// Steps by `n`.
    pub fn step_by(self, n: usize) -> Par<std::iter::StepBy<I>> {
        Par(self.0.step_by(n))
    }

    /// Hints the minimum work-splitting granularity (no-op here).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Hints the maximum work-splitting granularity (no-op here).
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Groups elements into `Vec` chunks of at most `n`.
    pub fn chunks(self, n: usize) -> Par<std::vec::IntoIter<Vec<I::Item>>> {
        assert!(n > 0, "chunk size must be non-zero");
        let mut out: Vec<Vec<I::Item>> = Vec::new();
        let mut cur = Vec::with_capacity(n);
        for item in self.0 {
            cur.push(item);
            if cur.len() == n {
                out.push(std::mem::replace(&mut cur, Vec::with_capacity(n)));
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        Par(out.into_iter())
    }

    /// Rayon-style fold: produces per-"thread" accumulators (exactly one
    /// here), to be consumed by a following reduction.
    pub fn fold<ACC, ID, F>(self, identity: ID, fold_op: F) -> Par<std::iter::Once<ACC>>
    where
        ID: Fn() -> ACC,
        F: FnMut(ACC, I::Item) -> ACC,
    {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    // ---- consumers -------------------------------------------------------

    /// Calls `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Calls `f` on every element with a per-"thread" mutable seed.
    pub fn for_each_with<T: Clone, F: FnMut(&mut T, I::Item)>(self, mut init: T, mut f: F) {
        self.0.for_each(|item| f(&mut init, item));
    }

    /// Rayon-style reduce with an identity element.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sums the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Minimum element, `None` when empty.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum element, `None` when empty.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum element by key, `None` when empty.
    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.min_by_key(f)
    }

    /// Maximum element by key, `None` when empty.
    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.max_by_key(f)
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collects into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Unzips pairs into two collections.
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        I: Iterator<Item = (A, B)>,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        self.0.unzip()
    }

    /// Whether any element matches (rayon: `any`).
    pub fn any<F: FnMut(I::Item) -> bool>(self, mut pred: F) -> bool {
        for item in self.0 {
            if pred(item) {
                return true;
            }
        }
        false
    }

    /// Whether all elements match (rayon: `all`).
    pub fn all<F: FnMut(I::Item) -> bool>(self, mut pred: F) -> bool {
        for item in self.0 {
            if !pred(item) {
                return false;
            }
        }
        true
    }

    /// Some element matching `pred`, if any (order unspecified upstream).
    pub fn find_any<F: FnMut(&I::Item) -> bool>(mut self, mut pred: F) -> Option<I::Item> {
        self.0.find(|x| pred(x))
    }

    /// The first element matching `pred`, if any.
    pub fn find_first<F: FnMut(&I::Item) -> bool>(mut self, mut pred: F) -> Option<I::Item> {
        self.0.find(|x| pred(x))
    }

    /// Index of some element matching `pred` (order unspecified upstream).
    pub fn position_any<F: FnMut(I::Item) -> bool>(mut self, pred: F) -> Option<usize> {
        self.0.position(pred)
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator type.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Converts `self` into a "parallel" (here: sequential) iterator.
    fn into_par_iter(self) -> Par<Self::SeqIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type SeqIter = T::IntoIter;
    fn into_par_iter(self) -> Par<Self::SeqIter> {
        Par(self.into_iter())
    }
}

/// `par_iter()` for shared references.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a shared reference, for collections).
    type Item: 'data;
    /// Underlying sequential iterator type.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Iterates `&self` "in parallel" (here: sequentially).
    fn par_iter(&'data self) -> Par<Self::SeqIter>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
{
    type Item = <&'data T as IntoIterator>::Item;
    type SeqIter = <&'data T as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Par<Self::SeqIter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut()` for exclusive references.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (an exclusive reference, for collections).
    type Item: 'data;
    /// Underlying sequential iterator type.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Iterates `&mut self` "in parallel" (here: sequentially).
    fn par_iter_mut(&'data mut self) -> Par<Self::SeqIter>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoIterator,
{
    type Item = <&'data mut T as IntoIterator>::Item;
    type SeqIter = <&'data mut T as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> Par<Self::SeqIter> {
        Par(self.into_iter())
    }
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T> {
    /// `chunks(chunk_size)`, nominally in parallel.
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
    /// `windows(window_size)`, nominally in parallel.
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>> {
        Par(self.windows(window_size))
    }
}

/// Chunked traversal of exclusive slices.
pub trait ParallelSliceMut<T> {
    /// `chunks_mut(chunk_size)`, nominally in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
}
