//! Parallel-iterator API over a splittable-producer execution engine.
//!
//! Entry points (`par_iter`, `into_par_iter`, `par_chunks{,_mut}`, ...)
//! return [`Par`], a wrapper around a [`Producer`] — a data source that can
//! be **split at an index** into two independent producers. Consumers
//! (`for_each`, `collect`, `reduce`, `sum`, ...) split the producer into a
//! bounded number of pieces (a few per pool worker), run each piece's
//! sequential iterator as a job on the current thread pool, and combine the
//! per-piece results **in piece order**, so outputs are bit-identical to
//! sequential execution for any deterministic chain.
//!
//! Length-preserving adaptors (`map`, `enumerate`, `zip`, `take`, `skip`,
//! `copied`, `cloned`) stay indexed and parallel. Length-changing adaptors
//! (`filter`, `filter_map`, `flat_map`, `flat_map_iter`) remain parallel by
//! splitting in *base* coordinates, but lose indexedness (no `enumerate`/
//! `zip` downstream — same as upstream rayon). The remaining rarely-used
//! adaptors (`chain`, `step_by`, `chunks`, `fold`) degrade to [`SeqPar`], a
//! sequential fallback that keeps the full rayon method surface compiling;
//! order-sensitive searches (`find_first`, `position_any`, `min_by_key`,
//! ...) also run sequentially.
//!
//! `Par` deliberately does **not** implement [`Iterator`]: rayon's adaptor
//! signatures differ from std's where it matters (`reduce`/`fold` take an
//! identity closure, `min`/`max` variants mirror rayon), so exposing
//! rayon's names on a distinct type keeps call sites source-compatible
//! with the real crate.

use crate::pool;
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The producer model
// ---------------------------------------------------------------------------

/// A splittable data source: the engine divides producers at `split_at`
/// boundaries and runs each piece's sequential iterator on a pool worker.
pub trait Producer: Sized + Send {
    /// Item type yielded by a piece's iterator.
    type Item: Send;
    /// Sequential iterator over one piece.
    type IntoIter: Iterator<Item = Self::Item>;
    /// Number of splittable units. Exact for [`IndexedProducer`]s; an upper
    /// bound (base-coordinate count) for filtering adaptors.
    fn len_hint(&self) -> usize;
    /// Splits into the units `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Degrades into a sequential iterator over the remaining units.
    fn into_seq(self) -> Self::IntoIter;
}

/// Marker for producers whose `len_hint` is exact and whose items map 1:1
/// to splittable units — the requirement behind `enumerate`, `zip`, `take`
/// and `skip`.
pub trait IndexedProducer: Producer {}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

/// How many pieces to cut a producer into for the given pool width.
///
/// Few-item producers (the per-block patterns in `gpu-sim`, where each item
/// is a whole block of work) get one piece per item; long producers get a
/// handful of pieces per worker so the tail imbalance stays small without
/// oversubscribing the queue.
fn piece_target(len: usize, threads: usize) -> usize {
    if threads <= 1 || len <= 1 {
        1
    } else if len <= threads * 8 {
        len
    } else {
        threads * 4
    }
}

fn split_rec<P: Producer>(producer: P, target: usize, out: &mut Vec<P>) {
    let len = producer.len_hint();
    if target <= 1 || len <= 1 {
        out.push(producer);
        return;
    }
    let left_target = target / 2;
    let mid = len * left_target / target;
    if mid == 0 || mid == len {
        out.push(producer);
        return;
    }
    let (left, right) = producer.split_at(mid);
    split_rec(left, left_target, out);
    split_rec(right, target - left_target, out);
}

/// Splits `producer` into pieces, runs `work` on every piece (in parallel
/// when the current pool has more than one worker), and returns the piece
/// results in source order.
fn run_pieces<P, R, W>(producer: P, work: &W) -> Vec<R>
where
    P: Producer,
    R: Send,
    W: Fn(P) -> R + Sync,
{
    let pool = pool::current_pool();
    let target = piece_target(producer.len_hint(), pool.num_threads());
    if target <= 1 {
        return vec![work(producer)];
    }
    let mut pieces = Vec::with_capacity(target);
    split_rec(producer, target, &mut pieces);
    if pieces.len() <= 1 {
        return pieces.into_iter().map(work).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = pieces.iter().map(|_| Mutex::new(None)).collect();
    pool::scope_impl(&pool, |s| {
        for (piece, slot) in pieces.into_iter().zip(&slots) {
            s.spawn(move |_| {
                *slot.lock() = Some(work(piece));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("piece job completed"))
        .collect()
}

// ---------------------------------------------------------------------------
// Par: the parallel iterator
// ---------------------------------------------------------------------------

/// A parallel iterator: a [`Producer`] plus rayon's adaptor/consumer API.
pub struct Par<P: Producer> {
    producer: P,
}

/// `Par` unwraps into its piece iterator, which lets a `Par` be consumed by
/// a `for` loop and by the sequential fallbacks below.
impl<P: Producer> IntoIterator for Par<P> {
    type Item = P::Item;
    type IntoIter = P::IntoIter;
    fn into_iter(self) -> P::IntoIter {
        self.producer.into_seq()
    }
}

/// Marker mirroring `rayon::iter::ParallelIterator`.
pub trait ParallelIterator {}
impl<P: Producer> ParallelIterator for Par<P> {}
impl<I: Iterator> ParallelIterator for SeqPar<I> {}

/// Marker mirroring `rayon::iter::IndexedParallelIterator`.
pub trait IndexedParallelIterator {}
impl<P: IndexedProducer> IndexedParallelIterator for Par<P> {}
impl<I: ExactSizeIterator> IndexedParallelIterator for SeqPar<I> {}

impl<P: Producer> Par<P> {
    // ---- adaptors (lazy, stay parallel) ----------------------------------

    /// Maps each element through `f`.
    pub fn map<O, F>(self, f: F) -> Par<MapProducer<P, F>>
    where
        O: Send,
        F: Fn(P::Item) -> O + Send + Sync,
    {
        Par {
            producer: MapProducer {
                base: self.producer,
                f: Arc::new(f),
            },
        }
    }

    /// Keeps elements matching `pred`.
    pub fn filter<F>(self, pred: F) -> Par<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        Par {
            producer: FilterProducer {
                base: self.producer,
                pred: Arc::new(pred),
            },
        }
    }

    /// Maps and filters in one pass.
    pub fn filter_map<O, F>(self, f: F) -> Par<FilterMapProducer<P, O, F>>
    where
        O: Send,
        F: Fn(P::Item) -> Option<O> + Send + Sync,
    {
        Par {
            producer: FilterMapProducer::rebuild(self.producer, Arc::new(f)),
        }
    }

    /// Maps each element to an iterable and flattens. Pieces split at base
    /// elements; each piece flattens sequentially.
    pub fn flat_map<O, F>(self, f: F) -> Par<FlatMapProducer<P, O, F>>
    where
        O: IntoIterator,
        O::Item: Send,
        F: Fn(P::Item) -> O + Send + Sync,
    {
        Par {
            producer: FlatMapProducer {
                base: self.producer,
                f: Arc::new(f),
                _out: PhantomData,
            },
        }
    }

    /// Maps each element to a *sequential* iterable and flattens (rayon
    /// distinguishes this from `flat_map`; here they share an engine that
    /// is parallel over base elements and sequential within each).
    pub fn flat_map_iter<O, F>(self, f: F) -> Par<FlatMapProducer<P, O, F>>
    where
        O: IntoIterator,
        O::Item: Send,
        F: Fn(P::Item) -> O + Send + Sync,
    {
        self.flat_map(f)
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> Par<EnumerateProducer<P>>
    where
        P: IndexedProducer,
    {
        Par {
            producer: EnumerateProducer {
                base: self.producer,
                offset: 0,
            },
        }
    }

    /// Zips with another indexed parallel iterator, truncating to the
    /// shorter length.
    pub fn zip<Z>(self, other: Z) -> Par<ZipProducer<P, Z::Producer>>
    where
        P: IndexedProducer,
        Z: IntoParallelIterator,
        Z::Producer: IndexedProducer,
    {
        let a = self.producer;
        let b = other.into_par_iter().producer;
        let n = usize::min(a.len_hint(), b.len_hint());
        let (a, _) = a.split_at(n);
        let (b, _) = b.split_at(n);
        Par {
            producer: ZipProducer { a, b },
        }
    }

    /// Chains another parallel iterator after this one (sequential
    /// fallback: the two sources are consumed on the calling thread).
    pub fn chain<C>(
        self,
        other: C,
    ) -> SeqPar<std::iter::Chain<P::IntoIter, <C::Producer as Producer>::IntoIter>>
    where
        C: IntoParallelIterator<Item = P::Item>,
    {
        SeqPar(
            self.producer
                .into_seq()
                .chain(other.into_par_iter().producer.into_seq()),
        )
    }

    /// Copies referenced elements.
    pub fn copied<'a, T>(self) -> Par<MapProducer<P, impl Fn(&'a T) -> T + Send + Sync>>
    where
        T: 'a + Copy + Send + Sync,
        P: Producer<Item = &'a T>,
    {
        self.map(|r: &'a T| *r)
    }

    /// Clones referenced elements.
    pub fn cloned<'a, T>(self) -> Par<MapProducer<P, impl Fn(&'a T) -> T + Send + Sync>>
    where
        T: 'a + Clone + Send + Sync,
        P: Producer<Item = &'a T>,
    {
        self.map(|r: &'a T| r.clone())
    }

    /// Takes the first `n` elements.
    pub fn take(self, n: usize) -> Par<P>
    where
        P: IndexedProducer,
    {
        let len = self.producer.len_hint();
        Par {
            producer: self.producer.split_at(usize::min(n, len)).0,
        }
    }

    /// Skips the first `n` elements.
    pub fn skip(self, n: usize) -> Par<P>
    where
        P: IndexedProducer,
    {
        let len = self.producer.len_hint();
        Par {
            producer: self.producer.split_at(usize::min(n, len)).1,
        }
    }

    /// Steps by `n` (sequential fallback).
    pub fn step_by(self, n: usize) -> SeqPar<std::iter::StepBy<P::IntoIter>> {
        SeqPar(self.producer.into_seq().step_by(n))
    }

    /// Hints the minimum work-splitting granularity (accepted, unused: the
    /// engine's piece sizing is already coarse).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Hints the maximum work-splitting granularity (accepted, unused).
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Groups elements into `Vec` chunks of at most `n` (sequential
    /// fallback, shared with [`SeqPar::chunks`]).
    pub fn chunks(self, n: usize) -> SeqPar<std::vec::IntoIter<Vec<P::Item>>> {
        SeqPar(self.producer.into_seq()).chunks(n)
    }

    /// Rayon-style fold: produces per-piece accumulators (exactly one here
    /// — the fold itself runs sequentially, shared with [`SeqPar::fold`]),
    /// to be consumed by a following reduction.
    pub fn fold<ACC, ID, F>(self, identity: ID, fold_op: F) -> SeqPar<std::iter::Once<ACC>>
    where
        ID: Fn() -> ACC,
        F: FnMut(ACC, P::Item) -> ACC,
    {
        SeqPar(self.producer.into_seq()).fold(identity, fold_op)
    }

    // ---- consumers (parallel) --------------------------------------------

    /// Calls `f` on every element, in parallel across pieces.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        run_pieces(self.producer, &|piece: P| {
            piece.into_seq().for_each(&f);
        });
    }

    /// Calls `f` on every element with a per-piece clone of `init`.
    pub fn for_each_with<T, F>(self, init: T, f: F)
    where
        T: Clone + Send + Sync,
        F: Fn(&mut T, P::Item) + Send + Sync,
    {
        run_pieces(self.producer, &|piece: P| {
            let mut acc = init.clone();
            piece.into_seq().for_each(|item| f(&mut acc, item));
        });
    }

    /// Rayon-style reduce with an identity element. `op` must be
    /// associative; pieces are combined in source order, so the result is
    /// deterministic for any associative operator.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        run_pieces(self.producer, &|piece: P| {
            piece.into_seq().fold(identity(), &op)
        })
        .into_iter()
        .fold(identity(), &op)
    }

    /// Sums the elements (piece sums combined in source order).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        run_pieces(self.producer, &|piece: P| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Minimum element, `None` when empty.
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        run_pieces(self.producer, &|piece: P| piece.into_seq().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Maximum element, `None` when empty.
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        run_pieces(self.producer, &|piece: P| piece.into_seq().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Minimum element by key, `None` when empty (sequential).
    pub fn min_by_key<K: Ord, F: FnMut(&P::Item) -> K>(self, f: F) -> Option<P::Item> {
        self.producer.into_seq().min_by_key(f)
    }

    /// Maximum element by key, `None` when empty (sequential).
    pub fn max_by_key<K: Ord, F: FnMut(&P::Item) -> K>(self, f: F) -> Option<P::Item> {
        self.producer.into_seq().max_by_key(f)
    }

    /// Number of elements (counted per piece, in parallel).
    pub fn count(self) -> usize {
        run_pieces(self.producer, &|piece: P| piece.into_seq().count())
            .into_iter()
            .sum()
    }

    /// Collects into any `FromIterator` collection. Pieces are collected in
    /// parallel and concatenated in source order, so the result is
    /// identical to a sequential collect.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let pieces = run_pieces(self.producer, &|piece: P| {
            piece.into_seq().collect::<Vec<_>>()
        });
        pieces.into_iter().flatten().collect()
    }

    /// Unzips pairs into two collections (sequential).
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        P: Producer<Item = (A, B)>,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        self.producer.into_seq().unzip()
    }

    /// Whether any element matches (parallel, with cross-piece
    /// short-circuiting via a shared flag).
    pub fn any<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        let found = AtomicBool::new(false);
        run_pieces(self.producer, &|piece: P| {
            for item in piece.into_seq() {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if pred(item) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }

    /// Whether all elements match (parallel).
    pub fn all<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        !self.any(move |item| !pred(item))
    }

    /// Some element matching `pred`, if any (sequential; order unspecified
    /// upstream, first match here).
    pub fn find_any<F: FnMut(&P::Item) -> bool>(self, mut pred: F) -> Option<P::Item> {
        self.producer.into_seq().find(|x| pred(x))
    }

    /// The first element matching `pred`, if any (sequential).
    pub fn find_first<F: FnMut(&P::Item) -> bool>(self, mut pred: F) -> Option<P::Item> {
        self.producer.into_seq().find(|x| pred(x))
    }

    /// Index of some element matching `pred` (sequential; first match).
    pub fn position_any<F: FnMut(P::Item) -> bool>(self, pred: F) -> Option<usize> {
        self.producer.into_seq().position(pred)
    }
}

// ---------------------------------------------------------------------------
// Source producers
// ---------------------------------------------------------------------------

/// Producer over an integer range.
pub struct RangeProducer<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_producer {
    ($($t:ty),+) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoIter = std::ops::Range<$t>;
            fn len_hint(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                debug_assert!(index <= self.len_hint());
                let mid = self.range.start + index as $t;
                (
                    Self { range: self.range.start..mid },
                    Self { range: mid..self.range.end },
                )
            }
            fn into_seq(self) -> Self::IntoIter {
                self.range
            }
        }
        impl IndexedProducer for RangeProducer<$t> {}
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Producer = RangeProducer<$t>;
            fn into_par_iter(self) -> Par<RangeProducer<$t>> {
                Par { producer: RangeProducer { range: self } }
            }
        }
    )+};
}

range_producer!(i32, i64, u32, u64, usize);

/// Producer over a shared slice (items are `&T`).
pub struct SliceProducer<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (Self { slice: l }, Self { slice: r })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.iter()
    }
}
impl<T: Sync> IndexedProducer for SliceProducer<'_, T> {}

/// Producer over an exclusive slice (items are `&mut T`).
pub struct SliceMutProducer<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (Self { slice: l }, Self { slice: r })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}
impl<T: Send> IndexedProducer for SliceMutProducer<'_, T> {}

/// Producer over an owned vector. Splitting moves the tail into a new
/// allocation (`split_off`) — fine for the shim's scale.
pub struct VecProducer<T: Send> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn len_hint(&self) -> usize {
        self.vec.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, Self { vec: tail })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.vec.into_iter()
    }
}
impl<T: Send> IndexedProducer for VecProducer<T> {}

/// Producer over fixed-size sub-slices of a shared slice.
pub struct ChunksProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = usize::min(index * self.size, self.slice.len());
        let (l, r) = self.slice.split_at(elems);
        (
            Self {
                slice: l,
                size: self.size,
            },
            Self {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}
impl<T: Sync> IndexedProducer for ChunksProducer<'_, T> {}

/// Producer over fixed-size exclusive sub-slices.
pub struct ChunksMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = usize::min(index * self.size, self.slice.len());
        let (l, r) = self.slice.split_at_mut(elems);
        (
            Self {
                slice: l,
                size: self.size,
            },
            Self {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}
impl<T: Send> IndexedProducer for ChunksMutProducer<'_, T> {}

/// Producer over overlapping windows of a shared slice.
pub struct WindowsProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for WindowsProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Windows<'a, T>;
    fn len_hint(&self) -> usize {
        (self.slice.len() + 1).saturating_sub(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        // Window i starts at element i; the left piece needs elements up to
        // index + size - 1 exclusive, the right starts at element index.
        let left_end = usize::min(index + self.size - 1, self.slice.len());
        (
            Self {
                slice: &self.slice[..left_end],
                size: self.size,
            },
            Self {
                slice: &self.slice[index..],
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.windows(self.size)
    }
}
impl<T: Sync> IndexedProducer for WindowsProducer<'_, T> {}

// ---------------------------------------------------------------------------
// Adaptor producers
// ---------------------------------------------------------------------------

/// Producer adaptor applying a map function (shared across splits).
pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential iterator of a [`MapProducer`] piece.
pub struct MapSeqIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I: Iterator, O, F: Fn(I::Item) -> O> Iterator for MapSeqIter<I, F> {
    type Item = O;
    fn next(&mut self) -> Option<O> {
        self.base.next().map(|x| (self.f)(x))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

impl<P, O, F> Producer for MapProducer<P, F>
where
    P: Producer,
    O: Send,
    F: Fn(P::Item) -> O + Send + Sync,
{
    type Item = O;
    type IntoIter = MapSeqIter<P::IntoIter, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self {
                base: l,
                f: Arc::clone(&self.f),
            },
            Self { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        MapSeqIter {
            base: self.base.into_seq(),
            f: self.f,
        }
    }
}

impl<P, O, F> IndexedProducer for MapProducer<P, F>
where
    P: IndexedProducer,
    O: Send,
    F: Fn(P::Item) -> O + Send + Sync,
{
}

/// Producer adaptor keeping elements that match a predicate. Splits in base
/// coordinates, so it stays parallel but loses indexedness.
pub struct FilterProducer<P, F> {
    base: P,
    pred: Arc<F>,
}

/// Sequential iterator of a [`FilterProducer`] piece.
pub struct FilterSeqIter<I, F> {
    base: I,
    pred: Arc<F>,
}

impl<I: Iterator, F: Fn(&I::Item) -> bool> Iterator for FilterSeqIter<I, F> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.base.by_ref().find(|item| (self.pred)(item))
    }
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    type IntoIter = FilterSeqIter<P::IntoIter, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self {
                base: l,
                pred: Arc::clone(&self.pred),
            },
            Self {
                base: r,
                pred: self.pred,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        FilterSeqIter {
            base: self.base.into_seq(),
            pred: self.pred,
        }
    }
}

/// Producer adaptor mapping to `Option` and keeping the `Some`s.
pub struct FilterMapProducer<P, O, F> {
    base: P,
    f: Arc<F>,
    // O appears only in F's return type; anchor it for coherence.
    _out: PhantomData<fn() -> O>,
}

impl<P, O, F> FilterMapProducer<P, O, F> {
    fn rebuild(base: P, f: Arc<F>) -> Self {
        Self {
            base,
            f,
            _out: PhantomData,
        }
    }
}

/// Sequential iterator of a [`FilterMapProducer`] piece.
pub struct FilterMapSeqIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I: Iterator, O, F: Fn(I::Item) -> Option<O>> Iterator for FilterMapSeqIter<I, F> {
    type Item = O;
    fn next(&mut self) -> Option<O> {
        for item in self.base.by_ref() {
            if let Some(out) = (self.f)(item) {
                return Some(out);
            }
        }
        None
    }
}

impl<P, O, F> Producer for FilterMapProducer<P, O, F>
where
    P: Producer,
    O: Send,
    F: Fn(P::Item) -> Option<O> + Send + Sync,
{
    type Item = O;
    type IntoIter = FilterMapSeqIter<P::IntoIter, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let f = Arc::clone(&self.f);
        let (l, r) = self.base.split_at(index);
        (Self::rebuild(l, f), Self::rebuild(r, self.f))
    }
    fn into_seq(self) -> Self::IntoIter {
        FilterMapSeqIter {
            base: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Producer adaptor mapping each element to an iterable and flattening.
pub struct FlatMapProducer<P, O, F> {
    base: P,
    f: Arc<F>,
    _out: PhantomData<fn() -> O>,
}

/// Sequential iterator of a [`FlatMapProducer`] piece.
pub struct FlatMapSeqIter<I, O: IntoIterator, F> {
    base: I,
    f: Arc<F>,
    cur: Option<O::IntoIter>,
}

impl<I, O, F> Iterator for FlatMapSeqIter<I, O, F>
where
    I: Iterator,
    O: IntoIterator,
    F: Fn(I::Item) -> O,
{
    type Item = O::Item;
    fn next(&mut self) -> Option<O::Item> {
        loop {
            if let Some(cur) = &mut self.cur {
                if let Some(item) = cur.next() {
                    return Some(item);
                }
            }
            match self.base.next() {
                Some(x) => self.cur = Some((self.f)(x).into_iter()),
                None => return None,
            }
        }
    }
}

impl<P, O, F> Producer for FlatMapProducer<P, O, F>
where
    P: Producer,
    O: IntoIterator,
    O::Item: Send,
    F: Fn(P::Item) -> O + Send + Sync,
{
    type Item = O::Item;
    type IntoIter = FlatMapSeqIter<P::IntoIter, O, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self {
                base: l,
                f: Arc::clone(&self.f),
                _out: PhantomData,
            },
            Self {
                base: r,
                f: self.f,
                _out: PhantomData,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        FlatMapSeqIter {
            base: self.base.into_seq(),
            f: self.f,
            cur: None,
        }
    }
}

/// Producer adaptor pairing items with their global index.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

/// Sequential iterator of an [`EnumerateProducer`] piece.
pub struct EnumerateSeqIter<I> {
    base: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeqIter<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<(usize, I::Item)> {
        let item = self.base.next()?;
        let index = self.next;
        self.next += 1;
        Some((index, item))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

impl<P: IndexedProducer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateSeqIter<P::IntoIter>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self {
                base: l,
                offset: self.offset,
            },
            Self {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        EnumerateSeqIter {
            base: self.base.into_seq(),
            next: self.offset,
        }
    }
}
impl<P: IndexedProducer> IndexedProducer for EnumerateProducer<P> {}

/// Producer adaptor zipping two equal-length indexed producers.
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedProducer, B: IndexedProducer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len_hint(&self) -> usize {
        usize::min(self.a.len_hint(), self.b.len_hint())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Self { a: al, b: bl }, Self { a: ar, b: br })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}
impl<A: IndexedProducer, B: IndexedProducer> IndexedProducer for ZipProducer<A, B> {}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `into_par_iter()` for owned collections, ranges, and `Par` itself.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Producer backing the parallel iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Producer>;
}

impl<P: Producer> IntoParallelIterator for Par<P> {
    type Item = P::Item;
    type Producer = P;
    fn into_par_iter(self) -> Par<P> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> Par<VecProducer<T>> {
        Par {
            producer: VecProducer { vec: self },
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn into_par_iter(self) -> Par<SliceProducer<'a, T>> {
        Par {
            producer: SliceProducer { slice: self },
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn into_par_iter(self) -> Par<SliceProducer<'a, T>> {
        Par {
            producer: SliceProducer { slice: self },
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Producer = SliceMutProducer<'a, T>;
    fn into_par_iter(self) -> Par<SliceMutProducer<'a, T>> {
        Par {
            producer: SliceMutProducer { slice: self },
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Producer = SliceMutProducer<'a, T>;
    fn into_par_iter(self) -> Par<SliceMutProducer<'a, T>> {
        Par {
            producer: SliceMutProducer {
                slice: self.as_mut_slice(),
            },
        }
    }
}

/// `par_iter()` for shared references.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a shared reference, for collections).
    type Item: Send;
    /// Producer backing the parallel iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Iterates `&self` in parallel.
    fn par_iter(&'data self) -> Par<Self::Producer>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoParallelIterator,
{
    type Item = <&'data T as IntoParallelIterator>::Item;
    type Producer = <&'data T as IntoParallelIterator>::Producer;
    fn par_iter(&'data self) -> Par<Self::Producer> {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` for exclusive references.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (an exclusive reference, for collections).
    type Item: Send;
    /// Producer backing the parallel iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Iterates `&mut self` in parallel.
    fn par_iter_mut(&'data mut self) -> Par<Self::Producer>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoParallelIterator,
{
    type Item = <&'data mut T as IntoParallelIterator>::Item;
    type Producer = <&'data mut T as IntoParallelIterator>::Producer;
    fn par_iter_mut(&'data mut self) -> Par<Self::Producer> {
        self.into_par_iter()
    }
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T: Sync> {
    /// `chunks(chunk_size)`, in parallel.
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>>;
    /// `windows(window_size)`, in parallel.
    fn par_windows(&self, window_size: usize) -> Par<WindowsProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        Par {
            producer: ChunksProducer {
                slice: self,
                size: chunk_size,
            },
        }
    }
    fn par_windows(&self, window_size: usize) -> Par<WindowsProducer<'_, T>> {
        assert!(window_size > 0, "window size must be non-zero");
        Par {
            producer: WindowsProducer {
                slice: self,
                size: window_size,
            },
        }
    }
}

/// Chunked traversal of exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// `chunks_mut(chunk_size)`, in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        Par {
            producer: ChunksMutProducer {
                slice: self,
                size: chunk_size,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// SeqPar: the sequential fallback
// ---------------------------------------------------------------------------

/// A parallel-iterator type executing sequentially on the calling thread —
/// the fallback for adaptor chains the producer engine does not parallelize
/// (`chain`, `step_by`, `chunks`, `fold` accumulators). It carries the full
/// rayon method surface so such chains keep compiling unchanged.
pub struct SeqPar<I>(I);

impl<I: Iterator> IntoIterator for SeqPar<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

impl<I: Iterator> SeqPar<I> {
    // ---- adaptors --------------------------------------------------------

    /// Maps each element through `f`.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> SeqPar<std::iter::Map<I, F>> {
        SeqPar(self.0.map(f))
    }

    /// Keeps elements matching `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> SeqPar<std::iter::Filter<I, F>> {
        SeqPar(self.0.filter(pred))
    }

    /// Maps and filters in one pass.
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> SeqPar<std::iter::FilterMap<I, F>> {
        SeqPar(self.0.filter_map(f))
    }

    /// Maps each element to an iterable and flattens.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> SeqPar<std::iter::FlatMap<I, O, F>> {
        SeqPar(self.0.flat_map(f))
    }

    /// Maps each element to a sequential iterable and flattens.
    pub fn flat_map_iter<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> SeqPar<std::iter::FlatMap<I, O, F>> {
        SeqPar(self.0.flat_map(f))
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> SeqPar<std::iter::Enumerate<I>> {
        SeqPar(self.0.enumerate())
    }

    /// Zips with another parallel iterator (consumed sequentially).
    pub fn zip<Z: IntoParallelIterator>(
        self,
        other: Z,
    ) -> SeqPar<std::iter::Zip<I, <Z::Producer as Producer>::IntoIter>> {
        SeqPar(self.0.zip(other.into_par_iter().producer.into_seq()))
    }

    /// Chains another parallel iterator after this one.
    pub fn chain<C: IntoParallelIterator<Item = I::Item>>(
        self,
        other: C,
    ) -> SeqPar<std::iter::Chain<I, <C::Producer as Producer>::IntoIter>> {
        SeqPar(self.0.chain(other.into_par_iter().producer.into_seq()))
    }

    /// Copies referenced elements.
    pub fn copied<'a, T: 'a + Copy>(self) -> SeqPar<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        SeqPar(self.0.copied())
    }

    /// Clones referenced elements.
    pub fn cloned<'a, T: 'a + Clone>(self) -> SeqPar<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        SeqPar(self.0.cloned())
    }

    /// Takes the first `n` elements.
    pub fn take(self, n: usize) -> SeqPar<std::iter::Take<I>> {
        SeqPar(self.0.take(n))
    }

    /// Skips the first `n` elements.
    pub fn skip(self, n: usize) -> SeqPar<std::iter::Skip<I>> {
        SeqPar(self.0.skip(n))
    }

    /// Steps by `n`.
    pub fn step_by(self, n: usize) -> SeqPar<std::iter::StepBy<I>> {
        SeqPar(self.0.step_by(n))
    }

    /// Hints the minimum work-splitting granularity (no-op here).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Hints the maximum work-splitting granularity (no-op here).
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Groups elements into `Vec` chunks of at most `n`.
    pub fn chunks(self, n: usize) -> SeqPar<std::vec::IntoIter<Vec<I::Item>>> {
        assert!(n > 0, "chunk size must be non-zero");
        let mut out: Vec<Vec<I::Item>> = Vec::new();
        let mut cur = Vec::with_capacity(n);
        for item in self.0 {
            cur.push(item);
            if cur.len() == n {
                out.push(std::mem::replace(&mut cur, Vec::with_capacity(n)));
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        SeqPar(out.into_iter())
    }

    /// Rayon-style fold: produces per-"thread" accumulators (exactly one
    /// here), to be consumed by a following reduction.
    pub fn fold<ACC, ID, F>(self, identity: ID, fold_op: F) -> SeqPar<std::iter::Once<ACC>>
    where
        ID: Fn() -> ACC,
        F: FnMut(ACC, I::Item) -> ACC,
    {
        SeqPar(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    // ---- consumers -------------------------------------------------------

    /// Calls `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Calls `f` on every element with a per-"thread" mutable seed.
    pub fn for_each_with<T: Clone, F: FnMut(&mut T, I::Item)>(self, mut init: T, mut f: F) {
        self.0.for_each(|item| f(&mut init, item));
    }

    /// Rayon-style reduce with an identity element.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sums the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Minimum element, `None` when empty.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum element, `None` when empty.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum element by key, `None` when empty.
    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.min_by_key(f)
    }

    /// Maximum element by key, `None` when empty.
    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.max_by_key(f)
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collects into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Unzips pairs into two collections.
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        I: Iterator<Item = (A, B)>,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        self.0.unzip()
    }

    /// Whether any element matches (rayon: `any`).
    pub fn any<F: FnMut(I::Item) -> bool>(self, mut pred: F) -> bool {
        for item in self.0 {
            if pred(item) {
                return true;
            }
        }
        false
    }

    /// Whether all elements match (rayon: `all`).
    pub fn all<F: FnMut(I::Item) -> bool>(self, mut pred: F) -> bool {
        for item in self.0 {
            if !pred(item) {
                return false;
            }
        }
        true
    }

    /// Some element matching `pred`, if any (order unspecified upstream).
    pub fn find_any<F: FnMut(&I::Item) -> bool>(mut self, mut pred: F) -> Option<I::Item> {
        self.0.find(|x| pred(x))
    }

    /// The first element matching `pred`, if any.
    pub fn find_first<F: FnMut(&I::Item) -> bool>(mut self, mut pred: F) -> Option<I::Item> {
        self.0.find(|x| pred(x))
    }

    /// Index of some element matching `pred` (order unspecified upstream).
    pub fn position_any<F: FnMut(I::Item) -> bool>(mut self, pred: F) -> Option<usize> {
        self.0.position(pred)
    }
}
