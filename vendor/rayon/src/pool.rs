//! The execution engine: a `std::thread`-based work-sharing pool.
//!
//! Architecture (deliberately simpler than upstream rayon's per-worker
//! work-stealing deques, but with the same observable semantics):
//!
//! * Every [`ThreadPool`] owns N worker threads and one shared **injector
//!   queue** (a [`parking_lot::Mutex`]'d `VecDeque`). Workers park on a
//!   condvar while the queue is empty and race to pop jobs otherwise.
//! * Fork-join is built on [`Scope`]: `Scope::spawn` enqueues a job tied to
//!   a per-scope latch; `scope()` runs the body on the calling thread and
//!   then **helps** — it drains queue jobs while the latch is non-zero, so
//!   the caller participates in the work instead of idling and nested
//!   scopes cannot deadlock the pool.
//! * Spawned jobs capture borrows from the enclosing stack frame. That is
//!   sound for exactly the reason it is in rayon and `std::thread::scope`:
//!   `scope()` does not return (even by unwinding) until the latch counts
//!   every spawned job complete, so the borrows outlive every access. The
//!   lifetime erasure happens in one place ([`Scope::spawn`]) and is
//!   `unsafe` there.
//! * Panics inside spawned jobs are caught, the first is stashed in the
//!   scope latch, and [`scope`]/[`join`] re-raise it on the caller after
//!   all sibling jobs finished — matching rayon's propagation contract.
//!
//! The **global pool** is built lazily on first use with
//! `RAYON_NUM_THREADS` (if set and non-zero) or `available_parallelism`
//! workers, exactly like upstream. [`ThreadPool::install`] pins a pool as
//! the *current* pool for the duration of a closure via a thread-local, and
//! worker threads are born with their own pool pinned, so nested parallel
//! iterators inside a `Device` kernel reuse the device's dedicated pool.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Shared core of a pool: the injector queue plus worker parking.
pub(crate) struct PoolInner {
    queue: Mutex<QueueState>,
    work_cv: Condvar,
    num_threads: usize,
}

impl PoolInner {
    fn new(num_threads: usize) -> Self {
        Self {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            num_threads,
        }
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    fn push(&self, job: Job) {
        self.queue.lock().jobs.push_back(job);
        self.work_cv.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().jobs.pop_front()
    }

    /// Helps execute queued jobs until `latch` reports zero pending jobs.
    fn wait_scope(&self, latch: &ScopeLatch) {
        loop {
            if *latch.pending.lock() == 0 {
                return;
            }
            if let Some(job) = self.try_pop() {
                job();
                continue;
            }
            let mut pending = latch.pending.lock();
            if *pending == 0 {
                return;
            }
            // Timed wait: a job pushed between `try_pop` and here may be the
            // one this helper should run (all workers busy), so wake up
            // periodically and retry the pop.
            latch
                .done_cv
                .wait_for(&mut pending, Duration::from_millis(1));
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    CURRENT_POOL.with(|c| *c.borrow_mut() = Some(Arc::clone(&inner)));
    loop {
        let job = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    break Some(j);
                }
                if q.shutdown {
                    break None;
                }
                inner.work_cv.wait(&mut q);
            }
        };
        match job {
            // A panicking job would abort via unwind-through-`extern`
            // nowhere: jobs wrap user code in `catch_unwind` at spawn time,
            // so `j()` only unwinds on latch bookkeeping bugs.
            Some(j) => j(),
            None => return,
        }
    }
}

thread_local! {
    static CURRENT_POOL: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
}

/// The pool the calling thread is operating in: the pool pinned by
/// [`ThreadPool::install`] or worker birth, else the global pool.
pub(crate) fn current_pool() -> Arc<PoolInner> {
    CURRENT_POOL
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| Arc::clone(&global_pool().inner))
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazily-built global pool (`RAYON_NUM_THREADS` or all logical CPUs).
pub(crate) fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("global pool build cannot fail")
    })
}

/// Number of worker threads in the current pool (the global pool unless the
/// caller is inside [`ThreadPool::install`] or on a worker thread).
pub fn current_num_threads() -> usize {
    current_pool().num_threads()
}

// ---------------------------------------------------------------------------
// Scope: latch + lifetime-erased spawns
// ---------------------------------------------------------------------------

struct ScopeLatch {
    pending: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeLatch {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A fork-join scope handed to [`scope`] bodies and spawned tasks.
///
/// Tasks spawned on it run on the pool's workers (or on the scope's caller
/// while it helps drain the queue); the creating `scope()` call returns only
/// after every task completed. Internally the scope is a pair of raw
/// pointers valid for exactly that window.
pub struct Scope<'scope> {
    pool: *const PoolInner,
    latch: *const ScopeLatch,
    // Invariant over 'scope, like rayon: a scope must not be coerced to a
    // shorter lifetime and then outlive the borrows of its tasks.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

// SAFETY: the pointers target the `scope()` caller's stack frame (latch) and
// the pool, both alive until every task holding a `Scope` copy finished —
// `scope()` blocks on the latch before returning.
unsafe impl Send for Scope<'_> {}
unsafe impl Sync for Scope<'_> {}

/// `Scope` fields are raw pointers shared by all of the scope's tasks.
struct ScopePtrs {
    pool: *const PoolInner,
    latch: *const ScopeLatch,
}
// SAFETY: see `Scope` — same pointers, same validity window.
unsafe impl Send for ScopePtrs {}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the pool. It may borrow anything that outlives
    /// `'scope`; the enclosing [`scope`] call waits for it. A panic in
    /// `body` is captured and re-raised at scope exit (first panic wins).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let latch = unsafe { &*self.latch };
        *latch.pending.lock() += 1;
        let ptrs = ScopePtrs {
            pool: self.pool,
            latch: self.latch,
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // Rebind the whole wrapper (edition-2021 closures would
            // otherwise capture the two non-Send pointer fields disjointly,
            // even through a destructuring pattern).
            let ptrs = ptrs;
            let ScopePtrs { pool, latch } = ptrs;
            let scope = Scope {
                pool,
                latch,
                _marker: PhantomData,
            };
            // SAFETY: the creating scope() is still blocked on the latch.
            let latch = unsafe { &*latch };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&scope))) {
                latch.store_panic(payload);
            }
            let mut pending = latch.pending.lock();
            *pending -= 1;
            if *pending == 0 {
                latch.done_cv.notify_all();
            }
        });
        // SAFETY: lifetime erasure. The job cannot outlive 'scope because
        // scope()/scope_impl block until the latch counts it complete, and
        // workers never drop a queued job without running it (the queue is
        // drained even during shutdown).
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        unsafe { &*self.pool }.push(job);
    }
}

pub(crate) fn scope_impl<'scope, OP, R>(pool: &Arc<PoolInner>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    // Pin `pool` as the caller's current pool for the body and the helping
    // phase, so nested parallel calls inside helped jobs stay on it.
    let prev = CURRENT_POOL.with(|c| c.borrow_mut().replace(Arc::clone(pool)));
    struct Restore(Option<Arc<PoolInner>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    let latch = ScopeLatch::new();
    let scope = Scope {
        pool: Arc::as_ptr(pool),
        latch: &latch,
        _marker: PhantomData,
    };
    // Run the body on the calling thread; even if it panics, every job it
    // already spawned must finish before the frame (and the latch) unwind.
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    pool.wait_scope(&latch);
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = latch.panic.lock().take() {
                resume_unwind(payload);
            }
            value
        }
    }
}

fn join_impl<A, B, RA, RB>(pool: &Arc<PoolInner>, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool.num_threads() <= 1 {
        return (a(), b());
    }
    let mut ra = None;
    let mut rb = None;
    {
        let rb_slot = &mut rb;
        scope_impl(pool, |s| {
            s.spawn(move |_| {
                *rb_slot = Some(b());
            });
            ra = Some(a());
        });
    }
    (
        ra.expect("join closure a completed"),
        rb.expect("join closure b completed"),
    )
}

/// Creates a fork-join scope on the current pool and runs `op` inside it.
///
/// The body runs on the calling thread; tasks it spawns run on the pool.
/// Returns once every transitively spawned task finished. The first task
/// panic is re-raised here after all siblings completed.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    scope_impl(&current_pool(), op)
}

/// Runs both closures, potentially in parallel: `b` is offered to the pool
/// while `a` runs on the calling thread (which then helps with queued work).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    join_impl(&current_pool(), a, b)
}

// ---------------------------------------------------------------------------
// Public pool handle
// ---------------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build`] (never produced here —
/// thread spawning aborts the process on resource exhaustion instead).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A pool of worker threads sharing one injector queue.
///
/// Dropping the pool drains the remaining queue and joins every worker.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.inner.num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// The number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    /// Runs `op` with this pool pinned as the calling thread's current pool:
    /// parallel iterators, [`join`] and [`scope`] calls inside `op` execute
    /// here rather than on the global pool. `op` itself runs on the calling
    /// thread (upstream's `in_place` flavor), which then helps the workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = CURRENT_POOL.with(|c| c.borrow_mut().replace(Arc::clone(&self.inner)));
        struct Restore(Option<Arc<PoolInner>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// [`join`] on this pool's workers.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        join_impl(&self.inner, a, b)
    }

    /// [`scope`] on this pool's workers.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        scope_impl(&self.inner, op)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock();
            q.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width (0 means "automatic", as upstream).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool, spawning its worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            None | Some(0) => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Some(n) => n,
        };
        let inner = Arc::new(PoolInner::new(n));
        let workers = (0..n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Ok(ThreadPool { inner, workers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn scope_runs_every_spawn() {
        let p = pool(4);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn workers_run_concurrently() {
        // All four tasks must be in flight at once for the barrier to
        // resolve — proof that the pool runs real OS threads.
        let p = pool(4);
        let barrier = Barrier::new(4);
        let passed = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    barrier.wait();
                    passed.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(passed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let p = pool(2);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    // Nested scope from inside a worker job.
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn join_returns_both_results() {
        let p = pool(2);
        let (a, b) = p.join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_borrows_locals() {
        let p = pool(2);
        let data = [1u32, 2, 3, 4];
        let (left, right) = p.join(
            || data[..2].iter().sum::<u32>(),
            || data[2..].iter().sum::<u32>(),
        );
        assert_eq!(left + right, 10);
    }

    #[test]
    fn spawn_panic_propagates_at_scope_exit() {
        let p = pool(2);
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                s.spawn(|_| panic!("task boom"));
                s.spawn(|_| {
                    survivors.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "scope must re-raise the task panic");
        // Sibling tasks still ran to completion before propagation.
        assert_eq!(survivors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn install_pins_current_pool() {
        let p = pool(3);
        assert_eq!(p.install(current_num_threads), 3);
    }

    #[test]
    fn worker_threads_inherit_their_pool() {
        let p = pool(2);
        let seen = Mutex::new(Vec::new());
        p.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    seen.lock().push(current_num_threads());
                });
            }
        });
        // The scope caller may help; helpers report their own current pool,
        // which is the same pool during `scope`. Workers report theirs.
        for n in seen.into_inner() {
            assert!(n == 2 || n == current_num_threads());
        }
    }
}
