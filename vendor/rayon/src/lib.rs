//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the rayon 1.x API the workspace uses —
//! `par_iter` / `par_iter_mut` / `into_par_iter`, `par_chunks{,_mut}`,
//! [`ThreadPool`] / [`ThreadPoolBuilder`], [`join`], [`scope`] and
//! [`current_num_threads`] — with every adaptor executing **sequentially**
//! on the calling thread.
//!
//! Sequential execution is semantically equivalent for the deterministic,
//! data-parallel kernels in this workspace (the simulated GPU device already
//! serializes virtual threads between barriers — see `DESIGN.md`). What is
//! lost is wall-clock speedup only; replacing this shim with the real rayon
//! restores it without any source change because the API surface matches.

#![warn(missing_docs)]

pub mod iter;

/// The traits one imports to get `par_iter()` and friends.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads rayon would use (here: the machine's parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures ("in parallel" upstream; sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A fork-join scope. Spawned tasks run immediately in this shim.
pub struct Scope<'scope> {
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `body` (immediately, on the calling thread).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + 'scope,
    {
        body(self);
    }
}

/// Creates a fork-join scope and runs `op` inside it.
pub fn scope<'scope, F, R>(op: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    op(&Scope {
        _marker: std::marker::PhantomData,
    })
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A configured "pool". Work submitted via [`ThreadPool::install`] runs on
/// the calling thread; the pool only remembers its configured width so that
/// callers can partition work consistently.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The number of threads this pool was configured with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` in the pool (here: immediately, on the calling thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Sequential [`join`] inside the pool.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB,
    {
        (a(), b())
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width (0 means "automatic", as upstream).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            None | Some(0) => current_num_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: u32 = v.into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn par_iter_mut_and_chunks() {
        let mut v = vec![0u32; 8];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert_eq!(v[7], 7);
        v.par_chunks_mut(3).for_each(|c| c[0] += 100);
        assert_eq!(v[0], 100);
        assert_eq!(v[3], 103);
        assert_eq!(v[6], 106);
        assert_eq!(v.par_chunks(3).count(), 3);
    }

    #[test]
    fn pool_installs_on_caller() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn range_into_par_iter() {
        let s: u64 = (0u64..100).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 4950);
    }
}
