//! Offline stand-in for the `rayon` crate, with a **real thread pool**.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the rayon 1.x API the workspace uses —
//! `par_iter` / `par_iter_mut` / `into_par_iter`, `par_chunks{,_mut}`,
//! [`ThreadPool`] / [`ThreadPoolBuilder`], [`join`], [`scope`] and
//! [`current_num_threads`] — executing on a `std::thread`-based
//! work-sharing pool (see [`mod@iter`] and the `pool` module docs for the
//! execution model: a shared injector queue, scope latches with panic
//! propagation, and a caller-helps waiting discipline).
//!
//! Indexed sources (ranges, slices, chunked slices) and length-preserving
//! or base-splittable adaptors run **in parallel**; a few rarely-used
//! adaptor chains degrade to documented sequential fallbacks. Either way
//! results are bit-identical to sequential execution for deterministic
//! chains, because pieces are always combined in source order. Swapping in
//! the real rayon remains a `Cargo.toml`-only change: the API surface
//! matches.

#![warn(missing_docs)]

pub mod iter;
mod pool;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The traits one imports to get `par_iter()` and friends.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: u32 = v.into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn par_iter_mut_and_chunks() {
        let mut v = vec![0u32; 8];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert_eq!(v[7], 7);
        v.par_chunks_mut(3).for_each(|c| c[0] += 100);
        assert_eq!(v[0], 100);
        assert_eq!(v[3], 103);
        assert_eq!(v[6], 106);
        assert_eq!(v.par_chunks(3).count(), 3);
    }

    #[test]
    fn pool_installs_on_caller() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn range_into_par_iter() {
        let s: u64 = (0u64..100).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn large_parallel_map_collect_preserves_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let out: Vec<usize> =
            pool.install(|| (0..100_000usize).into_par_iter().map(|i| i * 3).collect());
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn parallel_for_each_runs_pieces_concurrently() {
        // Four single-item pieces each blocking on a Barrier(4): the
        // for_each can only return if four threads execute pieces at the
        // same time, so a regression to sequential dispatch deadlocks the
        // test (caught by the harness timeout) instead of silently passing.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let barrier = std::sync::Barrier::new(4);
        pool.install(|| {
            (0..4usize).into_par_iter().for_each(|_| {
                barrier.wait();
            });
        });
    }

    #[test]
    fn flat_map_iter_parallel_matches_sequential() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let expected: Vec<u64> = (0..10_000u64).flat_map(|i| 0..i % 7).collect();
        let got: Vec<u64> = pool.install(|| {
            (0..10_000u64)
                .into_par_iter()
                .flat_map_iter(|i| 0..i % 7)
                .collect()
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn filter_and_reduce_parallel() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let total: u64 = pool.install(|| {
            (0..100_000u64)
                .into_par_iter()
                .filter(|&x| x % 3 == 0)
                .sum()
        });
        let expected: u64 = (0..100_000u64).filter(|&x| x % 3 == 0).sum();
        assert_eq!(total, expected);

        let reduced = pool.install(|| (1..1001u64).into_par_iter().reduce(|| 0, |a, b| a + b));
        assert_eq!(reduced, 500_500);
    }

    #[test]
    fn zip_enumerate_parallel() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let mut a = vec![0u64; 50_000];
        let b: Vec<u64> = (0..50_000).collect();
        pool.install(|| {
            a.par_iter_mut()
                .zip(b.par_iter())
                .enumerate()
                .for_each(|(i, (slot, &src))| {
                    *slot = src + i as u64;
                });
        });
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(v, 2 * i as u64);
        }
    }

    #[test]
    fn current_num_threads_reports_pool_size() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 5);
        // Outside any install, the global pool answers with a positive size.
        assert!(super::current_num_threads() >= 1);
    }
}
