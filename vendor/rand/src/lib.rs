//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the (small) subset of the `rand` 0.8 API that the workspace
//! actually uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] and [`rngs::StdRng`].
//!
//! Both RNGs are xoshiro256++ seeded through SplitMix64 — statistically solid
//! for workload generation and fully deterministic for a given seed, which is
//! what the graph generators and tests rely on. It is *not* cryptographically
//! secure; neither is the upstream `SmallRng`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A type that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, bound)` via Lemire-style rejection (debiased).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, bound);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = a as u128 * b as u128;
    ((wide >> 64) as u64, wide as u64)
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding `state` through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s = [
                0x9E3779B97F4A7C15,
                0xD1B54A32D192ED03,
                0x8BB84CAAB9C24E7B,
                1,
            ];
        }
        Self { s }
    }
}

/// Concrete RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// Fast non-cryptographic RNG (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    /// The "standard" RNG; same core as [`SmallRng`] in this offline build.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256PlusPlus);

    macro_rules! forward_rng {
        ($t:ident) => {
            impl RngCore for $t {
                fn next_u32(&mut self) -> u32 {
                    self.0.next_u32()
                }
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }
            impl SeedableRng for $t {
                type Seed = [u8; 32];
                fn from_seed(seed: Self::Seed) -> Self {
                    Self(Xoshiro256PlusPlus::from_seed(seed))
                }
            }
        };
    }
    forward_rng!(SmallRng);
    forward_rng!(StdRng);
}

/// A freshly (but deterministically per-thread) seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    use std::cell::Cell;
    thread_local! {
        static CTR: Cell<u64> = const { Cell::new(0) };
    }
    let n = CTR.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    });
    rngs::StdRng::seed_from_u64(0x5EED ^ n)
}

/// The traits and types most code wants in scope.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn u128_covers_both_halves() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut high = false;
        for _ in 0..64 {
            if rng.gen::<u128>() >= 1u128 << 64 {
                high = true;
            }
        }
        assert!(high, "u128 sampling never reached the upper 64 bits");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
