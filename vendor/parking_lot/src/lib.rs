//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the pieces the workspace uses are provided: [`Mutex`] and [`RwLock`]
//! with parking_lot's panic-free, guard-returning `lock()` signatures, plus
//! [`Condvar`] (used by the vendored `rayon` thread pool for worker parking
//! and scope latches). Poisoning is transparently ignored (parking_lot has
//! no poisoning), which matches upstream semantics for these call sites.
//!
//! [`MutexGuard`] is a thin wrapper rather than a re-export so that
//! [`Condvar::wait`] can take the guard by `&mut` exactly like upstream
//! parking_lot (std's `Condvar::wait` consumes and returns the guard).

#![warn(missing_docs)]

use std::sync;
use std::time::Duration;

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], where the std guard must be moved out and back.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard vacated outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard vacated outside wait")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Re-exported guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex with parking_lot's API (lock returns the guard directly).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (as parking_lot does).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard vacated outside wait");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard vacated outside wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread; returns whether one was woken.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        // std does not report whether a waiter existed; parking_lot callers
        // in this workspace ignore the return value.
        false
    }

    /// Wakes all waiting threads; returns the number woken (unknown here).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// A reader-writer lock with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_handshake() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        // The guard is usable again after the wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
