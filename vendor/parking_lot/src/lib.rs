//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the pieces the workspace uses are provided: [`Mutex`] and [`RwLock`]
//! with parking_lot's panic-free, guard-returning `lock()` signatures.
//! Poisoning is transparently ignored (parking_lot has no poisoning), which
//! matches upstream semantics for these call sites.

#![warn(missing_docs)]

use std::sync;

/// Re-exported guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex with parking_lot's API (lock returns the guard directly).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (as parking_lot does).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
