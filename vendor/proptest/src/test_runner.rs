//! Deterministic per-case RNG and run configuration.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256, sized so the full workspace
    /// property suite stays fast in CI; individual blocks override it via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Names the failing case when a property panics: the [`crate::proptest!`]
/// expansion keeps one of these alive across each case body, and its
/// `Drop` reports only while unwinding out of that body.
pub struct CaseReporter {
    /// `module_path::test_name` of the running property.
    pub test_path: &'static str,
    /// Zero-based index of the case being executed.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property {} failed at case {} (deterministic; re-running reproduces it)",
                self.test_path, self.case
            );
        }
    }
}

/// The RNG handed to strategies: seeded from the test's identity and case
/// index, so every run regenerates the identical case sequence.
pub struct TestRng {
    /// The underlying RNG (public so strategy impls can sample directly).
    pub rng: SmallRng,
}

impl TestRng {
    /// RNG for case number `case` of the test named `test_path`.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            rng: SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37)),
        }
    }
}
