//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! suites use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! range / tuple / `Vec` strategies, [`collection::vec`], [`any`] and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics via the assertion message and
//!   reports its case index on stderr; cases are deterministic (seeded from
//!   the test's module path, name and case index), so a failure reproduces
//!   exactly on re-run.
//! * **Fixed deterministic seeds.** There is no `PROPTEST_CASES` env
//!   handling and no persistence file; every run explores the same cases.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

/// The traits, types and macros most property suites import.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` runs its body for
/// [`ProptestConfig::cases`] deterministic random instantiations of its
/// `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Built once per test, not per case: strategies can be
                // expensive combinator trees.
                let __strategy = ($($strat,)*);
                for __case in 0..__config.cases {
                    let __reporter = $crate::test_runner::CaseReporter {
                        test_path: concat!(module_path!(), "::", stringify!($name)),
                        case: __case,
                    };
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        __reporter.test_path,
                        __case,
                    );
                    let ($($pat,)*) = $crate::strategy::Strategy::generate(
                        &__strategy, &mut __rng);
                    $body
                    drop(__reporter);
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness (panics here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the property harness (panics here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the property harness (panics here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_respects_len_and_elem(v in crate::collection::vec(0u64..100, 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_and_any(pair in (0u32..4, any::<u64>()), mut z in 1i32..10) {
            prop_assert!(pair.0 < 4);
            z += 1;
            prop_assert!((2..=10).contains(&z));
        }

        #[test]
        fn flat_map_dependent_pair(p in (2usize..40).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(any::<u32>(), 0..1).prop_map(move |_| n * 2))
        })) {
            prop_assert_eq!(p.0 * 2, p.1);
        }

        #[test]
        fn boxed_vec_of_strategies(vs in (1usize..6).prop_flat_map(|n| {
            let parts: Vec<BoxedStrategy<u32>> =
                (0..n).map(|i| (0..(i as u32 + 1)).prop_map(|v| v).boxed()).collect();
            parts
        })) {
            for (i, &v) in vs.iter().enumerate() {
                prop_assert!(v <= i as u32);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
