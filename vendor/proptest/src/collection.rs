//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// Output of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
