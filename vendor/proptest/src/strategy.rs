//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// The empty strategy tuple generates the unit value (used by the
/// [`crate::proptest!`] expansion for parameterless properties).
impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) {}
}

/// A `Vec` of strategies generates a `Vec` of values, element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
