//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Throughput`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each routine is warmed up once,
//! then timed over a fixed number of iterations, and the mean wall-clock
//! time (plus throughput, when declared) is printed to stdout. There are no
//! statistics, plots or baselines — the goal is that `cargo bench` runs and
//! produces honest comparative numbers, not publication-grade confidence
//! intervals. Swapping in the real criterion restores those without source
//! changes.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many elements/bytes one iteration processes, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter rendering.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Drives one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also forces lazy init
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
///
/// In this minimal runner "sample size" is the measured iteration count
/// per routine (upstream: number of statistical samples). The default is
/// deliberately small — these benches exist for relative comparisons.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 3 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks; the group inherits this
    /// manager's sample size until it overrides it.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size,
        }
    }

    /// Benchmarks `routine` directly under `id`.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, None, self.sample_size, routine);
        self
    }

    /// Sets the measured iteration count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.clamp(1, 20);
        self
    }
}

/// A group of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the measured iteration count (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            routine,
        );
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            |b| routine(b, input),
        );
        self
    }

    /// Ends the group (a report boundary upstream; a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    iters: usize,
    mut routine: F,
) {
    let mut b = Bencher {
        iters: iters as u64,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            println!(
                "  {label}: {} ({:.1} Melem/s)",
                fmt_time(mean),
                n as f64 / mean / 1e6
            );
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            println!(
                "  {label}: {} ({:.1} MiB/s)",
                fmt_time(mean),
                n as f64 / mean / (1 << 20) as f64
            );
        }
        _ => println!("  {label}: {}", fmt_time(mean)),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn sample_size_is_honored() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("counted", |b| {
            b.iter(|| calls.set(calls.get() + 1));
        });
        // One warm-up call plus `sample_size` measured iterations.
        assert_eq!(calls.get(), 6);

        calls.set(0);
        let mut group = c.benchmark_group("g2");
        group.bench_function("inherited", |b| {
            b.iter(|| calls.set(calls.get() + 1));
        });
        group.finish();
        assert_eq!(calls.get(), 6);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("deep").id, "deep");
    }
}
