//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Throughput`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each routine is warmed up once,
//! then timed per iteration over a fixed number of iterations, and the mean
//! wall-clock time (plus throughput, when declared) is printed to stdout.
//! There are no statistics, plots or baselines — the goal is that
//! `cargo bench` runs and produces honest comparative numbers, not
//! publication-grade confidence intervals. Swapping in the real criterion
//! restores those without source changes.
//!
//! ## Machine-readable output
//!
//! When the `EMG_BENCH_JSON` environment variable names a file, every
//! completed benchmark **appends** one JSON object per line to it
//! (JSON-lines, so multiple bench binaries in one `cargo bench` run share
//! the file safely):
//!
//! ```text
//! {"group":"scan","bench":"inclusive_u64/65536","median_ns":123.0,
//!  "mean_ns":130.5,"iters":10,"elements":65536}
//! ```
//!
//! `median_ns`/`mean_ns` are per-iteration wall-clock times; `elements` or
//! `bytes` appears when the group declared a [`Throughput`]. Delete the
//! file before a run to start a fresh trajectory record.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many elements/bytes one iteration processes, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter rendering.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Drives one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration count, recording one
    /// sample per iteration (so a median survives outliers like a stray
    /// page fault).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also forces lazy init
        self.samples.clear();
        let start = Instant::now();
        for _ in 0..self.iters {
            let s = Instant::now();
            black_box(routine());
            self.samples.push(s.elapsed());
        }
        self.elapsed = start.elapsed();
    }

    /// Mean per-iteration time in seconds, from the recorded samples so
    /// the per-iteration timing overhead (the `Instant::now` pair and the
    /// sample push land *between* samples) does not bias it. Falls back to
    /// the outer elapsed time when no samples were recorded.
    fn mean_secs(&self) -> f64 {
        if self.samples.is_empty() {
            return self.elapsed.as_secs_f64() / self.iters.max(1) as f64;
        }
        self.samples.iter().map(Duration::as_secs_f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Median per-iteration time in seconds (0 when nothing was measured).
    fn median_secs(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid].as_secs_f64()
        } else {
            (sorted[mid - 1].as_secs_f64() + sorted[mid].as_secs_f64()) / 2.0
        }
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
///
/// In this minimal runner "sample size" is the measured iteration count
/// per routine (upstream: number of statistical samples). The default is
/// deliberately small — these benches exist for relative comparisons.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 3 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks; the group inherits this
    /// manager's sample size until it overrides it.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size,
        }
    }

    /// Benchmarks `routine` directly under `id`.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, None, self.sample_size, routine);
        self
    }

    /// Sets the measured iteration count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.clamp(1, 20);
        self
    }
}

/// A group of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the measured iteration count (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            routine,
        );
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            |b| routine(b, input),
        );
        self
    }

    /// Ends the group (a report boundary upstream; a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    iters: usize,
    mut routine: F,
) {
    let mut b = Bencher {
        iters: iters as u64,
        elapsed: Duration::ZERO,
        samples: Vec::with_capacity(iters),
    };
    routine(&mut b);
    let mean = b.mean_secs();
    emit_json(
        group,
        id,
        b.median_secs() * 1e9,
        mean * 1e9,
        b.iters,
        throughput,
    );
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            println!(
                "  {label}: {} ({:.1} Melem/s)",
                fmt_time(mean),
                n as f64 / mean / 1e6
            );
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            println!(
                "  {label}: {} ({:.1} MiB/s)",
                fmt_time(mean),
                n as f64 / mean / (1 << 20) as f64
            );
        }
        _ => println!("  {label}: {}", fmt_time(mean)),
    }
}

/// Appends one JSON-lines entry to `$EMG_BENCH_JSON`, if set (see the
/// module docs for the format). Failures to write are silently ignored —
/// a perf record must never fail a bench run.
fn emit_json(
    group: &str,
    id: &str,
    median_ns: f64,
    mean_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("EMG_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    // Derived throughput (per-second rates off the mean) so sweep records
    // are comparable across input scales without post-processing.
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!(
                ",\"elements\":{n},\"elems_per_sec\":{:.1}",
                n as f64 / (mean_ns * 1e-9)
            )
        }
        Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!(
                ",\"bytes\":{n},\"bytes_per_sec\":{:.1}",
                n as f64 / (mean_ns * 1e-9)
            )
        }
        Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
        None => String::new(),
    };
    let line = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"iters\":{}{}}}\n",
        escape(group),
        escape(id),
        median_ns,
        mean_ns,
        iters,
        rate
    );
    use std::io::Write;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn sample_size_is_honored() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("counted", |b| {
            b.iter(|| calls.set(calls.get() + 1));
        });
        // One warm-up call plus `sample_size` measured iterations.
        assert_eq!(calls.get(), 6);

        calls.set(0);
        let mut group = c.benchmark_group("g2");
        group.bench_function("inherited", |b| {
            b.iter(|| calls.set(calls.get() + 1));
        });
        group.finish();
        assert_eq!(calls.get(), 6);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("deep").id, "deep");
    }

    #[test]
    fn median_is_order_insensitive() {
        let mk = |ns: &[u64]| Bencher {
            iters: ns.len() as u64,
            elapsed: Duration::ZERO,
            samples: ns.iter().map(|&n| Duration::from_nanos(n)).collect(),
        };
        assert_eq!(mk(&[30, 10, 20]).median_secs(), 20e-9);
        assert_eq!(mk(&[40, 10, 20, 30]).median_secs(), 25e-9);
        assert_eq!(mk(&[]).median_secs(), 0.0);
    }

    #[test]
    fn emit_json_appends_entries() {
        let path =
            std::env::temp_dir().join(format!("emg_bench_json_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Exercise the writer directly (env-var driven emission is covered
        // by running the real benches with EMG_BENCH_JSON set; mutating the
        // process environment from a parallel test harness would race).
        std::env::set_var("EMG_BENCH_JSON", &path);
        emit_json(
            "json_group",
            "bench/1024",
            1234.5,
            1300.0,
            3,
            Some(Throughput::Elements(1024)),
        );
        emit_json("json_group", "plain", 10.0, 11.0, 2, None);
        std::env::remove_var("EMG_BENCH_JSON");
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents
            .lines()
            .filter(|l| l.contains("\"group\":\"json_group\""))
            .collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\":\"bench/1024\""));
        assert!(lines[0].contains("\"median_ns\":1234.5"));
        assert!(lines[0].contains("\"elements\":1024"));
        // 1024 elements / 1300 ns mean = ~787.7M elements per second.
        assert!(lines[0].contains("\"elems_per_sec\":787692307.7"));
        assert!(lines[1].contains("\"bench\":\"plain\""));
        assert!(!lines[1].contains("elements"));
        let _ = std::fs::remove_file(&path);
    }
}
