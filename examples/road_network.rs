//! Road-network robustness analysis: find every bridge — road segments
//! whose closure disconnects part of the network — with all four
//! bridge-finding algorithms, on the high-diameter graph family where the
//! paper's Euler-tour-based TV algorithm wins biggest (Figures 9–11).
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use euler_meets_gpu::prelude::*;
use std::time::Instant;

fn main() {
    let device = Device::new();

    // A percolated grid mimicking USA-road-d.* statistics: avg degree ≈ 2.5,
    // Θ(√n) diameter, bridge-rich.
    let raw = road_grid(700, 700, 0.62, 11);
    let (graph, _) = largest_connected_component(&raw);
    let csr = Csr::from_edge_list(&graph);
    println!(
        "road network: {} junctions, {} segments (largest connected component)",
        graph.num_nodes(),
        graph.num_edges()
    );

    let t = Instant::now();
    let dfs = bridges_dfs(&graph, &csr);
    let t_dfs = t.elapsed();

    let t = Instant::now();
    let tv = bridges_tv(&device, &graph, &csr).expect("connected");
    let t_tv = t.elapsed();

    let t = Instant::now();
    let ck = bridges_ck_device(&device, &graph, &csr).expect("connected");
    let t_ck = t.elapsed();

    let t = Instant::now();
    let hybrid = bridges_hybrid(&device, &graph, &csr).expect("connected");
    let t_hybrid = t.elapsed();

    assert_eq!(dfs.bridge_ids(), tv.bridge_ids());
    assert_eq!(dfs.bridge_ids(), ck.bridge_ids());
    assert_eq!(dfs.bridge_ids(), hybrid.bridge_ids());

    println!(
        "\ncritical segments (bridges): {} of {} ({:.1}%)",
        dfs.num_bridges(),
        graph.num_edges(),
        100.0 * dfs.num_bridges() as f64 / graph.num_edges() as f64
    );
    println!("\nalgorithm timings (all agree on the answer):");
    println!("  Single-core CPU DFS: {t_dfs:?}");
    println!("  GPU TV (Euler tour): {t_tv:?}");
    println!("  GPU CK (BFS-based):  {t_ck:?}");
    println!("  GPU Hybrid (§4.3):   {t_hybrid:?}");

    println!("\nGPU CK phase breakdown (BFS dominates on high-diameter graphs):");
    for (phase, time) in &ck.phases {
        println!("  {phase:>14}: {time:?}");
    }
    println!("GPU TV phase breakdown:");
    for (phase, time) in &tv.phases {
        println!("  {phase:>14}: {time:?}");
    }
}
