//! Quickstart: build an Euler tour, answer LCA queries, find bridges.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use euler_meets_gpu::prelude::*;

fn main() {
    // The simulated GPU device (rayon-backed; see DESIGN.md §1.1).
    let device = Device::new();

    // ---- 1. The Euler tour technique on the paper's Figure 1 tree -------
    let tree =
        Tree::from_edges(6, &[(0, 2), (0, 3), (0, 4), (2, 1), (2, 5)], 0).expect("valid tree");
    let tour = EulerTour::build(&device, &tree).expect("tour");
    let stats = TreeStats::compute(&device, &tour);
    println!("Euler tour of the paper's example tree (Figure 1):");
    println!("  preorder = {:?}", stats.preorder);
    println!("  sizes    = {:?}", stats.subtree_size);
    println!("  levels   = {:?}", stats.level);

    // ---- 2. Batched LCA on a million-node random tree -------------------
    let n = 1_000_000;
    let big = random_tree(n, None, 7);
    let lca = GpuInlabelLca::preprocess(&device, &big).expect("preprocess");
    let queries = random_queries(n, 100_000, 8);
    let mut answers = vec![0u32; queries.len()];
    lca.query_batch(&queries, &mut answers);
    println!(
        "\nLCA: answered {} queries on a {}-node tree",
        queries.len(),
        n
    );
    println!(
        "  first query ({}, {}) -> {}",
        queries[0].0, queries[0].1, answers[0]
    );

    // ---- 3. Bridges of a small web-like graph ----------------------------
    let graph = web_graph(200_000, 3, 0.5, 9);
    let (lcc, _) = largest_connected_component(&graph);
    let csr = Csr::from_edge_list(&lcc);
    let result = bridges_tv(&device, &lcc, &csr).expect("connected");
    println!(
        "\nBridges (Tarjan–Vishkin): {} of {} edges are bridges",
        result.num_bridges(),
        lcc.num_edges()
    );
    for (phase, time) in &result.phases {
        println!("  {phase:>16}: {time:?}");
    }
}
