//! Online LCA service: the batch-size trade-off of the paper's Figure 6.
//!
//! The Inlabel algorithms "can preprocess a tree without knowing the
//! queries in advance, and then they can efficiently answer queries one by
//! one" — but parallel hardware needs batches to reach peak throughput.
//! This example simulates a service receiving a query stream and compares
//! throughput across batch sizes and backends.
//!
//! ```sh
//! cargo run --release --example online_lca_service
//! ```

use euler_meets_gpu::prelude::*;
use lca::batch::BatchRunner;

fn main() {
    let device = Device::new();
    let n = 1_000_000;
    let tree = random_tree(n, None, 21);

    let seq = SequentialInlabelLca::preprocess(&tree);
    let par = MulticoreInlabelLca::preprocess(&device, &tree).expect("preprocess");
    let gpu = GpuInlabelLca::preprocess(&device, &tree).expect("preprocess");

    let stream = random_queries(n, 2_000_000, 22);
    let mut out = vec![0u32; stream.len()];

    println!(
        "online LCA service over a {n}-node tree, {} queries\n",
        stream.len()
    );
    println!(
        "{:>10} | {:>14} | {:>14} | {:>14}",
        "batch", "seq q/s", "multicore q/s", "gpu-sim q/s"
    );
    for batch_size in [1usize, 10, 100, 1_000, 10_000, 100_000, 2_000_000] {
        let r_seq = BatchRunner::new(&seq).run(&stream, &mut out, batch_size);
        let r_par = BatchRunner::new(&par).run(&stream, &mut out, batch_size);
        let r_gpu = BatchRunner::new(&gpu).run(&stream, &mut out, batch_size);
        println!(
            "{:>10} | {:>14.0} | {:>14.0} | {:>14.0}",
            batch_size,
            r_seq.throughput(),
            r_par.throughput(),
            r_gpu.throughput()
        );
    }
    println!("\n(expected shape per Figure 6: parallel backends overtake the");
    println!(" sequential one once batches reach the hundreds, then plateau)");
}
