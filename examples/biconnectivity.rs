//! Network reliability analysis: biconnected components and articulation
//! points of an infrastructure-like graph.
//!
//! The paper evaluates bridge finding; Tarjan–Vishkin's original algorithm
//! goes further and labels 2-vertex-connected components. This example runs
//! the full pipeline on a road-like network: which intersections are single
//! points of failure, and how does the network decompose into blocks?
//!
//! ```sh
//! cargo run --release --example biconnectivity
//! ```

use euler_meets_gpu::bridges::{articulation_points_from_bcc, bcc_sequential, bcc_tv};
use euler_meets_gpu::prelude::*;

fn main() {
    let device = Device::new();

    // A sparse road network: a grid with ~25% of streets closed, plus the
    // occasional long-range shortcut. High diameter, many bottlenecks.
    let graph = road_grid(120, 120, 0.75, 2026);
    let (lcc, _) = largest_connected_component(&graph);
    let csr = Csr::from_edge_list(&lcc);
    println!(
        "road network: {} intersections, {} streets (largest component)",
        lcc.num_nodes(),
        lcc.num_edges()
    );

    // Full Tarjan–Vishkin biconnectivity on the simulated device.
    let bcc = bcc_tv(&device, &lcc, &csr).expect("connected");
    let cuts = articulation_points_from_bcc(&lcc, &csr, &bcc);
    println!("\nbiconnected components: {}", bcc.num_components);
    println!(
        "articulation points (single points of failure): {} of {} intersections",
        cuts.count_ones(),
        lcc.num_nodes()
    );
    for (phase, time) in &bcc.phases {
        println!("  {phase:>16}: {time:?}");
    }

    // Block size distribution: how much of the network is one resilient
    // core vs. fragile tendrils?
    let mut sizes = vec![0usize; bcc.num_components];
    for &c in &bcc.component {
        sizes[c as usize] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let singleton = sizes.iter().filter(|&&s| s == 1).count();
    println!(
        "\nlargest block: {} streets ({:.1}% of the network)",
        sizes[0],
        100.0 * sizes[0] as f64 / lcc.num_edges() as f64
    );
    println!("bridge blocks (size 1): {singleton}");

    // Sanity: the parallel labels define the same partition as the
    // sequential Hopcroft–Tarjan oracle.
    let seq = bcc_sequential(&lcc, &csr);
    assert_eq!(
        bcc.canonical_partition(),
        seq.canonical_partition(),
        "parallel and sequential biconnectivity disagree"
    );
    println!("\nverified against the sequential Hopcroft–Tarjan oracle ✓");
}
