//! Dynamic connectivity over a day of network maintenance: Euler-tour
//! trees under link/cut, the dynamic side of the paper's core technique
//! (Tarjan, reference [57]).
//!
//! A service provider takes backbone links down for maintenance and brings
//! them back up; between events, operations asks "are these two sites on
//! the same island?" and "how much traffic capacity does this island have?"
//! — exactly `connected` and `component_sum` on a spanning forest.
//!
//! ```sh
//! cargo run --release --example dynamic_trees
//! ```

use euler_meets_gpu::euler_tour::EulerTourForest;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn main() {
    let sites = 100_000usize;
    let mut forest = EulerTourForest::new(sites);
    let mut rng = 0xD1A5u64;

    // Each site carries its capacity (Gbit/s); a random backbone tree.
    for v in 0..sites as u32 {
        forest.set_value(v, 1 + (splitmix(&mut rng) % 100) as i64);
    }
    let mut links: Vec<(u32, u32)> = Vec::with_capacity(sites - 1);
    for v in 1..sites as u64 {
        let p = (splitmix(&mut rng) % v) as u32;
        forest.link(p, v as u32).expect("fresh edge");
        links.push((p, v as u32));
    }
    println!(
        "backbone: {} sites, {} links, total capacity {} Gbit/s",
        sites,
        forest.num_edges(),
        forest.component_sum(0)
    );

    // A maintenance day: 50k events (take a link down, query, restore).
    let events = 50_000;
    let mut splits_observed = 0u64;
    let mut capacity_lost_max = 0i64;
    let t = std::time::Instant::now();
    for _ in 0..events {
        let i = (splitmix(&mut rng) % links.len() as u64) as usize;
        let (u, v) = links[i];
        forest.cut(u, v).expect("link was up");
        if !forest.connected(u, v) {
            splits_observed += 1;
            // The side of v went dark: how much capacity is stranded?
            let stranded = forest.component_sum(v);
            capacity_lost_max = capacity_lost_max.max(stranded);
        }
        forest.link(u, v).expect("restore");
    }
    let elapsed = t.elapsed();
    println!(
        "{events} maintenance events in {elapsed:.1?} ({:.0} events/s)",
        events as f64 / elapsed.as_secs_f64()
    );
    println!("every cut split the tree (observed {splits_observed}/{events})");
    println!("worst stranded capacity in one event: {capacity_lost_max} Gbit/s");
    assert_eq!(splits_observed, events as u64, "tree edges always split");

    // Rolling topology change: rewire 10k leaves to new parents, keeping
    // everything connected — subtree_sum answers per-region capacity.
    for _ in 0..10_000 {
        let i = (splitmix(&mut rng) % links.len() as u64) as usize;
        let (u, v) = links[i];
        forest.cut(u, v).expect("up");
        // Reattach v's island at a random site on the other island.
        let mut w = (splitmix(&mut rng) % sites as u64) as u32;
        while forest.connected(v, w) {
            w = (splitmix(&mut rng) % sites as u64) as u32;
        }
        forest.link(v, w).expect("new edge");
        links[i] = (v, w);
    }
    println!(
        "\nafter rewiring 10k links: still one island of {} sites, capacity {} Gbit/s",
        forest.component_size(0),
        forest.component_sum(0)
    );
    assert_eq!(forest.component_size(0), sites);
}
