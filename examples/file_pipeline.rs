//! A file-based analysis pipeline: generate a dataset, write it in each of
//! the paper's on-disk formats, read it back, and compare every
//! bridge-finding algorithm on it — the workflow of §4.2 with graph-io in
//! place of the dataset downloads.
//!
//! ```sh
//! cargo run --release --example file_pipeline
//! ```

use euler_meets_gpu::graph_io;
use euler_meets_gpu::prelude::*;
use std::time::Instant;

/// A named, boxed bridge-finding algorithm closure.
type NamedAlg<'a> = (&'a str, Box<dyn Fn() -> BridgesResult + 'a>);

fn main() {
    let device = Device::new();
    let dir = std::env::temp_dir().join("emg_file_pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A Kronecker graph like the paper's kron_g500 family (scaled down).
    let graph = kronecker_graph(14, 16, 500);
    let (lcc, _) = largest_connected_component(&graph);
    println!(
        "kronecker: {} nodes, {} edges in the largest component",
        lcc.num_nodes(),
        lcc.num_edges()
    );

    // Write in all three formats; auto-detect and re-read each.
    let paths = [
        (dir.join("kron.txt"), "snap"),
        (dir.join("kron.gr"), "dimacs"),
        (dir.join("kron.graph"), "metis"),
    ];
    for (path, fmt) in &paths {
        let mut buf = Vec::new();
        match *fmt {
            "snap" => graph_io::snap::write(&mut buf, &lcc).unwrap(),
            "dimacs" => graph_io::dimacs::write(&mut buf, &lcc).unwrap(),
            _ => graph_io::metis::write(&mut buf, &lcc).unwrap(),
        }
        std::fs::write(path, &buf).expect("write");
        let parsed = graph_io::read_edge_list(path).expect("re-read");
        println!(
            "  {fmt:>6}: {} bytes, re-read {} nodes / {} edges",
            buf.len(),
            parsed.graph.num_nodes(),
            parsed.graph.num_edges()
        );
        assert_eq!(parsed.graph.num_nodes(), lcc.num_nodes());
    }

    // The §4 lineup on the re-read SNAP copy.
    let parsed = graph_io::read_edge_list(&paths[0].0).expect("read");
    let graph = parsed.graph;
    let csr = Csr::from_edge_list(&graph);
    println!("\nbridge-finding on the re-read graph:");
    let mut reference: Option<Vec<u32>> = None;
    let algs: [NamedAlg; 4] = [
        ("cpu-dfs", Box::new(|| bridges_dfs(&graph, &csr))),
        (
            "gpu-tv",
            Box::new(|| bridges_tv(&device, &graph, &csr).expect("connected")),
        ),
        (
            "gpu-ck",
            Box::new(|| bridges_ck_device(&device, &graph, &csr).expect("connected")),
        ),
        (
            "gpu-hybrid",
            Box::new(|| bridges_hybrid(&device, &graph, &csr).expect("connected")),
        ),
    ];
    for (name, run) in &algs {
        let t = Instant::now();
        let result = run();
        println!(
            "  {name:>10}: {:>6} bridges in {:.1?}",
            result.num_bridges(),
            t.elapsed()
        );
        match &reference {
            None => reference = Some(result.bridge_ids()),
            Some(ids) => assert_eq!(ids, &result.bridge_ids(), "{name} disagrees"),
        }
    }
    println!("\nall four algorithms agree ✓");
}
