//! Phylogenetic distance computation — the application that motivated the
//! naïve GPU LCA algorithm the paper compares against (Martins et al.,
//! "Phylogenetic distance computation using CUDA", reference [38]).
//!
//! The distance between two taxa `x`, `y` in a phylogenetic tree is
//! `level(x) + level(y) − 2 · level(lca(x, y))`. A species tree is shallow
//! and queries are abundant — the regime where both the naïve walker and
//! Inlabel shine; we run both and check they agree.
//!
//! ```sh
//! cargo run --release --example phylogenetics
//! ```

use euler_meets_gpu::prelude::*;
use std::time::Instant;

fn main() {
    let device = Device::new();

    // A synthetic "species tree": scale-free trees mimic the unbalanced
    // shape of real phylogenies (few deep clades, many shallow leaves).
    let n = 2_000_000;
    let tree = ba_tree(n, 2024);
    println!("species tree: {n} taxa");

    // Pairwise distance queries between random taxa.
    let q = 1_000_000;
    let queries = random_queries(n, q, 77);

    // Preprocess with both algorithms.
    let t = Instant::now();
    let inlabel = GpuInlabelLca::preprocess(&device, &tree).expect("preprocess");
    println!("Inlabel preprocessing: {:?}", t.elapsed());

    let t = Instant::now();
    let naive = NaiveGpuLca::preprocess(&device, &tree);
    println!("Naive preprocessing:   {:?}", t.elapsed());

    // Levels for the distance formula (the naive preprocessing computes
    // them; they double as the Inlabel tables' levels).
    let levels = naive.levels();

    let mut lca_inlabel = vec![0u32; q];
    let t = Instant::now();
    inlabel.query_batch(&queries, &mut lca_inlabel);
    let t_inlabel = t.elapsed();

    let mut lca_naive = vec![0u32; q];
    let t = Instant::now();
    naive.query_batch(&queries, &mut lca_naive);
    let t_naive = t.elapsed();

    assert_eq!(lca_inlabel, lca_naive, "algorithms must agree");

    // Phylogenetic distances.
    let distances: Vec<u32> = queries
        .iter()
        .zip(&lca_inlabel)
        .map(|(&(x, y), &z)| levels[x as usize] + levels[y as usize] - 2 * levels[z as usize])
        .collect();
    let mean = distances.iter().map(|&d| d as f64).sum::<f64>() / q as f64;
    let max = distances.iter().max().unwrap();

    println!("\n{q} pairwise phylogenetic distances:");
    println!("  mean distance = {mean:.2} edges, max = {max}");
    println!("  Inlabel query time: {t_inlabel:?}");
    println!("  Naive   query time: {t_naive:?}");
    println!("(on shallow trees the naive walker is competitive — Figure 5's left edge)");

    // The packaged path API: batched distances in one call, plus the
    // evolutionary chain between two specific taxa.
    let paths = lca::TreePaths::preprocess(&device, &tree).expect("preprocess");
    let mut batch = vec![0u32; q];
    let t = Instant::now();
    paths.distance_batch(&queries, &mut batch);
    println!(
        "\nTreePaths::distance_batch: {q} distances in {:?}",
        t.elapsed()
    );
    assert_eq!(batch, distances, "distance formula and TreePaths agree");

    let (a, b) = queries[0];
    let chain = paths.path(a, b);
    println!(
        "lineage between taxa {a} and {b}: {} nodes through ancestor {}",
        chain.len(),
        paths.lca(a, b)
    );
    let mid = paths.kth_on_path(a, b, paths.distance(a, b) / 2).unwrap();
    println!("midpoint of that lineage: taxon {mid}");
}
