//! # euler-meets-gpu
//!
//! A Rust reproduction of *“Euler Meets GPU: Practical Graph Algorithms
//! with Theoretical Guarantees”* (Polak, Siwiec, Stobierski — IPDPS 2021,
//! arXiv:2103.15217): the Euler tour technique on a simulated
//! bulk-synchronous GPU, applied to batched LCA queries and bridge finding.
//!
//! This facade crate re-exports the workspace members under one roof:
//!
//! * [`gpu_sim`] — the simulated device and its moderngpu-style primitives;
//! * [`graph_core`] — CSR graphs, edge lists, rooted trees, bitsets;
//! * [`euler_tour`] — DCEL construction, list ranking, tour arrays and tree
//!   statistics (the paper's §2);
//! * [`lca`] — Schieber–Vishkin Inlabel on three substrates plus the naïve
//!   GPU walker and the RMQ baseline (§3);
//! * [`bridges`] — Tarjan–Vishkin, Chaitanya–Kothapalli, the hybrid and the
//!   sequential DFS baseline (§4);
//! * [`graphgen`] — every synthetic workload the evaluation uses;
//! * [`graph_io`] — DIMACS/SNAP/METIS readers for the real datasets of
//!   Table 1.
//!
//! ```
//! use euler_meets_gpu::prelude::*;
//!
//! let device = Device::new();
//! let tree = random_tree(10_000, None, 42);
//! let lca = GpuInlabelLca::preprocess(&device, &tree).unwrap();
//! let queries = random_queries(10_000, 1000, 43);
//! let mut out = vec![0u32; queries.len()];
//! lca.query_batch(&queries, &mut out);
//! ```

#![warn(missing_docs)]

pub use bridges;
pub use euler_tour;
pub use gpu_sim;
pub use graph_core;
pub use graph_io;
pub use graphgen;
pub use lca;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use bridges::{
        bcc_tv, bridges_ck_device, bridges_ck_rayon, bridges_dfs, bridges_hybrid, bridges_tv,
        BccResult, BridgesResult,
    };
    pub use euler_tour::{EulerTour, EulerTourForest, TreeStats};
    pub use gpu_sim::{Device, DeviceConfig};
    pub use graph_core::{Csr, EdgeList, Tree};
    pub use graph_io::read_edge_list;
    pub use graphgen::{
        ba_tree, kronecker_graph, largest_connected_component, random_queries, random_tree,
        road_grid, web_graph,
    };
    pub use lca::{
        BlockRmqLca, BruteLca, GpuInlabelLca, GpuRmqLca, LcaAlgorithm, MulticoreInlabelLca,
        NaiveGpuLca, RmqLca, SequentialInlabelLca, SparseRmqLca, TreePaths,
    };
}
