//! Adversarial tree and graph shapes: the degenerate inputs where parallel
//! algorithms historically break — paths (maximum depth), stars (maximum
//! fan-out), caterpillars and brooms (mixed), complete binary trees
//! (maximum balance). Every algorithm family is cross-checked on each.

// Parent arrays are built by index on purpose: the index *is* the node id.
#![allow(clippy::needless_range_loop)]

use euler_meets_gpu::bridges::{articulation_points_from_bcc, bcc_sequential, bcc_tv};
use euler_meets_gpu::prelude::*;
use graph_core::ids::INVALID_NODE;

fn path_tree(n: usize) -> Tree {
    let mut parents = vec![INVALID_NODE; n];
    for v in 1..n {
        parents[v] = v as u32 - 1;
    }
    Tree::from_parent_array(parents, 0).unwrap()
}

fn star_tree(n: usize) -> Tree {
    let mut parents = vec![0u32; n];
    parents[0] = INVALID_NODE;
    Tree::from_parent_array(parents, 0).unwrap()
}

/// Spine of `n/2` nodes, one leaf hanging off every spine node.
fn caterpillar_tree(n: usize) -> Tree {
    let spine = n / 2;
    let mut parents = vec![INVALID_NODE; n];
    for v in 1..spine {
        parents[v] = v as u32 - 1;
    }
    for leaf in 0..n - spine {
        parents[spine + leaf] = (leaf % spine) as u32;
    }
    Tree::from_parent_array(parents, 0).unwrap()
}

/// A path of `n/2` nodes ending in a star of `n/2` leaves.
fn broom_tree(n: usize) -> Tree {
    let handle = n / 2;
    let mut parents = vec![INVALID_NODE; n];
    for v in 1..handle {
        parents[v] = v as u32 - 1;
    }
    for v in handle..n {
        parents[v] = handle as u32 - 1;
    }
    Tree::from_parent_array(parents, 0).unwrap()
}

fn complete_binary_tree(n: usize) -> Tree {
    let mut parents = vec![INVALID_NODE; n];
    for v in 1..n {
        parents[v] = ((v - 1) / 2) as u32;
    }
    Tree::from_parent_array(parents, 0).unwrap()
}

fn check_lca_all_algorithms(tree: &Tree, label: &str) {
    let device = Device::new();
    let n = tree.num_nodes();
    let queries = random_queries(n, 2000, 0xABCD);
    let brute = BruteLca::preprocess(tree);
    let mut expect = vec![0u32; queries.len()];
    brute.query_batch(&queries, &mut expect);

    let algs: Vec<Box<dyn LcaAlgorithm>> = vec![
        Box::new(SequentialInlabelLca::preprocess(tree)),
        Box::new(MulticoreInlabelLca::preprocess(&device, tree).unwrap()),
        Box::new(GpuInlabelLca::preprocess(&device, tree).unwrap()),
        Box::new(NaiveGpuLca::preprocess(&device, tree)),
        Box::new(RmqLca::preprocess(tree)),
        Box::new(SparseRmqLca::preprocess(tree)),
        Box::new(BlockRmqLca::preprocess(tree)),
        Box::new(GpuRmqLca::preprocess(&device, tree).unwrap()),
    ];
    for alg in &algs {
        let mut got = vec![0u32; queries.len()];
        alg.query_batch(&queries, &mut got);
        assert_eq!(
            got,
            expect,
            "{label}: {} disagrees with brute force",
            alg.name()
        );
    }
}

#[test]
fn lca_on_path() {
    check_lca_all_algorithms(&path_tree(3000), "path");
}

#[test]
fn lca_on_star() {
    check_lca_all_algorithms(&star_tree(3000), "star");
}

#[test]
fn lca_on_caterpillar() {
    check_lca_all_algorithms(&caterpillar_tree(3000), "caterpillar");
}

#[test]
fn lca_on_broom() {
    check_lca_all_algorithms(&broom_tree(3000), "broom");
}

#[test]
fn lca_on_complete_binary() {
    check_lca_all_algorithms(&complete_binary_tree(4095), "complete-binary");
}

fn check_bridges_all_algorithms(graph: &EdgeList, label: &str) {
    let device = Device::new();
    let csr = Csr::from_edge_list(graph);
    let expect = bridges_dfs(graph, &csr).bridge_ids();
    let tv = bridges_tv(&device, graph, &csr).unwrap();
    let ck = bridges_ck_device(&device, graph, &csr).unwrap();
    let ck_cpu = bridges_ck_rayon(graph, &csr).unwrap();
    let hy = bridges_hybrid(&device, graph, &csr).unwrap();
    for (name, got) in [
        ("tv", tv.bridge_ids()),
        ("ck", ck.bridge_ids()),
        ("ck-cpu", ck_cpu.bridge_ids()),
        ("hybrid", hy.bridge_ids()),
    ] {
        assert_eq!(got, expect, "{label}: {name} disagrees with DFS");
    }
    // Biconnectivity partition agrees with the sequential oracle too.
    let bcc = bcc_tv(&device, graph, &csr).unwrap();
    let seq = bcc_sequential(graph, &csr);
    assert_eq!(
        bcc.canonical_partition(),
        seq.canonical_partition(),
        "{label}: bcc partitions disagree"
    );
    let cuts = articulation_points_from_bcc(graph, &csr, &bcc);
    let oracle = euler_meets_gpu::bridges::articulation_points_dfs(graph, &csr);
    for v in 0..graph.num_nodes() {
        assert_eq!(cuts.get(v), oracle.get(v), "{label}: cut vertex {v}");
    }
}

#[test]
fn bridges_on_pure_path_graph() {
    // Every edge is a bridge; CK's marking walks are longest here.
    let n = 2000;
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    check_bridges_all_algorithms(&EdgeList::new(n, edges), "path");
}

#[test]
fn bridges_on_cycle_graph() {
    // No bridges at all; exactly one non-tree edge.
    let n = 2000;
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    edges.push((n as u32 - 1, 0));
    check_bridges_all_algorithms(&EdgeList::new(n, edges), "cycle");
}

#[test]
fn bridges_on_star_graph() {
    let n = 2000;
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    check_bridges_all_algorithms(&EdgeList::new(n, edges), "star");
}

#[test]
fn bridges_on_chain_of_cliques() {
    // k cliques of size 5 connected by bridges: the bridge set is exactly
    // the chain, and each clique is one biconnected component.
    let k = 60;
    let size = 5;
    let n = k * size;
    let mut edges = Vec::new();
    for c in 0..k {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in i + 1..size as u32 {
                edges.push((base + i, base + j));
            }
        }
        if c + 1 < k {
            edges.push((base + size as u32 - 1, base + size as u32));
        }
    }
    let graph = EdgeList::new(n, edges);
    let csr = Csr::from_edge_list(&graph);
    let dfs = bridges_dfs(&graph, &csr);
    assert_eq!(dfs.num_bridges(), k - 1);
    check_bridges_all_algorithms(&graph, "clique-chain");
}

#[test]
fn bridges_on_ladder_graph() {
    // Two parallel paths with rungs: 2-edge-connected except nothing — no
    // bridges; high diameter stresses BFS-based CK.
    let len = 1000;
    let n = 2 * len;
    let mut edges = Vec::new();
    for i in 0..len as u32 {
        if i + 1 < len as u32 {
            edges.push((i, i + 1));
            edges.push((len as u32 + i, len as u32 + i + 1));
        }
        edges.push((i, len as u32 + i));
    }
    let graph = EdgeList::new(n, edges);
    let csr = Csr::from_edge_list(&graph);
    assert_eq!(bridges_dfs(&graph, &csr).num_bridges(), 0);
    check_bridges_all_algorithms(&graph, "ladder");
}

#[test]
fn dynamic_forest_handles_path_and_star_extremes() {
    use euler_meets_gpu::euler_tour::EulerTourForest;
    let n = 5000;
    // Path: cut the middle, verify sizes, relink.
    let mut f = EulerTourForest::new(n);
    for v in 1..n as u32 {
        f.link(v - 1, v).unwrap();
    }
    let mid = (n / 2) as u32;
    f.cut(mid - 1, mid).unwrap();
    assert_eq!(f.component_size(0), n / 2);
    assert_eq!(f.component_size(mid), n - n / 2);
    f.link(mid - 1, mid).unwrap();
    assert_eq!(f.component_size(0), n);
    // Star: cutting any spoke isolates exactly one leaf.
    let mut s = EulerTourForest::new(n);
    for v in 1..n as u32 {
        s.link(0, v).unwrap();
    }
    s.cut(0, 777).unwrap();
    assert_eq!(s.component_size(777), 1);
    assert_eq!(s.component_size(0), n - 1);
}
