//! Arena-reuse determinism across whole pipelines: repeated runs on one
//! `Device` (warm, recycled pool) must be bit-identical to fresh-device
//! runs for the bridges and Euler-tour pipelines — the guarantee that lets
//! a long-lived service hold one device and stream work through it.
//!
//! CI runs this suite under `RAYON_NUM_THREADS=1` and `=4`.

use bridges::{bridges_hybrid, bridges_tv};
use euler_meets_gpu as _;
use euler_tour::{EulerTour, Ranker, TreeStats};
use gpu_sim::{Device, DeviceConfig};
use graph_core::{Csr, EdgeList};
use lca::inlabel::InlabelTables;

fn test_graph(n: usize, seed: u64) -> EdgeList {
    let mut state = seed;
    let mut step = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 33
    };
    // Random spanning tree + extra edges: connected, bridges guaranteed.
    let mut edges: Vec<(u32, u32)> = (1..n as u64)
        .map(|v| ((step() % v) as u32, v as u32))
        .collect();
    for _ in 0..n / 2 {
        let u = (step() % n as u64) as u32;
        let v = (step() % n as u64) as u32;
        edges.push((u, v));
    }
    EdgeList::new(n, edges)
}

fn malloc_device() -> Device {
    Device::with_config(DeviceConfig {
        pooling: false,
        ..Default::default()
    })
}

#[test]
fn bridges_pipelines_bit_identical_on_warm_pool() {
    let n = 4000;
    let graph = test_graph(n, 0xB51D);
    let csr = Csr::from_edge_list(&graph);

    let shared = Device::new();
    let tv_base = bridges_tv(&shared, &graph, &csr).unwrap().bridge_ids();
    let hy_base = bridges_hybrid(&shared, &graph, &csr).unwrap().bridge_ids();
    assert_eq!(tv_base, hy_base, "TV and hybrid must agree");

    for round in 0..3 {
        // Warm pool (same device), cold pool (fresh device), pooling off.
        for (label, device) in [
            ("warm", None),
            ("fresh", Some(Device::new())),
            ("malloc", Some(malloc_device())),
        ] {
            let device = device.as_ref().unwrap_or(&shared);
            assert_eq!(
                bridges_tv(device, &graph, &csr).unwrap().bridge_ids(),
                tv_base,
                "tv/{label} round {round}"
            );
            assert_eq!(
                bridges_hybrid(device, &graph, &csr).unwrap().bridge_ids(),
                hy_base,
                "hybrid/{label} round {round}"
            );
        }
    }
}

#[test]
fn euler_tour_pipeline_bit_identical_on_warm_pool() {
    let n = 6000;
    let mut state = 0xE71Au64;
    let mut step = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 33
    };
    let edges: Vec<(u32, u32)> = (1..n as u64)
        .map(|v| ((step() % v) as u32, v as u32))
        .collect();

    let shared = Device::new();
    let base = EulerTour::build_from_edges(&shared, n, &edges, 0).unwrap();
    let base_stats = TreeStats::compute(&shared, &base);
    base_stats.validate().unwrap();

    for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::WeiJaJa] {
        for round in 0..2 {
            let warm =
                EulerTour::build_from_edges_with_ranker(&shared, n, &edges, 0, ranker).unwrap();
            assert_eq!(warm.rank(), base.rank(), "{ranker:?} warm round {round}");
            assert_eq!(warm.order(), base.order());
            let fresh_dev = Device::new();
            let fresh =
                EulerTour::build_from_edges_with_ranker(&fresh_dev, n, &edges, 0, ranker).unwrap();
            assert_eq!(fresh.rank(), base.rank(), "{ranker:?} fresh round {round}");
            let stats = TreeStats::compute(&shared, &warm);
            assert_eq!(stats, base_stats);
        }
    }
}

#[test]
fn inlabel_pipeline_bit_identical_on_warm_pool() {
    let n = 5000;
    let mut parents = vec![graph_core::ids::INVALID_NODE; n];
    for (v, p) in parents.iter_mut().enumerate().skip(1) {
        *p = (v / 3) as u32;
    }
    let tree = graph_core::Tree::from_parent_array(parents, 0).unwrap();
    let stats = euler_tour::cpu::sequential_stats(&tree);

    let shared = Device::new();
    let base = InlabelTables::from_stats_device(&shared, &stats);
    for round in 0..3 {
        let warm = InlabelTables::from_stats_device(&shared, &stats);
        assert_eq!(warm.inlabel, base.inlabel, "warm round {round}");
        assert_eq!(warm.ascendant, base.ascendant);
        assert_eq!(warm.head, base.head);
        let fresh = InlabelTables::from_stats_device(&Device::new(), &stats);
        assert_eq!(fresh.ascendant, base.ascendant, "fresh round {round}");
    }
    // Ground truth: the sequential construction.
    let seq = InlabelTables::from_stats_seq(&stats);
    assert_eq!(base.inlabel, seq.inlabel);
    assert_eq!(base.ascendant, seq.ascendant);
    assert_eq!(base.head, seq.head);
}

#[test]
fn warm_pipelines_allocate_zero_scratch_at_steady_state() {
    let graph = test_graph(3000, 0x57E4);
    let csr = Csr::from_edge_list(&graph);
    let device = Device::new();
    let base = bridges_tv(&device, &graph, &csr).unwrap().bridge_ids();
    let before = device.metrics().snapshot();
    for _ in 0..3 {
        assert_eq!(
            bridges_tv(&device, &graph, &csr).unwrap().bridge_ids(),
            base
        );
    }
    let d = device.metrics().snapshot().since(&before);
    assert_eq!(
        d.bytes_allocated, 0,
        "steady-state bridges_tv must serve all scratch from the pool"
    );
    assert!(d.bytes_reused > 0);
}
