//! Workspace-level property tests (proptest): random tree and graph shapes
//! exercise every algorithm against its oracle.

use euler_meets_gpu::prelude::*;
use graph_core::ids::INVALID_NODE;
use proptest::prelude::*;

/// Strategy: a random parent array (each node attaches to an earlier one),
/// i.e. a uniformly random increasing tree shape.
fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (2..max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<u32>> = (1..n)
            .map(|v| (0..v as u32).prop_map(|p| p).boxed())
            .collect();
        parents.prop_map(move |ps| {
            let mut parent = vec![INVALID_NODE; n];
            for (v, p) in ps.into_iter().enumerate() {
                parent[v + 1] = p;
            }
            Tree::from_parent_array(parent, 0).unwrap()
        })
    })
}

/// Strategy: a connected multigraph = random tree + extra random edges
/// (possibly duplicates and self-loops).
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = EdgeList> {
    arb_tree(max_n).prop_flat_map(|tree| {
        let n = tree.num_nodes();
        let base: Vec<(u32, u32)> = tree.edges();
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..2 * n).prop_map(move |extra| {
            let mut edges = base.clone();
            edges.extend(extra);
            EdgeList::new(n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euler_stats_match_sequential_oracle(tree in arb_tree(300)) {
        let device = Device::new();
        let tour = EulerTour::build(&device, &tree).unwrap();
        let gpu = TreeStats::compute(&device, &tour);
        let cpu = euler_tour::cpu::sequential_stats(&tree);
        prop_assert_eq!(gpu, cpu);
    }

    #[test]
    fn inlabel_properties_hold(tree in arb_tree(300)) {
        let stats = euler_tour::cpu::sequential_stats(&tree);
        let tables = lca::InlabelTables::from_stats_seq(&stats);
        prop_assert!(tables.check_structural_properties(&stats).is_ok());
    }

    #[test]
    fn lca_gpu_matches_brute(tree in arb_tree(200), seed in 0u64..1000) {
        let device = Device::new();
        let n = tree.num_nodes();
        let queries = random_queries(n, 50, seed);
        let gpu = GpuInlabelLca::preprocess(&device, &tree).unwrap();
        let brute = BruteLca::preprocess(&tree);
        let mut a = vec![0u32; queries.len()];
        let mut b = vec![0u32; queries.len()];
        gpu.query_batch(&queries, &mut a);
        brute.query_batch(&queries, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lca_rmq_matches_brute(tree in arb_tree(200), seed in 0u64..1000) {
        let n = tree.num_nodes();
        let queries = random_queries(n, 50, seed);
        let rmq = RmqLca::preprocess(&tree);
        let brute = BruteLca::preprocess(&tree);
        let mut a = vec![0u32; queries.len()];
        let mut b = vec![0u32; queries.len()];
        rmq.query_batch(&queries, &mut a);
        brute.query_batch(&queries, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bridges_tv_matches_dfs(graph in arb_connected_graph(150)) {
        let device = Device::new();
        let csr = Csr::from_edge_list(&graph);
        let expected = bridges_dfs(&graph, &csr).bridge_ids();
        let got = bridges_tv(&device, &graph, &csr).unwrap().bridge_ids();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn bridges_ck_matches_dfs(graph in arb_connected_graph(150)) {
        let device = Device::new();
        let csr = Csr::from_edge_list(&graph);
        let expected = bridges_dfs(&graph, &csr).bridge_ids();
        prop_assert_eq!(
            bridges_ck_device(&device, &graph, &csr).unwrap().bridge_ids(),
            expected.clone()
        );
        prop_assert_eq!(
            bridges_ck_rayon(&graph, &csr).unwrap().bridge_ids(),
            expected
        );
    }

    #[test]
    fn bridges_hybrid_matches_dfs(graph in arb_connected_graph(150)) {
        let device = Device::new();
        let csr = Csr::from_edge_list(&graph);
        let expected = bridges_dfs(&graph, &csr).bridge_ids();
        let got = bridges_hybrid(&device, &graph, &csr).unwrap().bridge_ids();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn cc_component_count_matches_union_find(
        n in 2usize..200,
        edges in proptest::collection::vec((0u32..200, 0u32..200), 0..400)
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let graph = EdgeList::new(n, edges.clone());
        let device = Device::new();
        let cc = bridges::connected_components(&device, &graph);

        // Sequential union-find reference.
        let mut uf: Vec<u32> = (0..n as u32).collect();
        fn find(uf: &mut [u32], mut v: u32) -> u32 {
            while uf[v as usize] != v {
                uf[v as usize] = uf[uf[v as usize] as usize];
                v = uf[v as usize];
            }
            v
        }
        for (u, v) in edges {
            let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
            if ru != rv {
                uf[ru as usize] = rv;
            }
        }
        let mut roots: Vec<u32> = (0..n as u32).map(|v| find(&mut uf, v)).collect();
        roots.sort_unstable();
        roots.dedup();
        prop_assert_eq!(cc.num_components, roots.len());

        // Representatives must induce the same partition.
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                let same_ref = find(&mut uf, u) == find(&mut uf, v);
                let same_cc = cc.representative[u as usize] == cc.representative[v as usize];
                prop_assert_eq!(same_ref, same_cc, "nodes {} and {}", u, v);
            }
        }
    }

    #[test]
    fn bcc_partition_matches_sequential(graph in arb_connected_graph(120)) {
        use euler_meets_gpu::bridges::{bcc_sequential, bcc_tv};
        let device = Device::new();
        let csr = Csr::from_edge_list(&graph);
        let par = bcc_tv(&device, &graph, &csr).unwrap();
        let seq = bcc_sequential(&graph, &csr);
        prop_assert_eq!(par.num_components, seq.num_components);
        prop_assert_eq!(par.canonical_partition(), seq.canonical_partition());
    }

    #[test]
    fn articulation_points_from_bcc_match_lowlink(graph in arb_connected_graph(120)) {
        use euler_meets_gpu::bridges::{articulation_points_dfs, articulation_points_from_bcc, bcc_tv};
        let device = Device::new();
        let csr = Csr::from_edge_list(&graph);
        let bcc = bcc_tv(&device, &graph, &csr).unwrap();
        let from_bcc = articulation_points_from_bcc(&graph, &csr, &bcc);
        let oracle = articulation_points_dfs(&graph, &csr);
        for v in 0..graph.num_nodes() {
            prop_assert_eq!(from_bcc.get(v), oracle.get(v), "vertex {}", v);
        }
    }

    #[test]
    fn rmq_family_matches_brute(tree in arb_tree(150), seed in 0u64..1000) {
        let device = Device::new();
        let n = tree.num_nodes();
        let brute = BruteLca::preprocess(&tree);
        let sparse = SparseRmqLca::preprocess(&tree);
        let block = BlockRmqLca::preprocess(&tree);
        let gpu = GpuRmqLca::preprocess(&device, &tree).unwrap();
        let queries = graphgen::random_queries(n, 200, seed);
        for &(x, y) in &queries {
            let expect = brute.query(x, y);
            prop_assert_eq!(sparse.query(x, y), expect);
            prop_assert_eq!(block.query(x, y), expect);
            prop_assert_eq!(gpu.query(x, y), expect);
        }
    }

    #[test]
    fn dynamic_forest_subtree_sums_match_static_tour(tree in arb_tree(120)) {
        // Link the static tree's edges into the dynamic forest with value 1
        // per vertex: subtree_sum(v, parent(v)) must equal the static Euler
        // tour's subtree_size(v) — the dynamic and batch pipelines agree.
        use euler_meets_gpu::euler_tour::EulerTourForest;
        let device = Device::new();
        let n = tree.num_nodes();
        let mut forest = EulerTourForest::new(n);
        for v in 0..n as u32 {
            forest.set_value(v, 1);
        }
        for (u, v) in tree.edges() {
            forest.link(u, v).unwrap();
        }
        let tour = EulerTour::build(&device, &tree).unwrap();
        let stats = TreeStats::compute(&device, &tour);
        for v in 1..n as u32 {
            let p = tree.parent(v).unwrap();
            prop_assert_eq!(
                forest.subtree_sum(v, p).unwrap(),
                stats.subtree_size[v as usize] as i64,
                "subtree of {}", v
            );
        }
        prop_assert_eq!(forest.component_size(0), n);
    }

    #[test]
    fn permuted_trees_answer_permuted_queries(tree in arb_tree(150), seed in 0u64..500) {
        // Relabeling the tree must relabel all LCA answers consistently.
        let permuted = graphgen::permute_labels(&tree, seed);
        // Recover the permutation from parent structure is hard in general;
        // instead check answer *depths* are preserved for the same random
        // query positions drawn by depth statistics.
        let n = tree.num_nodes();
        let a = BruteLca::preprocess(&tree);
        let b = BruteLca::preprocess(&permuted);
        // Depth multiset of LCA answers over all pairs is permutation
        // invariant for corresponding query sets; spot-check the global
        // depth multiset.
        let mut d1: Vec<u32> = (0..n as u32).map(|v| a.levels()[v as usize]).collect();
        let mut d2: Vec<u32> = (0..n as u32).map(|v| b.levels()[v as usize]).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }
}
