//! Ingestion equivalence over every `graphgen` family: the chunked
//! parallel text parse is bit-identical to the sequential parse in all
//! three formats, `emgbin` round-trips the parsed graph (and CSR)
//! exactly, and the device-built CSR matches the rayon-built one.

use euler_meets_gpu::prelude::*;
use euler_meets_gpu::{graph_io, graphgen};
use graph_io::{binary, dimacs, metis, snap, ParsedGraph};

fn families() -> Vec<(&'static str, EdgeList)> {
    let tree = graphgen::random_tree(1_500, Some(6), 0xE05);
    vec![
        ("kron", kronecker_graph(9, 12, 0xE01)),
        ("road", road_grid(24, 24, 0.8, 0xE02)),
        ("web", web_graph(900, 5, 0.4, 0xE03)),
        ("ba", graphgen::ba_graph(700, 4, 0xE04)),
        ("tree", EdgeList::new(tree.num_nodes(), tree.edges())),
    ]
}

#[test]
fn parallel_text_parse_is_bit_identical_across_families() {
    for (family, graph) in families() {
        for fmt in ["snap", "dimacs", "metis"] {
            let mut buf = Vec::new();
            match fmt {
                "snap" => snap::write(&mut buf, &graph),
                "dimacs" => dimacs::write(&mut buf, &graph),
                _ => metis::write(&mut buf, &graph),
            }
            .unwrap();
            let text = String::from_utf8(buf).unwrap();
            type ChunkParse = fn(&str, usize) -> Result<ParsedGraph, graph_io::ParseError>;
            let (seq, par_at): (ParsedGraph, ChunkParse) = match fmt {
                "snap" => (snap::parse(&text).unwrap(), snap::parse_chunks),
                "dimacs" => (dimacs::parse(&text).unwrap(), dimacs::parse_chunks),
                _ => (metis::parse(&text).unwrap(), metis::parse_chunks),
            };
            for chunks in [2, 5, 11] {
                let par: ParsedGraph = par_at(&text, chunks).unwrap();
                assert_eq!(
                    par.graph.num_nodes(),
                    seq.graph.num_nodes(),
                    "{family}/{fmt}/{chunks}"
                );
                assert_eq!(
                    par.graph.edges(),
                    seq.graph.edges(),
                    "{family}/{fmt}/{chunks}"
                );
                assert_eq!(
                    par.original_ids, seq.original_ids,
                    "{family}/{fmt}/{chunks}"
                );
            }
        }
    }
}

#[test]
fn emgbin_round_trips_every_family() {
    for (family, graph) in families() {
        // Go through SNAP text first so non-identity id mappings are
        // exercised (interning renumbers by first appearance).
        let mut buf = Vec::new();
        snap::write(&mut buf, &graph).unwrap();
        let parsed = snap::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let csr = Csr::from_edge_list(&parsed.graph);

        let bytes = binary::to_bytes(&parsed, Some(&csr));
        let (back, loaded_csr) = binary::read(&bytes).unwrap();
        assert_eq!(back.graph.num_nodes(), parsed.graph.num_nodes(), "{family}");
        assert_eq!(back.graph.edges(), parsed.graph.edges(), "{family}");
        assert_eq!(back.original_ids, parsed.original_ids, "{family}");
        assert_eq!(loaded_csr.expect("embedded CSR"), csr, "{family}");
    }
}

#[test]
fn device_csr_matches_rayon_csr_across_families() {
    let device = Device::new();
    for (family, graph) in families() {
        assert_eq!(
            Csr::from_edge_list_on(&device, &graph),
            Csr::from_edge_list(&graph),
            "{family}"
        );
    }
}
