//! Cross-crate integration tests: full pipelines from generators through
//! the Euler tour to the LCA and bridge algorithms.

use euler_meets_gpu::prelude::*;
use lca::batch::BatchRunner;

#[test]
fn lca_all_algorithms_agree_on_shallow_tree() {
    let device = Device::new();
    let n = 50_000;
    let tree = random_tree(n, None, 1);
    let queries = random_queries(n, 20_000, 2);

    let brute = BruteLca::preprocess(&tree);
    let mut expected = vec![0u32; queries.len()];
    brute.query_batch(&queries, &mut expected);

    let algorithms: Vec<Box<dyn LcaAlgorithm>> = vec![
        Box::new(SequentialInlabelLca::preprocess(&tree)),
        Box::new(MulticoreInlabelLca::preprocess(&device, &tree).unwrap()),
        Box::new(RmqLca::preprocess(&tree)),
    ];
    for algo in &algorithms {
        let mut out = vec![0u32; queries.len()];
        algo.query_batch(&queries, &mut out);
        assert_eq!(out, expected, "{} disagrees with brute force", algo.name());
    }
    // Device-borrowing algorithms checked separately (non-'static).
    let gpu = GpuInlabelLca::preprocess(&device, &tree).unwrap();
    let mut out = vec![0u32; queries.len()];
    gpu.query_batch(&queries, &mut out);
    assert_eq!(out, expected, "GPU Inlabel disagrees");

    let naive = NaiveGpuLca::preprocess(&device, &tree);
    let mut out = vec![0u32; queries.len()];
    naive.query_batch(&queries, &mut out);
    assert_eq!(out, expected, "GPU Naive disagrees");
}

#[test]
fn lca_all_algorithms_agree_on_deep_tree() {
    let device = Device::new();
    let n = 20_000;
    let tree = random_tree(n, Some(10), 3); // avg depth ≈ n/11
    let queries = random_queries(n, 2_000, 4);

    let brute = BruteLca::preprocess(&tree);
    let mut expected = vec![0u32; queries.len()];
    brute.query_batch(&queries, &mut expected);

    let gpu = GpuInlabelLca::preprocess(&device, &tree).unwrap();
    let naive = NaiveGpuLca::preprocess(&device, &tree);
    let seq = SequentialInlabelLca::preprocess(&tree);

    for (name, out) in [
        ("gpu", {
            let mut o = vec![0u32; queries.len()];
            gpu.query_batch(&queries, &mut o);
            o
        }),
        ("naive", {
            let mut o = vec![0u32; queries.len()];
            naive.query_batch(&queries, &mut o);
            o
        }),
        ("seq", {
            let mut o = vec![0u32; queries.len()];
            seq.query_batch(&queries, &mut o);
            o
        }),
    ] {
        assert_eq!(out, expected, "{name} disagrees on deep tree");
    }
}

#[test]
fn lca_agreement_on_scale_free_trees() {
    let device = Device::new();
    let n = 30_000;
    let tree = ba_tree(n, 5);
    let queries = random_queries(n, 10_000, 6);

    let brute = BruteLca::preprocess(&tree);
    let mut expected = vec![0u32; queries.len()];
    brute.query_batch(&queries, &mut expected);

    let gpu = GpuInlabelLca::preprocess(&device, &tree).unwrap();
    let mut out = vec![0u32; queries.len()];
    gpu.query_batch(&queries, &mut out);
    assert_eq!(out, expected);
}

#[test]
fn lca_batched_equals_unbatched() {
    let device = Device::new();
    let n = 10_000;
    let tree = random_tree(n, None, 7);
    let queries = random_queries(n, 5_000, 8);
    let gpu = GpuInlabelLca::preprocess(&device, &tree).unwrap();

    let mut whole = vec![0u32; queries.len()];
    gpu.query_batch(&queries, &mut whole);

    let mut batched = vec![0u32; queries.len()];
    BatchRunner::new(&gpu).run(&queries, &mut batched, 137);
    assert_eq!(whole, batched);
}

#[test]
fn bridges_all_algorithms_agree_on_kronecker_lcc() {
    let device = Device::new();
    let raw = kronecker_graph(11, 8, 9);
    let (graph, _) = largest_connected_component(&raw);
    let csr = Csr::from_edge_list(&graph);

    let expected = bridges_dfs(&graph, &csr).bridge_ids();
    assert_eq!(
        bridges_tv(&device, &graph, &csr).unwrap().bridge_ids(),
        expected,
        "TV"
    );
    assert_eq!(
        bridges_ck_device(&device, &graph, &csr)
            .unwrap()
            .bridge_ids(),
        expected,
        "CK device"
    );
    assert_eq!(
        bridges_ck_rayon(&graph, &csr).unwrap().bridge_ids(),
        expected,
        "CK rayon"
    );
    assert_eq!(
        bridges_hybrid(&device, &graph, &csr).unwrap().bridge_ids(),
        expected,
        "hybrid"
    );
}

#[test]
fn bridges_all_algorithms_agree_on_road_lcc() {
    let device = Device::new();
    let raw = road_grid(120, 120, 0.62, 10);
    let (graph, _) = largest_connected_component(&raw);
    let csr = Csr::from_edge_list(&graph);

    let expected = bridges_dfs(&graph, &csr);
    assert!(expected.num_bridges() > 0, "road LCC should be bridge-rich");

    for (name, got) in [
        ("TV", bridges_tv(&device, &graph, &csr).unwrap()),
        ("CK", bridges_ck_device(&device, &graph, &csr).unwrap()),
        ("hybrid", bridges_hybrid(&device, &graph, &csr).unwrap()),
    ] {
        assert_eq!(got.bridge_ids(), expected.bridge_ids(), "{name}");
    }
}

#[test]
fn bridges_agree_on_web_graph() {
    let device = Device::new();
    let graph = web_graph(30_000, 3, 0.6, 11);
    let (graph, _) = largest_connected_component(&graph);
    let csr = Csr::from_edge_list(&graph);

    let expected = bridges_dfs(&graph, &csr);
    // Web-like graphs have a large bridge fraction (the paper's wikipedia
    // row: 1.4M bridges / 9M edges ≈ 15%).
    assert!(
        expected.num_bridges() * 7 > graph.num_edges(),
        "web graph should be bridge-rich: {} of {}",
        expected.num_bridges(),
        graph.num_edges()
    );
    let tv = bridges_tv(&device, &graph, &csr).unwrap();
    assert_eq!(tv.bridge_ids(), expected.bridge_ids());
}

#[test]
fn euler_tour_scales_to_millions() {
    let device = Device::new();
    let n = 2_000_000;
    let tree = random_tree(n, None, 12);
    let tour = EulerTour::build(&device, &tree).unwrap();
    let stats = TreeStats::compute(&device, &tour);
    stats.validate().unwrap();
}

#[test]
fn wei_jaja_work_advantage_holds_at_scale() {
    // The §2.2 rationale: list ranking is done once and must be the cheap
    // O(n) kind. Building the tour with the Wei–JáJá ranker must cost
    // measurably less device work than with Wyllie pointer jumping, whose
    // ranking alone adds Θ(n log n).
    let device = Device::new();
    let n = 1 << 18;
    let tree = random_tree(n, None, 13);
    let edges = tree.edges();

    let before = device.metrics().snapshot();
    let _ = euler_tour::EulerTour::build_from_edges_with_ranker(
        &device,
        n,
        &edges,
        tree.root(),
        euler_tour::Ranker::WeiJaJa,
    )
    .unwrap();
    let wj = device.metrics().snapshot().since(&before);

    let before = device.metrics().snapshot();
    let _ = euler_tour::EulerTour::build_from_edges_with_ranker(
        &device,
        n,
        &edges,
        tree.root(),
        euler_tour::Ranker::Wyllie,
    )
    .unwrap();
    let wy = device.metrics().snapshot().since(&before);

    assert!(
        wy.work_items > wj.work_items + (n as u64) * 10,
        "Wyllie tour build ({}) should exceed Wei-JaJa ({}) by Θ(n log n)",
        wy.work_items,
        wj.work_items
    );
}
