//! Full-pipeline sanitizer gate: every production algorithm, run end to
//! end under `SanitizeMode::Full`, must produce **zero** findings. This is
//! the flip side of the seeded-violation suite in
//! `crates/gpu-sim/tests/sanitizer.rs`: there we prove the sanitizer sees
//! planted bugs; here we prove the shipped kernels are clean (every
//! intentional race carries its `benign` annotation, every pooled buffer
//! is initialized before it is read, no index ever leaves its region).

use bridges::{bridges_hybrid_with, bridges_tv_with};
use euler_meets_gpu::gpu_sim::SanitizeMode;
use euler_meets_gpu::prelude::*;
use euler_tour::ranking::Ranker;

/// A sanitizing device with small blocks so even these small inputs fan
/// out across many virtual blocks (racecheck needs cross-block traffic)
/// and a low inline threshold so the parallel paths actually run.
fn sanitizing_device() -> Device {
    Device::with_config(DeviceConfig {
        threads: Some(4),
        block_size: 256,
        seq_threshold: 64,
        sanitize: SanitizeMode::Full,
        sanitize_fatal: false,
        ..DeviceConfig::default()
    })
}

/// Asserts the device accumulated no findings, printing them all if it did.
fn assert_clean(device: &Device, stage: &str) {
    let findings = device.take_findings();
    assert!(
        findings.is_empty(),
        "sanitizer findings in `{stage}`:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f:?}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn bridges_all_backends_are_sanitizer_clean() {
    let device = sanitizing_device();
    let graph = graphgen::ba_graph(600, 3, 11);
    let csr = Csr::from_edge_list(&graph);
    assert_clean(&device, "csr construction");

    for builder in bridges::forest::all_builders() {
        let tv = bridges_tv_with(&device, &graph, &csr, builder.as_ref()).expect("tv");
        assert_clean(&device, &format!("bridges_tv[{}]", builder.name()));
        let hy = bridges_hybrid_with(&device, &graph, &csr, builder.as_ref()).expect("hybrid");
        assert_clean(&device, &format!("bridges_hybrid[{}]", builder.name()));
        assert_eq!(tv.is_bridge, hy.is_bridge, "backend {}", builder.name());
    }

    bridges_ck_device(&device, &graph, &csr).expect("ck");
    assert_clean(&device, "bridges_ck_device");

    bcc_tv(&device, &graph, &csr).expect("bcc");
    assert_clean(&device, "bcc_tv");

    let snap = device.metrics().snapshot();
    assert_eq!(snap.san_findings, 0);
    assert!(snap.san_accesses > 0, "Full mode must actually track");
}

#[test]
fn euler_tour_and_stats_are_sanitizer_clean_for_every_ranker() {
    let device = sanitizing_device();
    let tree = random_tree(800, None, 21);
    for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::WeiJaJa] {
        let tour = EulerTour::build_with_ranker(&device, &tree, ranker).expect("tour");
        assert_clean(&device, &format!("euler_tour[{ranker:?}]"));
        let stats = TreeStats::compute(&device, &tour);
        assert_clean(&device, &format!("tree_stats[{ranker:?}]"));
        assert_eq!(
            stats.subtree_size[tree.root() as usize] as usize,
            tree.num_nodes()
        );
    }
    assert_eq!(device.metrics().snapshot().san_findings, 0);
}

#[test]
fn lca_algorithms_are_sanitizer_clean() {
    let device = sanitizing_device();
    let tree = random_tree(700, Some(8), 31);
    let queries = random_queries(700, 1_000, 32);
    let mut out = vec![0u32; queries.len()];

    let inlabel = GpuInlabelLca::preprocess(&device, &tree).expect("inlabel");
    inlabel.query_batch(&queries, &mut out);
    assert_clean(&device, "gpu_inlabel_lca");

    let rmq = GpuRmqLca::preprocess(&device, &tree).expect("rmq");
    rmq.query_batch(&queries, &mut out);
    assert_clean(&device, "gpu_rmq_lca");

    let naive = NaiveGpuLca::preprocess(&device, &tree);
    naive.query_batch(&queries, &mut out);
    assert_clean(&device, "naive_gpu_lca");

    assert_eq!(device.metrics().snapshot().san_findings, 0);
}
