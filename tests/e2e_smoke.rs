//! End-to-end smoke test of the paper's full pipeline on small random
//! inputs: graphgen tree → DCEL → Euler tour list ranking → tree statistics
//! → batched LCA → bridges, each stage validated against its sequential
//! oracle (`rank_sequential`, `sequential_stats`, `BruteLca`, DFS bridges).
//!
//! The property suites exercise each stage in depth; this test exists so a
//! single fast target proves the stages still *compose*.

use euler_meets_gpu::prelude::*;
use euler_tour::dcel::Dcel;
use euler_tour::list::EulerList;
use euler_tour::ranking::{rank, rank_sequential, Ranker};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn pipeline_stages_compose_on_random_trees() {
    let device = Device::new();
    for seed in 0..5u64 {
        let n = 50 + 37 * seed as usize;
        let tree = random_tree(n, None, seed);

        // Stage 1: Euler tour list, ranked by all three rankers; the
        // sequential walk is the oracle.
        let dcel = Dcel::build(&device, n, &tree.edges());
        let list = EulerList::build(&device, &dcel, tree.root());
        let oracle_rank = rank_sequential(&list);
        for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::WeiJaJa] {
            assert_eq!(
                rank(&device, &list, ranker),
                oracle_rank,
                "ranker {ranker:?} diverges from sequential walk (seed {seed})"
            );
        }

        // Stage 2: tour + statistics vs the sequential DFS oracle.
        let tour = EulerTour::build(&device, &tree).expect("tour builds");
        let stats = TreeStats::compute(&device, &tour);
        assert!(stats.validate().is_ok(), "stats invalid (seed {seed})");
        assert_eq!(
            stats,
            euler_tour::cpu::sequential_stats(&tree),
            "device stats diverge from sequential DFS (seed {seed})"
        );

        // Stage 3: batched LCA on the device vs brute-force lifting.
        let queries = random_queries(n, 64, seed ^ 0xABCD);
        let gpu = GpuInlabelLca::preprocess(&device, &tree).expect("preprocess");
        let brute = BruteLca::preprocess(&tree);
        let mut got = vec![0u32; queries.len()];
        let mut expected = vec![0u32; queries.len()];
        gpu.query_batch(&queries, &mut got);
        brute.query_batch(&queries, &mut expected);
        assert_eq!(got, expected, "LCA answers diverge (seed {seed})");

        // Stage 4: bridges on the tree plus random extra edges, every
        // parallel algorithm vs the sequential DFS lowlink oracle.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let mut edges = tree.edges();
        for _ in 0..n / 2 {
            edges.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
        }
        let graph = EdgeList::new(n, edges);
        let csr = Csr::from_edge_list(&graph);
        let oracle = bridges_dfs(&graph, &csr).bridge_ids();
        assert_eq!(
            bridges_tv(&device, &graph, &csr).expect("tv").bridge_ids(),
            oracle,
            "Tarjan-Vishkin diverges (seed {seed})"
        );
        assert_eq!(
            bridges_ck_device(&device, &graph, &csr)
                .expect("ck")
                .bridge_ids(),
            oracle,
            "Chaitanya-Kothapalli diverges (seed {seed})"
        );
        assert_eq!(
            bridges_hybrid(&device, &graph, &csr)
                .expect("hybrid")
                .bridge_ids(),
            oracle,
            "hybrid diverges (seed {seed})"
        );
    }
}
