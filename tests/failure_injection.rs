//! Failure injection: every documented error path of the public API, fed
//! the malformed input that triggers it. A library a downstream user would
//! adopt must fail loudly and precisely, not corrupt or hang.

use euler_meets_gpu::bridges::{self, BridgesError};
use euler_meets_gpu::euler_tour::{dynamic::ForestError, EulerTour, EulerTourForest, TourError};
use euler_meets_gpu::graph_io;
use euler_meets_gpu::prelude::*;
use graph_core::ids::INVALID_NODE;
use graph_core::tree::TreeError;

// ----- graph-core::Tree ------------------------------------------------

#[test]
fn tree_rejects_empty_parent_array() {
    assert_eq!(
        Tree::from_parent_array(vec![], 0).unwrap_err(),
        TreeError::Empty
    );
}

#[test]
fn tree_rejects_root_with_parent() {
    // Root must carry INVALID_NODE.
    let err = Tree::from_parent_array(vec![1, INVALID_NODE], 0).unwrap_err();
    assert_eq!(err, TreeError::BadRoot(0));
}

#[test]
fn tree_rejects_multiple_roots() {
    let err = Tree::from_parent_array(vec![INVALID_NODE, INVALID_NODE], 0).unwrap_err();
    assert!(matches!(err, TreeError::BadRoot(_)), "{err:?}");
}

#[test]
fn tree_rejects_out_of_range_parent() {
    let err = Tree::from_parent_array(vec![INVALID_NODE, 99], 0).unwrap_err();
    assert_eq!(
        err,
        TreeError::ParentOutOfRange {
            node: 1,
            parent: 99
        }
    );
}

#[test]
fn tree_rejects_parent_cycle() {
    // 1 → 2 → 1 never reaches the root.
    let err = Tree::from_parent_array(vec![INVALID_NODE, 2, 1], 0).unwrap_err();
    assert!(matches!(err, TreeError::Cycle(_)), "{err:?}");
}

#[test]
fn tree_from_edges_rejects_disconnection_and_cycles() {
    // 4 nodes, 3 edges, but node 3 is in a self-contained pair.
    assert!(Tree::from_edges(4, &[(0, 1), (1, 2), (2, 1)], 0).is_err());
    assert!(Tree::from_edges(4, &[(0, 1), (2, 3)], 0).is_err());
}

// ----- euler-tour -------------------------------------------------------

#[test]
fn tour_rejects_empty_and_bad_root() {
    let device = Device::new();
    assert_eq!(
        EulerTour::build_from_edges(&device, 0, &[], 0).unwrap_err(),
        TourError::Empty
    );
    assert_eq!(
        EulerTour::build_from_edges(&device, 3, &[(0, 1), (1, 2)], 7).unwrap_err(),
        TourError::RootOutOfRange(7)
    );
}

#[test]
fn tour_rejects_wrong_edge_count() {
    let device = Device::new();
    let err = EulerTour::build_from_edges(&device, 4, &[(0, 1)], 0).unwrap_err();
    assert_eq!(
        err,
        TourError::WrongEdgeCount {
            got: 1,
            expected: 3
        }
    );
}

#[test]
fn tour_rejects_cycle_disguised_as_tree() {
    // Right edge count, wrong structure: a triangle plus an isolated node.
    let device = Device::new();
    let err = EulerTour::build_from_edges(&device, 4, &[(0, 1), (1, 2), (2, 0)], 0).unwrap_err();
    assert_eq!(err, TourError::NotASpanningTree);
}

#[test]
fn dynamic_forest_full_error_surface() {
    let mut f = EulerTourForest::new(3);
    assert_eq!(f.link(0, 0).unwrap_err(), ForestError::SelfLoop);
    assert_eq!(f.link(0, 9).unwrap_err(), ForestError::VertexOutOfRange);
    assert_eq!(f.cut(0, 1).unwrap_err(), ForestError::NoSuchEdge);
    f.link(0, 1).unwrap();
    f.link(1, 2).unwrap();
    assert_eq!(f.link(2, 0).unwrap_err(), ForestError::AlreadyConnected);
    assert_eq!(f.subtree_sum(0, 2).unwrap_err(), ForestError::NoSuchEdge);
    assert_eq!(
        f.subtree_sum(9, 0).unwrap_err(),
        ForestError::VertexOutOfRange
    );
    // Errors must not have corrupted anything.
    assert_eq!(f.component_size(0), 3);
    f.cut(0, 1).unwrap();
    assert_eq!(f.component_size(0), 1);
}

// ----- bridges -----------------------------------------------------------

#[test]
fn every_bridge_algorithm_rejects_empty_and_disconnected() {
    let device = Device::new();
    let empty = EdgeList::empty(0);
    let empty_csr = Csr::from_edge_list(&empty);
    let disc = EdgeList::new(4, vec![(0, 1), (2, 3)]);
    let disc_csr = Csr::from_edge_list(&disc);

    type Runner<'a> = Box<dyn Fn(&EdgeList, &Csr) -> Result<BridgesResult, BridgesError> + 'a>;
    let algs: Vec<(&str, Runner)> = vec![
        (
            "tv",
            Box::new(|g: &EdgeList, c: &Csr| bridges_tv(&device, g, c)),
        ),
        (
            "ck",
            Box::new(|g: &EdgeList, c: &Csr| bridges_ck_device(&device, g, c)),
        ),
        ("ck-cpu", Box::new(bridges_ck_rayon)),
        (
            "hybrid",
            Box::new(|g: &EdgeList, c: &Csr| bridges_hybrid(&device, g, c)),
        ),
    ];
    for (name, run) in &algs {
        assert_eq!(
            run(&empty, &empty_csr).unwrap_err(),
            BridgesError::Empty,
            "{name} on empty"
        );
        assert_eq!(
            run(&disc, &disc_csr).unwrap_err(),
            BridgesError::Disconnected,
            "{name} on disconnected"
        );
    }
    // BCC shares the error surface.
    assert_eq!(
        bridges::bcc_tv(&device, &empty, &empty_csr).unwrap_err(),
        BridgesError::Empty
    );
    assert_eq!(
        bridges::bcc_tv(&device, &disc, &disc_csr).unwrap_err(),
        BridgesError::Disconnected
    );
}

#[test]
fn isolated_node_makes_graph_disconnected() {
    // A triangle plus node 3 with no edges: still "disconnected".
    let device = Device::new();
    let g = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 0)]);
    let csr = Csr::from_edge_list(&g);
    assert_eq!(
        bridges_tv(&device, &g, &csr).unwrap_err(),
        BridgesError::Disconnected
    );
}

// ----- graph-io ----------------------------------------------------------

#[test]
fn readers_report_line_numbers() {
    let err = graph_io::snap::parse("1 2\n1 2 3 4 5\n").unwrap_err();
    assert_eq!(err.line, 2);
    let err = graph_io::dimacs::parse("p sp 2 1\na 1 3 9\n").unwrap_err();
    assert_eq!(err.line, 2);
    let err = graph_io::metis::parse("2 1\nbogus\n1\n").unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn read_edge_list_propagates_io_and_detect_failures() {
    use graph_io::IoError;
    assert!(matches!(
        graph_io::read_edge_list("/nonexistent/x.txt").unwrap_err(),
        IoError::Io(_)
    ));
    let dir = std::env::temp_dir().join("emg_failure_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.txt");
    std::fs::write(&path, "hello world, not a graph\n").unwrap();
    let err = graph_io::read_edge_list(&path).unwrap_err();
    assert!(matches!(&err, IoError::Parse(p) if p.message.contains("cannot detect")));
    // The structured line number survives the unified error (the property
    // the IoError enum exists for).
    let path = dir.join("badline.gr");
    std::fs::write(&path, "p sp 2 1\na 1 5 1\n").unwrap();
    let err = graph_io::read_edge_list(&path).unwrap_err();
    assert!(matches!(&err, IoError::Parse(p) if p.line == 2), "{err}");
    assert!(err.to_string().starts_with("line 2:"), "{err}");
}

#[test]
fn corrupt_emgbin_is_rejected_not_misread() {
    let dir = std::env::temp_dir().join("emg_failure_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.emgbin");
    let parsed = graph_io::snap::parse("0 1\n1 2\n").unwrap();
    let mut bytes = graph_io::binary::to_bytes(&parsed, None);
    *bytes.last_mut().unwrap() ^= 1;
    std::fs::write(&path, &bytes).unwrap();
    let err = graph_io::read_edge_list(&path).unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");
}

// ----- lca ---------------------------------------------------------------

#[test]
#[should_panic(expected = "length mismatch")]
fn query_batch_rejects_mismatched_output() {
    let tree = Tree::from_parent_array(vec![INVALID_NODE, 0], 0).unwrap();
    let alg = SequentialInlabelLca::preprocess(&tree);
    let mut out = vec![0u32; 1];
    alg.query_batch(&[(0, 1), (1, 1)], &mut out);
}

#[test]
fn self_and_root_queries_are_identities() {
    // Not failures, but the degenerate queries mis-implementations break.
    let device = Device::new();
    let tree = random_tree(500, None, 3);
    let algs: Vec<Box<dyn LcaAlgorithm>> = vec![
        Box::new(SequentialInlabelLca::preprocess(&tree)),
        Box::new(GpuInlabelLca::preprocess(&device, &tree).unwrap()),
        Box::new(NaiveGpuLca::preprocess(&device, &tree)),
        Box::new(BlockRmqLca::preprocess(&tree)),
    ];
    let root = tree.root();
    for alg in &algs {
        for v in [0u32, 1, 255, 499] {
            assert_eq!(alg.query(v, v), v, "{}: lca(v,v)=v", alg.name());
            assert_eq!(alg.query(root, v), root, "{}: lca(root,v)=root", alg.name());
        }
    }
}
