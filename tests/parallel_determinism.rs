//! End-to-end determinism across pool widths: the full paper pipeline
//! (DCEL → Euler list → list ranking → tree stats → batched LCA → bridges)
//! must produce bit-identical results on a 1-worker and a 4-worker device.
//!
//! The Wei–JáJá sublist heuristic *does* consult the worker count, so the
//! two devices genuinely take different internal decompositions — ranks,
//! statistics, LCA answers and bridge sets are nevertheless uniquely
//! defined, and the engine combines all partial results in source order.

use euler_meets_gpu::prelude::*;
use euler_tour::dcel::Dcel;
use euler_tour::list::EulerList;
use euler_tour::ranking::{rank_wei_jaja, rank_wyllie};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn device(threads: usize) -> Device {
    Device::with_config(DeviceConfig {
        threads: Some(threads),
        block_size: 1024,
        seq_threshold: 256,
        launch_overhead: None,
        pooling: true,
        ..Default::default()
    })
}

#[test]
fn list_ranking_bit_identical_across_thread_counts() {
    let (d1, d4) = (device(1), device(4));
    for seed in 0..3u64 {
        let n = 2_000 + 511 * seed as usize;
        let tree = random_tree(n, None, seed);

        let dcel1 = Dcel::build(&d1, n, &tree.edges());
        let dcel4 = Dcel::build(&d4, n, &tree.edges());
        let list1 = EulerList::build(&d1, &dcel1, tree.root());
        let list4 = EulerList::build(&d4, &dcel4, tree.root());

        assert_eq!(
            rank_wyllie(&d1, &list1),
            rank_wyllie(&d4, &list4),
            "Wyllie ranks diverge (seed {seed})"
        );
        assert_eq!(
            rank_wei_jaja(&d1, &list1),
            rank_wei_jaja(&d4, &list4),
            "Wei-JaJa ranks diverge (seed {seed})"
        );
    }
}

#[test]
fn pipeline_bit_identical_across_thread_counts() {
    let (d1, d4) = (device(1), device(4));
    for seed in 0..3u64 {
        let n = 1_500 + 333 * seed as usize;
        let tree = random_tree(n, None, seed ^ 0xE0E0);

        // Tree statistics.
        let tour1 = EulerTour::build(&d1, &tree).expect("tour (1 thread)");
        let tour4 = EulerTour::build(&d4, &tree).expect("tour (4 threads)");
        let stats1 = TreeStats::compute(&d1, &tour1);
        let stats4 = TreeStats::compute(&d4, &tour4);
        assert_eq!(stats1, stats4, "tree stats diverge (seed {seed})");

        // Batched LCA.
        let queries = random_queries(n, 256, seed ^ 0xABCD);
        let lca1 = GpuInlabelLca::preprocess(&d1, &tree).expect("preprocess (1)");
        let lca4 = GpuInlabelLca::preprocess(&d4, &tree).expect("preprocess (4)");
        let mut a1 = vec![0u32; queries.len()];
        let mut a4 = vec![0u32; queries.len()];
        lca1.query_batch(&queries, &mut a1);
        lca4.query_batch(&queries, &mut a4);
        assert_eq!(a1, a4, "LCA answers diverge (seed {seed})");

        // Bridges on the tree plus random extra edges.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let mut edges = tree.edges();
        for _ in 0..n / 2 {
            edges.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
        }
        let graph = EdgeList::new(n, edges);
        let csr = Csr::from_edge_list(&graph);
        assert_eq!(
            bridges_tv(&d1, &graph, &csr).expect("tv1").bridge_ids(),
            bridges_tv(&d4, &graph, &csr).expect("tv4").bridge_ids(),
            "Tarjan-Vishkin bridges diverge (seed {seed})"
        );
        assert_eq!(
            bridges_ck_device(&d1, &graph, &csr)
                .expect("ck1")
                .bridge_ids(),
            bridges_ck_device(&d4, &graph, &csr)
                .expect("ck4")
                .bridge_ids(),
            "Chaitanya-Kothapalli bridges diverge (seed {seed})"
        );
        assert_eq!(
            bridges_hybrid(&d1, &graph, &csr)
                .expect("hybrid1")
                .bridge_ids(),
            bridges_hybrid(&d4, &graph, &csr)
                .expect("hybrid4")
                .bridge_ids(),
            "hybrid bridges diverge (seed {seed})"
        );
    }
}
