//! End-to-end server tests: batched answers over the real socket protocol
//! are bit-identical to the sequential oracles, under concurrent clients,
//! across every graphgen family.
//!
//! Catalog fixtures are written as `emgbin`, which preserves dense node
//! ids exactly — so the oracle (computed from the same `EdgeList`) and
//! the server agree on the id space by construction.

use bridges::bridges_dfs;
use bridges::forest::components_sequential;
use emg_server::batcher::BatchConfig;
use emg_server::protocol::{ErrorCode, QueryKind, BRIDGE_NO_SUCH_EDGE};
use emg_server::{Client, ClientError, Server};
use graph_core::{Csr, EdgeList, Tree};
use graph_io::ParsedGraph;
use lca::{LcaAlgorithm, SequentialInlabelLca};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Everything the sequential oracle needs to answer any query kind.
struct Oracle {
    n: u32,
    csr: Csr,
    representative: Vec<u32>,
    is_bridge: Vec<bool>,
    num_components: usize,
    tree: Option<(Tree, SequentialInlabelLca)>,
}

impl Oracle {
    fn build(graph: &EdgeList) -> Oracle {
        let csr = Csr::from_edge_list(graph);
        let (representative, num_components) = components_sequential(graph);
        let result = bridges_dfs(graph, &csr);
        let is_bridge = (0..graph.num_edges())
            .map(|e| result.is_bridge.get(e))
            .collect();
        let n = graph.num_nodes();
        let tree = if n >= 1 && graph.num_edges() == n - 1 && num_components == 1 {
            Tree::from_edges(n, graph.edges(), 0).ok().map(|t| {
                let lca = SequentialInlabelLca::preprocess(&t);
                (t, lca)
            })
        } else {
            None
        };
        Oracle {
            n: n as u32,
            csr,
            representative,
            is_bridge,
            num_components,
            tree,
        }
    }

    fn in_subtree(&self, u: u32, v: u32) -> bool {
        let (tree, _) = self.tree.as_ref().expect("tree oracle");
        let mut cur = u;
        loop {
            if cur == v {
                return true;
            }
            match tree.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    fn answer(&self, kind: QueryKind, pairs: &[(u32, u32)]) -> Vec<u32> {
        match kind {
            QueryKind::Lca => {
                let (_, lca) = self.tree.as_ref().expect("tree oracle");
                let mut out = vec![0u32; pairs.len()];
                lca.query_batch(pairs, &mut out);
                out
            }
            QueryKind::Subtree => pairs
                .iter()
                .map(|&(u, v)| u32::from(self.in_subtree(u, v)))
                .collect(),
            QueryKind::Connectivity => pairs
                .iter()
                .map(|&(u, v)| {
                    u32::from(self.representative[u as usize] == self.representative[v as usize])
                })
                .collect(),
            QueryKind::BridgeEdge => pairs
                .iter()
                .map(|&(u, v)| {
                    let mut found = false;
                    let mut bridge = 0u32;
                    for (w, eid) in self.csr.incident(u) {
                        if w == v {
                            found = true;
                            bridge |= u32::from(self.is_bridge[eid as usize]);
                        }
                    }
                    if found {
                        bridge
                    } else {
                        BRIDGE_NO_SUCH_EDGE
                    }
                })
                .collect(),
        }
    }
}

/// Every graphgen family, small enough to keep the suite fast.
fn families() -> Vec<(&'static str, EdgeList)> {
    let tree_edges = |t: &Tree| EdgeList::new(t.num_nodes(), t.edges());
    vec![
        (
            "tree_rand",
            tree_edges(&graphgen::random_tree(400, None, 7)),
        ),
        (
            "tree_grasp",
            tree_edges(&graphgen::random_tree(300, Some(8), 9)),
        ),
        ("tree_ba", tree_edges(&graphgen::ba_tree(300, 3))),
        ("road", graphgen::road_grid(15, 15, 0.85, 1)),
        ("kron", graphgen::kronecker_graph(7, 6, 2)),
        ("ba", graphgen::ba_graph(300, 3, 4)),
        ("web", graphgen::web_graph(300, 3, 0.2, 5)),
    ]
}

fn write_catalog(tag: &str, graphs: &[(&'static str, EdgeList)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emg-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, graph) in graphs {
        graph_io::binary::write_file(
            dir.join(format!("{name}.emgbin")),
            &ParsedGraph::dense(graph.clone()),
            None,
        )
        .unwrap();
    }
    dir
}

/// Binds an ephemeral server over `dir` and runs it on its own thread.
fn spawn_server(dir: &Path, config: BatchConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", dir, config).unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

/// Mixed query pairs: random node pairs plus real edges (so BridgeEdge
/// exercises all three answers).
fn query_pairs(graph: &EdgeList, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut pairs = graphgen::random_queries(graph.num_nodes(), count, seed);
    for &(u, v) in graph.edges().iter().take(count / 2) {
        pairs.push((u, v));
    }
    pairs
}

fn applicable_kinds(oracle: &Oracle) -> Vec<QueryKind> {
    let mut kinds = vec![QueryKind::Connectivity, QueryKind::BridgeEdge];
    if oracle.tree.is_some() {
        kinds.push(QueryKind::Lca);
        kinds.push(QueryKind::Subtree);
    }
    kinds
}

#[test]
fn batched_answers_match_oracle_on_all_families() {
    let graphs = families();
    let oracles: HashMap<&str, Oracle> = graphs
        .iter()
        .map(|(name, g)| (*name, Oracle::build(g)))
        .collect();
    let dir = write_catalog("families", &graphs);
    let (addr, server) = spawn_server(&dir, BatchConfig::default());

    let mut client = Client::connect(&addr).unwrap();
    // The catalog metadata agrees with the oracle.
    let listed = client.list().unwrap();
    assert_eq!(listed.len(), graphs.len());
    for info in &listed {
        let oracle = &oracles[info.name.as_str()];
        assert_eq!(info.nodes, oracle.n, "{}", info.name);
        assert_eq!(info.epoch, 1, "{}", info.name);
        assert_eq!(info.is_tree, oracle.tree.is_some(), "{}", info.name);
        assert_eq!(
            info.num_components as usize, oracle.num_components,
            "{}",
            info.name
        );
        let bridges = oracle.is_bridge.iter().filter(|&&b| b).count();
        assert_eq!(info.num_bridges as usize, bridges, "{}", info.name);
    }

    for (name, graph) in &graphs {
        let oracle = &oracles[name];
        let pairs = query_pairs(graph, 200, 0xC0FFEE ^ graph.num_nodes() as u64);
        for kind in applicable_kinds(oracle) {
            let (epoch, answers) = client.query(name, 0, kind, &pairs).unwrap();
            assert_eq!(epoch, 1);
            assert_eq!(answers, oracle.answer(kind, &pairs), "{name} {kind:?}");
        }
    }

    client.shutdown().unwrap();
    server.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_clients_coalesce_and_stay_exact() {
    let graphs = families();
    let oracles: Arc<HashMap<&str, Oracle>> = Arc::new(
        graphs
            .iter()
            .map(|(name, g)| (*name, Oracle::build(g)))
            .collect(),
    );
    let dir = write_catalog("concurrent", &graphs);
    // A wide window so concurrent submissions actually coalesce.
    let (addr, server) = spawn_server(
        &dir,
        BatchConfig {
            max_batch: 4096,
            max_delay: std::time::Duration::from_millis(2),
            ..BatchConfig::default()
        },
    );

    let graphs = Arc::new(graphs);
    let mut workers = Vec::new();
    for worker_id in 0..4u64 {
        let addr = addr.clone();
        let graphs = Arc::clone(&graphs);
        let oracles = Arc::clone(&oracles);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            for round in 0..3u64 {
                for (name, graph) in graphs.iter() {
                    let oracle = &oracles[name];
                    let pairs = query_pairs(graph, 64, worker_id * 1000 + round);
                    for kind in applicable_kinds(oracle) {
                        let (_, answers) = client.query(name, 0, kind, &pairs).unwrap();
                        assert_eq!(
                            answers,
                            oracle.answer(kind, &pairs),
                            "worker {worker_id} round {round} {name} {kind:?}"
                        );
                    }
                }
            }
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.queries > 0);
    assert!(stats.batches > 0);
    assert_eq!(
        stats.batch_hist.iter().sum::<u64>(),
        stats.batches,
        "histogram covers every batch"
    );
    assert!(stats.size_flushes + stats.deadline_flushes > 0);
    client.shutdown().unwrap();
    server.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn error_paths_and_epoch_lifecycle() {
    let tree = graphgen::random_tree(50, None, 3);
    let graph = EdgeList::new(tree.num_nodes(), tree.edges());
    let cyclic = graphgen::road_grid(6, 6, 1.0, 0);
    let dir = write_catalog("errors", &[("t", graph), ("grid", cyclic)]);
    let (addr, server) = spawn_server(&dir, BatchConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    // Unknown graph.
    match client.query("missing", 0, QueryKind::Lca, &[(0, 1)]) {
        Err(ClientError::Server(ErrorCode::UnknownGraph, _)) => {}
        other => panic!("expected UnknownGraph, got {other:?}"),
    }
    // LCA against a non-tree.
    match client.query("grid", 0, QueryKind::Lca, &[(0, 1)]) {
        Err(ClientError::Server(ErrorCode::NotATree, _)) => {}
        other => panic!("expected NotATree, got {other:?}"),
    }
    // Node out of range.
    match client.query("t", 0, QueryKind::Connectivity, &[(0, 5000)]) {
        Err(ClientError::Server(ErrorCode::NodeOutOfRange, _)) => {}
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    // Epoch pinning: epoch 1 works, epoch 99 does not.
    let (epoch, _) = client.query("t", 1, QueryKind::Lca, &[(1, 2)]).unwrap();
    assert_eq!(epoch, 1);
    match client.query("t", 99, QueryKind::Lca, &[(1, 2)]) {
        Err(ClientError::Server(ErrorCode::WrongEpoch, _)) => {}
        other => panic!("expected WrongEpoch, got {other:?}"),
    }

    // Reload bumps the epoch; the old pin now fails, the new one works,
    // and the answers are unchanged (same bytes on disk).
    let (_, before) = client.query("t", 1, QueryKind::Lca, &[(3, 4)]).unwrap();
    assert_eq!(client.reload("t").unwrap(), 2);
    assert_eq!(client.info("t").unwrap().epoch, 2);
    match client.query("t", 1, QueryKind::Lca, &[(3, 4)]) {
        Err(ClientError::Server(ErrorCode::WrongEpoch, _)) => {}
        other => panic!("expected WrongEpoch, got {other:?}"),
    }
    let (epoch, after) = client.query("t", 2, QueryKind::Lca, &[(3, 4)]).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(before, after);

    // The connection survives every error above; shutdown ends the run
    // loop.
    client.shutdown().unwrap();
    server.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let tree = graphgen::random_tree(30, None, 11);
    let graph = EdgeList::new(tree.num_nodes(), tree.edges());
    let dir = write_catalog("unix", &[("t", graph)]);
    let sock = std::env::temp_dir().join(format!("emg-e2e-unix-{}.sock", std::process::id()));
    let addr = format!("unix:{}", sock.display());
    let server = Server::bind(&addr, &dir, BatchConfig::default()).unwrap();
    assert_eq!(server.local_addr(), addr);
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.version(), emg_server::protocol::PROTOCOL_VERSION);
    let infos = client.list().unwrap();
    assert_eq!(infos.len(), 1);
    assert!(infos[0].is_tree);
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_file(&sock);
    std::fs::remove_dir_all(&dir).unwrap();
}
