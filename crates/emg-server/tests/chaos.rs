//! Chaos suite: the server under deterministic fault injection.
//!
//! Every test arms an explicit [`FaultConfig`] on the serving device (or
//! inherits one from `EMG_FAULT` — the CI chaos job runs this binary under
//! two specs at pool widths 1 and 4), then checks the DESIGN.md §13
//! contract: the daemon never dies, affected requests surface as clean
//! `Internal`/`Overloaded` error frames, a retrying client converges to
//! zero unrecovered errors, and the fault schedule replays bit-identically
//! from its seed regardless of pool width.

use emg_server::batcher::BatchConfig;
use emg_server::protocol::{ErrorCode, QueryKind};
use emg_server::server::SessionLimits;
use emg_server::{Client, ClientError, RetryPolicy, RetryingClient, Server};
use gpu_sim::fault::INJECTED_PANIC;
use gpu_sim::{DeviceConfig, FaultConfig};
use graph_core::EdgeList;
use graph_io::ParsedGraph;
use std::path::PathBuf;
use std::time::Duration;

/// The fault spec under test: whatever `EMG_FAULT` says (so the CI chaos
/// job steers this suite), falling back to a seeded launch-panic spec so
/// a plain `cargo test` exercises the fault path too.
fn chaos_spec() -> FaultConfig {
    let env = FaultConfig::from_env();
    if env.is_empty() {
        "launch_panic:p=0.05:seed=42"
            .parse()
            .expect("fallback spec")
    } else {
        env
    }
}

fn write_catalog(tag: &str, graphs: &[(&str, &EdgeList)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emg-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, graph) in graphs {
        graph_io::binary::write_file(
            dir.join(format!("{name}.emgbin")),
            &ParsedGraph::dense((*graph).clone()),
            None,
        )
        .unwrap();
    }
    dir
}

fn tree_graph(nodes: usize, seed: u64) -> EdgeList {
    let tree = graphgen::random_tree(nodes, None, seed);
    EdgeList::new(tree.num_nodes(), tree.edges())
}

struct TestServer {
    addr: String,
    handle: std::thread::JoinHandle<()>,
    dir: PathBuf,
}

impl TestServer {
    fn spawn(tag: &str, faults: FaultConfig, threads: Option<usize>) -> TestServer {
        let graph = tree_graph(120, 5);
        let dir = write_catalog(tag, &[("t", &graph)]);
        let device_cfg = DeviceConfig {
            threads,
            faults,
            ..DeviceConfig::default()
        };
        // A short coalescing window keeps one sequential client's queries
        // in one-launch batches (launch index == query index).
        let batch = BatchConfig {
            max_delay: Duration::from_micros(200),
            ..BatchConfig::default()
        };
        let server = Server::bind_with(
            "127.0.0.1:0",
            &dir,
            batch,
            device_cfg,
            SessionLimits::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        TestServer { addr, handle, dir }
    }

    fn finish(self) {
        let mut client = Client::connect(&self.addr).unwrap();
        client.shutdown().unwrap();
        self.handle.join().unwrap();
        std::fs::remove_dir_all(&self.dir).unwrap();
    }
}

#[test]
fn daemon_survives_faults_and_the_retrying_client_converges() {
    let spec = chaos_spec();
    let has_panics = spec.launch_panic.is_some();
    let server = TestServer::spawn("converge", spec, None);

    // Phase 1 — no retries: a fault-poisoned batch must answer with a
    // clean Internal error frame carrying the injected marker, and the
    // session (and daemon) must survive it.
    let mut raw = Client::connect(&server.addr).unwrap();
    let mut failed = 0u64;
    for i in 0..150u32 {
        let pairs = [(i % 120, (i * 7 + 3) % 120)];
        match raw.query("t", 0, QueryKind::Lca, &pairs) {
            Ok((epoch, answers)) => {
                assert_eq!(epoch, 1);
                assert_eq!(answers.len(), 1);
            }
            Err(ClientError::Server(ErrorCode::Internal, message)) => {
                assert!(
                    message.contains("injected fault"),
                    "fault errors must carry the injected marker, got: {message}"
                );
                failed += 1;
            }
            Err(other) => panic!("query {i}: unexpected error {other}"),
        }
    }
    if has_panics {
        assert!(failed > 0, "a launch_panic spec must poison some batches");
    }

    // Phase 2 — with retries: the acceptance criterion. Every query
    // converges; zero unrecovered errors.
    let mut retrying = RetryingClient::new(&server.addr, RetryPolicy::new(16), None);
    for i in 0..150u32 {
        let pairs = [(i % 120, (i * 7 + 3) % 120)];
        let (epoch, answers) = retrying
            .query("t", 0, QueryKind::Lca, &pairs)
            .unwrap_or_else(|e| panic!("query {i} did not converge: {e}"));
        assert_eq!(epoch, 1);
        assert_eq!(answers.len(), 1);
    }
    assert_eq!(retrying.gave_up(), 0, "zero unrecovered errors");
    if failed > 0 {
        assert!(
            retrying.attempts() >= 150,
            "retries should show up as extra attempts"
        );
    }

    // The isolation counter saw every poisoned batch, and the daemon is
    // still fully in business.
    let stats = raw.stats().unwrap();
    assert!(stats.panics_isolated >= failed);
    assert_eq!(raw.list().unwrap().len(), 1);
    drop(raw);
    server.finish();
}

/// Runs one sequential client against a fresh server and records, per
/// query index, the answer or `None` for a fault-poisoned batch.
fn fault_outcome_trace(tag: &str, threads: Option<usize>) -> Vec<Option<u32>> {
    let spec: FaultConfig = "launch_panic:p=0.08:seed=1234".parse().unwrap();
    let server = TestServer::spawn(tag, spec, threads);
    let mut client = Client::connect(&server.addr).unwrap();
    let mut trace = Vec::new();
    for i in 0..80u32 {
        let pairs = [(i % 120, (i * 11 + 1) % 120)];
        match client.query("t", 0, QueryKind::Lca, &pairs) {
            Ok((_, answers)) => trace.push(Some(answers[0])),
            Err(ClientError::Server(ErrorCode::Internal, message)) => {
                assert!(message.contains(INJECTED_PANIC), "{message}");
                trace.push(None);
            }
            Err(other) => panic!("query {i}: unexpected error {other}"),
        }
    }
    drop(client);
    server.finish();
    trace
}

#[test]
fn fault_schedule_replays_bit_identically_across_runs_and_pool_widths() {
    // One sequential client means launch index == query index, so the
    // whole run — which queries fail, which answers come back — is a pure
    // function of the seed. Two runs at width 1 and one at width 4 must
    // produce identical traces.
    let first = fault_outcome_trace("replay-a", Some(1));
    let second = fault_outcome_trace("replay-b", Some(1));
    let wide = fault_outcome_trace("replay-c", Some(4));
    assert_eq!(first, second, "same seed, same pool width, same trace");
    assert_eq!(first, wide, "pool width must not shift the fault schedule");
    let poisoned = first.iter().filter(|o| o.is_none()).count();
    assert!(
        poisoned > 0,
        "p=0.08 over 80 launches must fire at least once"
    );
    assert!(poisoned < 80, "and must not fire every time");
}

#[test]
fn slow_loris_sessions_are_reaped_and_counted() {
    use std::io::{Read, Write};
    let graph = tree_graph(60, 9);
    let dir = write_catalog("loris", &[("t", &graph)]);
    let limits = SessionLimits {
        idle: Duration::from_millis(200),
        io: Duration::from_millis(200),
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        &dir,
        BatchConfig::default(),
        DeviceConfig::default(),
        limits,
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().unwrap());

    // Session 1: handshake, then trickle 2 bytes of a length prefix and
    // stall. The frame deadline must close the connection.
    let mut stalled = std::net::TcpStream::connect(&addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    emg_server::protocol::write_frame(
        &mut stalled,
        &emg_server::protocol::Request::Hello { version: 1 }.encode(),
    )
    .unwrap();
    emg_server::protocol::read_frame(&mut stalled).unwrap();
    stalled.write_all(&[0x08, 0x00]).unwrap();
    let mut buf = [0u8; 16];
    let closed = matches!(stalled.read(&mut buf), Ok(0) | Err(_));
    assert!(closed, "the stalled session must be reaped, not served");

    // Session 2: handshake, then go silent. The idle deadline reaps it.
    let mut idle = std::net::TcpStream::connect(&addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    emg_server::protocol::write_frame(
        &mut idle,
        &emg_server::protocol::Request::Hello { version: 1 }.encode(),
    )
    .unwrap();
    emg_server::protocol::read_frame(&mut idle).unwrap();
    let closed = matches!(idle.read(&mut buf), Ok(0) | Err(_));
    assert!(closed, "the idle session must be reaped");

    // Both reaps are visible in the stats, and the daemon still serves.
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.timeouts >= 2,
        "expected >= 2 timeouts, got {}",
        stats.timeouts
    );
    assert_eq!(client.list().unwrap().len(), 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_reload_leaves_the_old_snapshot_serving() {
    let graph = tree_graph(100, 13);
    let dir = write_catalog("corrupt-reload", &[("t", &graph)]);
    let path = dir.join("t.emgbin");
    let good_bytes = std::fs::read(&path).unwrap();
    // Faults from the environment (the CI chaos job) ride along; queries
    // go through the retrying client so they converge regardless.
    let server = Server::bind_with(
        "127.0.0.1:0",
        &dir,
        BatchConfig::default(),
        DeviceConfig::default(),
        SessionLimits::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut raw = Client::connect(&addr).unwrap();
    let mut retrying = RetryingClient::new(&addr, RetryPolicy::new(16), None);
    assert_eq!(raw.info("t").unwrap().epoch, 1);
    let (_, before) = retrying.query("t", 1, QueryKind::Lca, &[(5, 9)]).unwrap();

    // Corrupt the file mid-way: keep a valid-looking prefix, trash the
    // rest, truncate. Reload must fail cleanly — panic or parse error
    // alike — and the old snapshot must keep serving at epoch 1.
    let mut bad = good_bytes.clone();
    let half = bad.len() / 2;
    for b in &mut bad[half..] {
        *b ^= 0xA5;
    }
    bad.truncate(half + (bad.len() - half) / 2);
    std::fs::write(&path, &bad).unwrap();
    match raw.reload("t") {
        Err(ClientError::Server(ErrorCode::Internal, _)) => {}
        other => panic!("reload of a corrupt file must fail with Internal, got {other:?}"),
    }
    assert_eq!(raw.info("t").unwrap().epoch, 1, "epoch unchanged");
    let (epoch, after) = retrying.query("t", 1, QueryKind::Lca, &[(5, 9)]).unwrap();
    assert_eq!(epoch, 1, "old snapshot still answers pinned queries");
    assert_eq!(before, after);

    // Restore the file: the next reload succeeds at epoch 2 — the failed
    // attempt consumed nothing.
    std::fs::write(&path, &good_bytes).unwrap();
    assert_eq!(raw.reload("t").unwrap(), 2);
    assert_eq!(
        retrying.query("t", 2, QueryKind::Lca, &[(5, 9)]).unwrap().1,
        after
    );

    raw.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reload_shutdown_and_queries_under_fire_dont_wedge() {
    let spec: FaultConfig = {
        let env = FaultConfig::from_env();
        if env.is_empty() {
            "launch_panic:p=0.02:seed=7".parse().unwrap()
        } else {
            env
        }
    };
    let server = TestServer::spawn("under-fire", spec, None);
    let addr = server.addr.clone();

    // Three query threads and a reload thread hammer the server while the
    // main thread pulls the plug. Nothing may panic or wedge; operations
    // racing the shutdown may fail, and that is fine — the invariant is a
    // clean drain.
    let mut workers = Vec::new();
    for w in 0..3u32 {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = RetryingClient::new(
                &addr,
                RetryPolicy {
                    retries: 4,
                    base: Duration::from_micros(200),
                    cap: Duration::from_millis(5),
                    seed: u64::from(w),
                },
                Some(Duration::from_secs(5)),
            );
            for i in 0..40u32 {
                let pairs = [((w * 40 + i) % 120, (i * 3 + 1) % 120)];
                // Racing the shutdown: both outcomes are legitimate.
                let _ = client.query("t", 0, QueryKind::Lca, &pairs);
            }
        }));
    }
    {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            for _ in 0..10 {
                if let Ok(mut c) = Client::connect(&addr) {
                    let _ = c.reload("t");
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    if let Ok(mut c) = Client::connect(&addr) {
        let _ = c.shutdown();
    }
    for worker in workers {
        worker.join().expect("no worker may panic");
    }
    // finish() would need a live server; the shutdown already happened, so
    // just join the run loop (it drains the batcher on the way out).
    server.handle.join().unwrap();
    std::fs::remove_dir_all(&server.dir).unwrap();
}
