//! Property tests: every protocol message survives encode → decode, and
//! corrupted frames are rejected rather than misparsed.
//!
//! The vendored proptest stand-in has no `prop_oneof`, so message-type
//! choice is an index drawn from a range and dispatched through
//! `prop_flat_map` + `boxed()`.

use emg_server::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, GraphInfo, QueryKind, Request, Response,
    ServerStats, ALL_KINDS,
};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

fn arb_kind() -> impl Strategy<Value = QueryKind> {
    (0usize..ALL_KINDS.len()).prop_map(|i| ALL_KINDS[i])
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 0..20)
        .prop_map(|letters| letters.into_iter().map(|l| (b'a' + l) as char).collect())
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((any::<u32>(), any::<u32>()), 0..50)
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0usize..7).prop_flat_map(|variant| -> BoxedStrategy<Request> {
        match variant {
            0 => any::<u16>()
                .prop_map(|version| Request::Hello { version })
                .boxed(),
            1 => Just(Request::ListGraphs).boxed(),
            2 => (arb_name(), any::<u64>(), arb_kind(), arb_pairs())
                .prop_map(|(graph, epoch, kind, pairs)| Request::Query {
                    graph,
                    epoch,
                    kind,
                    pairs,
                })
                .boxed(),
            3 => arb_name().prop_map(|graph| Request::Info { graph }).boxed(),
            4 => Just(Request::Stats).boxed(),
            5 => arb_name()
                .prop_map(|graph| Request::Reload { graph })
                .boxed(),
            _ => Just(Request::Shutdown).boxed(),
        }
    })
}

fn arb_info() -> impl Strategy<Value = GraphInfo> {
    (
        (arb_name(), any::<u64>()),
        (
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<u32>(),
            any::<u32>(),
        ),
    )
        .prop_map(
            |((name, epoch), (nodes, edges, is_tree, num_components, num_bridges))| GraphInfo {
                name,
                epoch,
                nodes,
                edges,
                is_tree,
                num_components,
                num_bridges,
            },
        )
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    (1u16..=12).prop_map(|raw| ErrorCode::from_u16(raw).expect("codes 1..=12 are assigned"))
}

fn arb_stats() -> impl Strategy<Value = ServerStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>(), 0..24),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (queries, batches, max_batch),
                (size_flushes, deadline_flushes, batch_hist),
                (timeouts, overloads, panics_isolated),
            )| {
                ServerStats {
                    queries,
                    batches,
                    max_batch,
                    size_flushes,
                    deadline_flushes,
                    batch_hist,
                    timeouts,
                    overloads,
                    panics_isolated,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (0usize..8).prop_flat_map(|variant| -> BoxedStrategy<Response> {
        match variant {
            0 => any::<u16>()
                .prop_map(|version| Response::HelloOk { version })
                .boxed(),
            1 => proptest::collection::vec(arb_info(), 0..8)
                .prop_map(|graphs| Response::GraphList { graphs })
                .boxed(),
            2 => (
                arb_kind(),
                any::<u64>(),
                proptest::collection::vec(any::<u32>(), 0..50),
            )
                .prop_map(|(kind, epoch, answers)| Response::Answers {
                    kind,
                    epoch,
                    answers,
                })
                .boxed(),
            3 => arb_info()
                .prop_map(|info| Response::InfoOk { info })
                .boxed(),
            4 => arb_stats()
                .prop_map(|stats| Response::StatsOk { stats })
                .boxed(),
            5 => any::<u64>()
                .prop_map(|epoch| Response::ReloadOk { epoch })
                .boxed(),
            6 => Just(Response::ShutdownOk).boxed(),
            _ => (arb_error_code(), arb_name())
                .prop_map(|(code, message)| Response::Error { code, message })
                .boxed(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_request_round_trips(request in arb_request()) {
        let payload = request.encode();
        prop_assert_eq!(Request::decode(&payload).unwrap(), request);
    }

    #[test]
    fn every_response_round_trips(response in arb_response()) {
        let payload = response.encode();
        prop_assert_eq!(Response::decode(&payload).unwrap(), response);
    }

    #[test]
    fn truncated_requests_never_parse(request in arb_request(), cut in any::<usize>()) {
        // Chopping any suffix off a valid payload must fail cleanly —
        // never panic, never yield a different message.
        let payload = request.encode();
        let cut = cut % payload.len().max(1);
        if cut < payload.len() {
            prop_assert!(Request::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn truncated_responses_never_parse(response in arb_response(), cut in any::<usize>()) {
        let payload = response.encode();
        let cut = cut % payload.len().max(1);
        if cut < payload.len() {
            prop_assert!(Response::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(request in arb_request(), extra in 1usize..8) {
        let mut payload = request.encode();
        payload.extend(std::iter::repeat_n(0xA5u8, extra));
        prop_assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn framing_round_trips_multiple_messages(requests in proptest::collection::vec(arb_request(), 1..6)) {
        // A whole conversation's worth of frames survives the stream.
        let mut stream = Vec::new();
        for request in &requests {
            write_frame(&mut stream, &request.encode()).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for request in &requests {
            let payload = read_frame(&mut cursor).unwrap();
            prop_assert_eq!(&Request::decode(&payload).unwrap(), request);
        }
        prop_assert!(matches!(read_frame(&mut cursor), Err(FrameError::Eof)));
    }

    #[test]
    fn corrupt_single_byte_never_panics(request in arb_request(), pos in any::<usize>(), flip in 1u8..=255) {
        // Flipping one byte either still decodes (it hit a numeric
        // don't-care position) or errors — the invariant under test is
        // that decode is total: no panic, no allocation blow-up.
        let mut payload = request.encode();
        let pos = pos % payload.len();
        payload[pos] ^= flip;
        let _ = Request::decode(&payload);
    }
}

/// Satellite hardening: the property suite above checks `decode` in
/// isolation; this one drives the same malformed inputs into a *live*
/// session over TCP. The invariant is the DESIGN.md §13 contract — the
/// server never panics on hostile bytes; it answers an error frame
/// (tag 0xFF) or closes the connection cleanly, and it keeps serving
/// well-behaved clients afterwards.
mod live_session {
    use super::*;
    use emg_server::{BatchConfig, Client, Server};
    use std::io::Write;
    use std::net::TcpStream;
    use std::sync::OnceLock;
    use std::time::Duration;

    /// One shared server for every fuzz case, listening over a one-tree
    /// catalog. Leaked at process exit, like any detached test server.
    fn fuzz_server_addr() -> &'static str {
        static ADDR: OnceLock<String> = OnceLock::new();
        ADDR.get_or_init(|| {
            let dir = std::env::temp_dir().join(format!("emg-fuzz-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("t.txt"), "0\t1\n0\t2\n1\t3\n").unwrap();
            let server = Server::bind("127.0.0.1:0", &dir, BatchConfig::default()).unwrap();
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let _ = server.run();
            });
            addr
        })
    }

    /// A fresh well-behaved client can still handshake and list — the
    /// whole point of session isolation.
    fn server_still_alive(addr: &str) -> bool {
        Client::connect(addr).and_then(|mut c| c.list()).is_ok()
    }

    fn handshake(addr: &str) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_frame(&mut stream, &Request::Hello { version: 1 }.encode()).unwrap();
        let hello = read_frame(&mut stream).unwrap();
        assert!(Response::decode(&hello).is_ok());
        stream
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn hostile_frames_never_kill_the_server(
            request in arb_request(),
            mode in 0usize..4,
            pos in any::<usize>(),
            flip in 1u8..=255,
            cut in any::<usize>(),
        ) {
            use emg_server::protocol::MAX_FRAME_LEN;
            let addr = fuzz_server_addr();
            let mut stream = handshake(addr);
            let payload = request.encode();
            let mut disconnected_mid_frame = false;
            match mode {
                0 => {
                    // A bit-flipped payload inside a well-formed frame.
                    let mut p = payload.clone();
                    let i = pos % p.len();
                    p[i] ^= flip;
                    write_frame(&mut stream, &p).unwrap();
                }
                1 => {
                    // A truncated payload inside a well-formed frame.
                    let c = cut % payload.len();
                    write_frame(&mut stream, &payload[..c]).unwrap();
                }
                2 => {
                    // Mid-frame disconnect: promise more than we deliver,
                    // then hang up.
                    let promised = (payload.len() as u32).max(4);
                    stream.write_all(&promised.to_le_bytes()).unwrap();
                    let c = cut % payload.len();
                    stream.write_all(&payload[..c]).unwrap();
                    stream.shutdown(std::net::Shutdown::Both).unwrap();
                    disconnected_mid_frame = true;
                }
                _ => {
                    // A length prefix past the frame cap.
                    let huge = MAX_FRAME_LEN + 1 + (pos as u32 % 1024);
                    stream.write_all(&huge.to_le_bytes()).unwrap();
                }
            }
            if !disconnected_mid_frame {
                // The server answers a decodable frame — an error (0xFF)
                // for hostile bytes, or a valid response when the flip
                // landed on a don't-care byte — or closes cleanly. Never
                // garbage, never an oversized frame.
                match read_frame(&mut stream) {
                    Ok(frame) => prop_assert!(Response::decode(&frame).is_ok()),
                    Err(FrameError::Eof) | Err(FrameError::Io(_)) => {}
                    Err(FrameError::TooLarge(n)) => {
                        prop_assert!(false, "server sent an oversized frame ({n})")
                    }
                }
            }
            prop_assert!(server_still_alive(addr), "server died after mode {}", mode);
        }
    }
}

#[test]
fn mid_frame_eof_is_an_io_error_not_a_frame() {
    let mut stream = Vec::new();
    write_frame(&mut stream, b"hello").unwrap();
    stream.truncate(stream.len() - 2);
    let mut cursor = std::io::Cursor::new(stream);
    assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
}

#[test]
fn eof_inside_length_prefix_is_an_io_error() {
    let mut cursor = std::io::Cursor::new(vec![0x05u8, 0x00]);
    assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
}
