//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! This module is the normative implementation of DESIGN.md §12 — the
//! framing, the message grammar, the error codes, and the versioning
//! rules. Every message round-trips through [`Request::encode`] /
//! [`Request::decode`] (and the [`Response`] pair), which the property
//! suite pins for every message type, so a client in another language can
//! be written against the byte layout documented there.
//!
//! Layout conventions, repeated from the spec:
//!
//! * every integer is **little-endian**;
//! * a **frame** is a `u32` payload length followed by that many payload
//!   bytes; payloads above [`MAX_FRAME_LEN`] are rejected before any
//!   length-proportional allocation;
//! * a payload is a one-byte **tag** followed by the message body;
//!   requests use tags `0x01..=0x07`, responses mirror their request's
//!   tag with the high bit set (`0x81..=0x87`), and `0xFF` is the error
//!   response;
//! * **strings** are a `u16` length followed by UTF-8 bytes; **pair
//!   lists** are a `u32` count followed by `count` `(u32, u32)` pairs;
//! * decoding must consume the payload exactly — trailing bytes are a
//!   [`ErrorCode::BadFrame`], not an extension point. Versioning happens
//!   in the [`Request::Hello`] handshake, never by payload sniffing.

use std::io::{Read, Write};

/// Handshake magic: the first four payload bytes of every connection.
pub const MAGIC: [u8; 4] = *b"EMGQ";

/// The protocol version this implementation speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame payload (64 MiB): large enough for ~8M queries
/// per request, small enough that a corrupt length prefix cannot trigger
/// a giant allocation.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Wire error codes (the `u16` carried by [`Response::Error`]).
///
/// Codes are append-only across protocol versions: a code once assigned
/// never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The handshake payload did not start with [`MAGIC`].
    BadMagic = 1,
    /// The client requested a protocol version the server cannot speak.
    UnsupportedVersion = 2,
    /// A payload failed to decode (unknown tag, truncated body, trailing
    /// bytes, malformed UTF-8).
    BadFrame = 3,
    /// A frame length exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge = 4,
    /// The named graph is not in the catalog.
    UnknownGraph = 5,
    /// The request pinned an epoch the snapshot no longer (or does not
    /// yet) serve.
    WrongEpoch = 6,
    /// An LCA or subtree query against a snapshot that is not a tree.
    NotATree = 7,
    /// A query pair names a node id `>=` the graph's node count.
    NodeOutOfRange = 8,
    /// An unknown [`QueryKind`] byte.
    UnknownKind = 9,
    /// The first frame of a connection was not a `Hello`.
    ExpectedHello = 10,
    /// The server failed internally (worker gone, reload I/O error, a
    /// batch launch that panicked and was isolated, ...).
    Internal = 11,
    /// The batcher's admission control refused the request: the pending
    /// queue is at capacity. The message carries a
    /// `retry_after_ms=<n>` hint (see [`retry_after_ms`]); the request
    /// was **not** enqueued and is safe to retry after backing off.
    Overloaded = 12,
}

impl ErrorCode {
    /// The code as its wire `u16`.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire `u16` back to a code.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::BadMagic,
            2 => Self::UnsupportedVersion,
            3 => Self::BadFrame,
            4 => Self::FrameTooLarge,
            5 => Self::UnknownGraph,
            6 => Self::WrongEpoch,
            7 => Self::NotATree,
            8 => Self::NodeOutOfRange,
            9 => Self::UnknownKind,
            10 => Self::ExpectedHello,
            11 => Self::Internal,
            12 => Self::Overloaded,
            _ => return None,
        })
    }
}

/// The key an [`ErrorCode::Overloaded`] message uses to carry its backoff
/// hint, e.g. `server overloaded (4096 pairs pending); retry_after_ms=2`.
/// Carried inside the message string so the error frame layout stays
/// byte-identical for every code (append-only wire discipline).
pub const RETRY_AFTER_KEY: &str = "retry_after_ms=";

/// Formats the canonical `Overloaded` message with its retry hint.
pub fn overloaded_message(pending_pairs: usize, cap: usize, retry_after_ms: u64) -> String {
    format!(
        "server overloaded ({pending_pairs} pairs pending, cap {cap}); \
         {RETRY_AFTER_KEY}{retry_after_ms}"
    )
}

/// Extracts the `retry_after_ms=<n>` hint from an error message, if
/// present. Retrying clients use it as the floor of their next backoff.
pub fn retry_after_ms(message: &str) -> Option<u64> {
    let start = message.find(RETRY_AFTER_KEY)? + RETRY_AFTER_KEY.len();
    let rest = &message[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The query families a snapshot can answer. Each answer is one `u32`
/// per pair; the meaning of that word is kind-specific (see the
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum QueryKind {
    /// Lowest common ancestor of `(x, y)` on a tree snapshot; the answer
    /// is the LCA's node id.
    Lca = 1,
    /// Connectivity: answer `1` iff `u` and `v` share a connected
    /// component, else `0`.
    Connectivity = 2,
    /// Bridge membership of the edge `{u, v}`: `1` = the edge exists and
    /// is a bridge, `0` = exists and is not, [`BRIDGE_NO_SUCH_EDGE`] =
    /// no such edge.
    BridgeEdge = 3,
    /// Subtree membership on a tree snapshot: answer `1` iff `u` lies in
    /// the subtree rooted at `v`, else `0`.
    Subtree = 4,
}

/// The [`QueryKind::BridgeEdge`] answer for a pair that is not an edge of
/// the graph.
pub const BRIDGE_NO_SUCH_EDGE: u32 = 2;

/// Every query kind, in tag order.
pub const ALL_KINDS: [QueryKind; 4] = [
    QueryKind::Lca,
    QueryKind::Connectivity,
    QueryKind::BridgeEdge,
    QueryKind::Subtree,
];

impl QueryKind {
    /// The kind as its wire byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte back to a kind.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::Lca,
            2 => Self::Connectivity,
            3 => Self::BridgeEdge,
            4 => Self::Subtree,
            _ => return None,
        })
    }

    /// Parses the CLI spelling (`lca`/`conn`/`bridge`/`subtree`).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "lca" => Self::Lca,
            "conn" | "connectivity" => Self::Connectivity,
            "bridge" => Self::BridgeEdge,
            "subtree" => Self::Subtree,
            _ => return None,
        })
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Lca => "lca",
            Self::Connectivity => "conn",
            Self::BridgeEdge => "bridge",
            Self::Subtree => "subtree",
        }
    }
}

/// Catalog metadata for one served graph, as carried by
/// [`Response::GraphList`] and [`Response::InfoOk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// Catalog name (the file stem the graph was loaded from).
    pub name: String,
    /// Snapshot epoch: starts at 1, +1 per reload.
    pub epoch: u64,
    /// Node count.
    pub nodes: u32,
    /// Undirected edge count.
    pub edges: u32,
    /// Whether the snapshot is a rooted tree (LCA/subtree answerable).
    pub is_tree: bool,
    /// Connected components in the snapshot.
    pub num_components: u32,
    /// Bridges in the snapshot.
    pub num_bridges: u32,
}

/// Aggregate server counters, as carried by [`Response::StatsOk`].
///
/// The histogram is the **batch-size distribution**: bucket `i` counts
/// device launches whose coalesced batch held `2^i ..= 2^(i+1) - 1`
/// queries. `queries / batches` is the mean coalescing factor the qps
/// sweep reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries answered across all graphs and kinds.
    pub queries: u64,
    /// Batched device launches that answered them.
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Batches flushed because the size cap was reached.
    pub size_flushes: u64,
    /// Batches flushed because the deadline expired first.
    pub deadline_flushes: u64,
    /// Power-of-two batch-size histogram (`hist[i]` counts batches of
    /// size in `[2^i, 2^(i+1))`).
    pub batch_hist: Vec<u64>,
    /// Sessions closed because a read or write deadline expired (idle
    /// reaping and slow-loris/stalled-peer defense).
    pub timeouts: u64,
    /// Requests refused with [`ErrorCode::Overloaded`] by the batcher's
    /// admission control.
    pub overloads: u64,
    /// Batch launches that panicked and were isolated: their requesters
    /// got [`ErrorCode::Internal`], the daemon kept serving.
    pub panics_isolated: u64,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Connection handshake; must be the first frame on a connection.
    /// Carries [`MAGIC`] and the highest protocol version the client
    /// speaks.
    Hello {
        /// Highest protocol version the client can speak.
        version: u16,
    },
    /// List every graph in the catalog.
    ListGraphs,
    /// Answer `pairs` under `kind` against graph `graph`.
    Query {
        /// Catalog name of the target graph.
        graph: String,
        /// Epoch the client insists on (`0` = whatever is current).
        epoch: u64,
        /// Query family.
        kind: QueryKind,
        /// The `(u, v)` query pairs.
        pairs: Vec<(u32, u32)>,
    },
    /// Metadata for one graph.
    Info {
        /// Catalog name of the target graph.
        graph: String,
    },
    /// Aggregate server counters (batch-size distribution included).
    Stats,
    /// Re-read one graph from disk into a fresh snapshot (epoch + 1).
    Reload {
        /// Catalog name of the target graph.
        graph: String,
    },
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

/// A server-to-client message. Responses arrive in request order —
/// exactly one response frame per request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted; carries the negotiated protocol version
    /// (`min(client, server)`).
    HelloOk {
        /// The protocol version both sides will speak.
        version: u16,
    },
    /// The catalog listing.
    GraphList {
        /// One entry per served graph, in catalog order.
        graphs: Vec<GraphInfo>,
    },
    /// Answers to a [`Request::Query`], one `u32` per pair, in pair
    /// order.
    Answers {
        /// The query family answered.
        kind: QueryKind,
        /// The snapshot epoch that produced the answers.
        epoch: u64,
        /// One kind-specific answer word per query pair.
        answers: Vec<u32>,
    },
    /// Metadata for one graph.
    InfoOk {
        /// The graph's catalog metadata.
        info: GraphInfo,
    },
    /// Aggregate server counters.
    StatsOk {
        /// The counters, including the batch-size histogram.
        stats: ServerStats,
    },
    /// A reload completed; carries the new epoch.
    ReloadOk {
        /// The fresh snapshot's epoch.
        epoch: u64,
    },
    /// The server acknowledges shutdown and will exit.
    ShutdownOk,
    /// The request failed; the connection stays usable unless the error
    /// was a framing-level one.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail (not part of the stable contract).
        message: String,
    },
}

// --- encoding helpers ----------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("string field over 64 KiB");
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_pairs(buf: &mut Vec<u8>, pairs: &[(u32, u32)]) {
    buf.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(u, v) in pairs {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_info(buf: &mut Vec<u8>, info: &GraphInfo) {
    put_str(buf, &info.name);
    buf.extend_from_slice(&info.epoch.to_le_bytes());
    buf.extend_from_slice(&info.nodes.to_le_bytes());
    buf.extend_from_slice(&info.edges.to_le_bytes());
    buf.push(u8::from(info.is_tree));
    buf.extend_from_slice(&info.num_components.to_le_bytes());
    buf.extend_from_slice(&info.num_bridges.to_le_bytes());
}

/// A decode failure: the error code to report and a human-readable cause.
pub type DecodeError = (ErrorCode, String);

fn bad(msg: impl Into<String>) -> DecodeError {
    (ErrorCode::BadFrame, msg.into())
}

/// Strict little-endian payload reader; every accessor errors on
/// truncation instead of panicking, and [`Reader::finish`] rejects
/// trailing bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad(format!("truncated payload: needed {n} more bytes")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string field is not UTF-8"))
    }

    fn pairs(&mut self) -> Result<Vec<(u32, u32)>, DecodeError> {
        let count = self.u32()? as usize;
        // The count must be consistent with the remaining payload before
        // any count-proportional allocation.
        if self.buf.len() - self.pos < count * 8 {
            return Err(bad(format!("pair count {count} exceeds payload")));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push((self.u32()?, self.u32()?));
        }
        Ok(out)
    }

    fn words(&mut self) -> Result<Vec<u32>, DecodeError> {
        let count = self.u32()? as usize;
        if self.buf.len() - self.pos < count * 4 {
            return Err(bad(format!("word count {count} exceeds payload")));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn info(&mut self) -> Result<GraphInfo, DecodeError> {
        Ok(GraphInfo {
            name: self.string()?,
            epoch: self.u64()?,
            nodes: self.u32()?,
            edges: self.u32()?,
            is_tree: self.u8()? != 0,
            num_components: self.u32()?,
            num_bridges: self.u32()?,
        })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing byte(s) after message body",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl Request {
    /// Encodes the request as a frame payload (tag + body, no length
    /// prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { version } => {
                buf.push(0x01);
                buf.extend_from_slice(&MAGIC);
                buf.extend_from_slice(&version.to_le_bytes());
            }
            Request::ListGraphs => buf.push(0x02),
            Request::Query {
                graph,
                epoch,
                kind,
                pairs,
            } => {
                buf.push(0x03);
                put_str(&mut buf, graph);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.push(kind.as_u8());
                put_pairs(&mut buf, pairs);
            }
            Request::Info { graph } => {
                buf.push(0x04);
                put_str(&mut buf, graph);
            }
            Request::Stats => buf.push(0x05),
            Request::Reload { graph } => {
                buf.push(0x06);
                put_str(&mut buf, graph);
            }
            Request::Shutdown => buf.push(0x07),
        }
        buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Returns the [`ErrorCode`] the server should answer with (plus a
    /// human-readable cause): `BadFrame` for truncation/trailing bytes/
    /// unknown tags, `BadMagic`/`UnknownKind` for their specific fields.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(|_| bad("empty payload"))?;
        let req = match tag {
            0x01 => {
                let magic = r.take(4)?;
                if magic != MAGIC {
                    return Err((
                        ErrorCode::BadMagic,
                        format!("handshake magic {magic:02x?} != {MAGIC:02x?}"),
                    ));
                }
                Request::Hello { version: r.u16()? }
            }
            0x02 => Request::ListGraphs,
            0x03 => {
                let graph = r.string()?;
                let epoch = r.u64()?;
                let kind_byte = r.u8()?;
                let kind = QueryKind::from_u8(kind_byte).ok_or((
                    ErrorCode::UnknownKind,
                    format!("unknown query kind {kind_byte}"),
                ))?;
                Request::Query {
                    graph,
                    epoch,
                    kind,
                    pairs: r.pairs()?,
                }
            }
            0x04 => Request::Info { graph: r.string()? },
            0x05 => Request::Stats,
            0x06 => Request::Reload { graph: r.string()? },
            0x07 => Request::Shutdown,
            other => return Err(bad(format!("unknown request tag 0x{other:02x}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as a frame payload (tag + body, no length
    /// prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloOk { version } => {
                buf.push(0x81);
                buf.extend_from_slice(&version.to_le_bytes());
            }
            Response::GraphList { graphs } => {
                buf.push(0x82);
                buf.extend_from_slice(&(graphs.len() as u32).to_le_bytes());
                for g in graphs {
                    put_info(&mut buf, g);
                }
            }
            Response::Answers {
                kind,
                epoch,
                answers,
            } => {
                buf.push(0x83);
                buf.push(kind.as_u8());
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&(answers.len() as u32).to_le_bytes());
                for a in answers {
                    buf.extend_from_slice(&a.to_le_bytes());
                }
            }
            Response::InfoOk { info } => {
                buf.push(0x84);
                put_info(&mut buf, info);
            }
            Response::StatsOk { stats } => {
                buf.push(0x85);
                buf.extend_from_slice(&stats.queries.to_le_bytes());
                buf.extend_from_slice(&stats.batches.to_le_bytes());
                buf.extend_from_slice(&stats.max_batch.to_le_bytes());
                buf.extend_from_slice(&stats.size_flushes.to_le_bytes());
                buf.extend_from_slice(&stats.deadline_flushes.to_le_bytes());
                buf.push(u8::try_from(stats.batch_hist.len()).expect("histogram over 255 buckets"));
                for b in &stats.batch_hist {
                    buf.extend_from_slice(&b.to_le_bytes());
                }
                // Robustness counters, appended after the histogram (the
                // variable-length field keeps its prefix position).
                buf.extend_from_slice(&stats.timeouts.to_le_bytes());
                buf.extend_from_slice(&stats.overloads.to_le_bytes());
                buf.extend_from_slice(&stats.panics_isolated.to_le_bytes());
            }
            Response::ReloadOk { epoch } => {
                buf.push(0x86);
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            Response::ShutdownOk => buf.push(0x87),
            Response::Error { code, message } => {
                buf.push(0xFF);
                buf.extend_from_slice(&code.as_u16().to_le_bytes());
                put_str(&mut buf, message);
            }
        }
        buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Returns `BadFrame`-class failures exactly like [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(|_| bad("empty payload"))?;
        let resp = match tag {
            0x81 => Response::HelloOk { version: r.u16()? },
            0x82 => {
                let count = r.u32()? as usize;
                let mut graphs = Vec::new();
                for _ in 0..count {
                    graphs.push(r.info()?);
                }
                Response::GraphList { graphs }
            }
            0x83 => {
                let kind_byte = r.u8()?;
                let kind = QueryKind::from_u8(kind_byte).ok_or((
                    ErrorCode::UnknownKind,
                    format!("unknown query kind {kind_byte}"),
                ))?;
                Response::Answers {
                    kind,
                    epoch: r.u64()?,
                    answers: r.words()?,
                }
            }
            0x84 => Response::InfoOk { info: r.info()? },
            0x85 => {
                let queries = r.u64()?;
                let batches = r.u64()?;
                let max_batch = r.u64()?;
                let size_flushes = r.u64()?;
                let deadline_flushes = r.u64()?;
                let buckets = r.u8()? as usize;
                let mut batch_hist = Vec::with_capacity(buckets);
                for _ in 0..buckets {
                    batch_hist.push(r.u64()?);
                }
                Response::StatsOk {
                    stats: ServerStats {
                        queries,
                        batches,
                        max_batch,
                        size_flushes,
                        deadline_flushes,
                        batch_hist,
                        timeouts: r.u64()?,
                        overloads: r.u64()?,
                        panics_isolated: r.u64()?,
                    },
                }
            }
            0x86 => Response::ReloadOk { epoch: r.u64()? },
            0x87 => Response::ShutdownOk,
            0xFF => {
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| bad(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: r.string()?,
                }
            }
            other => return Err(bad(format!("unknown response tag 0x{other:02x}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

// --- framing -------------------------------------------------------------

/// A frame-level read failure.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly at a frame boundary (peer hung up).
    Eof,
    /// An I/O error from the underlying stream.
    Io(std::io::Error),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN} cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: `u32` little-endian payload length, then the
/// payload.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — the encoder side must
/// chunk its batches below the cap.
///
/// # Errors
/// Propagates stream I/O errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .expect("frame payload exceeds MAX_FRAME_LEN");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload.
///
/// # Errors
/// [`FrameError::Eof`] when the stream ends *at* a frame boundary (the
/// peer is done), [`FrameError::Io`] mid-frame, [`FrameError::TooLarge`]
/// when the length prefix exceeds [`MAX_FRAME_LEN`] (nothing is
/// allocated in that case).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_tags_round_trip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::ListGraphs,
            Request::Query {
                graph: "road".into(),
                epoch: 3,
                kind: QueryKind::Lca,
                pairs: vec![(1, 2), (3, 4)],
            },
            Request::Info {
                graph: "kron".into(),
            },
            Request::Stats,
            Request::Reload { graph: "t".into() },
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_tags_round_trip() {
        let info = GraphInfo {
            name: "road".into(),
            epoch: 2,
            nodes: 100,
            edges: 150,
            is_tree: false,
            num_components: 3,
            num_bridges: 7,
        };
        let resps = [
            Response::HelloOk { version: 1 },
            Response::GraphList {
                graphs: vec![info.clone()],
            },
            Response::Answers {
                kind: QueryKind::BridgeEdge,
                epoch: 9,
                answers: vec![0, 1, BRIDGE_NO_SUCH_EDGE],
            },
            Response::InfoOk { info },
            Response::StatsOk {
                stats: ServerStats {
                    queries: 10,
                    batches: 2,
                    max_batch: 8,
                    size_flushes: 1,
                    deadline_flushes: 1,
                    batch_hist: vec![0, 1, 1],
                    timeouts: 3,
                    overloads: 4,
                    panics_isolated: 5,
                },
            },
            Response::ReloadOk { epoch: 4 },
            Response::ShutdownOk,
            Response::Error {
                code: ErrorCode::NotATree,
                message: "not a tree".into(),
            },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Request::Stats.encode();
        payload.push(0);
        let (code, _) = Request::decode(&payload).unwrap_err();
        assert_eq!(code, ErrorCode::BadFrame);
    }

    #[test]
    fn bad_magic_detected() {
        let mut payload = Request::Hello { version: 1 }.encode();
        payload[1] = b'X';
        let (code, _) = Request::decode(&payload).unwrap_err();
        assert_eq!(code, ErrorCode::BadMagic);
    }

    #[test]
    fn oversized_pair_count_rejected_before_allocation() {
        // A Query frame whose pair count claims u32::MAX pairs but whose
        // payload holds none: must error, not attempt a 32 GiB Vec.
        let mut payload = vec![0x03];
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(b'g');
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.push(QueryKind::Lca.as_u8());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let (code, _) = Request::decode(&payload).unwrap_err();
        assert_eq!(code, ErrorCode::BadFrame);
    }

    #[test]
    fn frame_round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"abc");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Eof)));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn error_codes_round_trip() {
        for raw in 1..=12u16 {
            let code = ErrorCode::from_u16(raw).unwrap();
            assert_eq!(code.as_u16(), raw);
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn retry_after_hint_round_trips_through_the_message() {
        let msg = overloaded_message(4096, 4000, 7);
        assert_eq!(retry_after_ms(&msg), Some(7));
        assert_eq!(retry_after_ms("no hint here"), None);
        assert_eq!(retry_after_ms("retry_after_ms="), None);
        // The hint parses even with trailing prose after the digits.
        assert_eq!(retry_after_ms("busy; retry_after_ms=12, sorry"), Some(12));
    }
}
