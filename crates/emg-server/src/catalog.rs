//! The graph catalog: immutable, epoch-versioned snapshots.
//!
//! Each served graph lives in a [`Snapshot`] — the parsed graph plus
//! everything precomputed at load time so that query handling is pure
//! batched launches: the CSR adjacency, the spanning forest (connectivity
//! representatives), the bridge flags, and — when the graph is a rooted
//! tree — the Euler-tour statistics and Schieber–Vishkin inlabel tables.
//! Snapshots are immutable after construction and shared as
//! `Arc<Snapshot>`; a reload builds a **fresh** snapshot on a fresh pooled
//! device and swaps the `Arc` under the catalog lock (DESIGN.md §12.5), so
//! in-flight batches keep answering against the epoch they started with.

use crate::protocol::{ErrorCode, GraphInfo, QueryKind, BRIDGE_NO_SUCH_EDGE};
use bridges::{bridges_dfs, bridges_tv, SpanningForestBuilder, UnionFindBuilder, UnrootedForest};
use euler_tour::{EulerTour, TreeStats};
use gpu_sim::{Device, DeviceConfig, DeviceHandle};
use graph_core::{Csr, EdgeList, Tree};
use lca::InlabelTables;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// A server-side failure: the wire error code plus a human-readable cause.
pub type ServeError = (ErrorCode, String);

/// Tree-only precomputation: present iff the snapshot graph is a rooted
/// tree (connected, `m = n - 1`), which is what makes LCA and subtree
/// queries answerable.
#[derive(Debug)]
pub struct TreeData {
    /// Euler-tour statistics (preorder / subtree size / level / parent).
    pub stats: TreeStats,
    /// Schieber–Vishkin inlabel tables for O(1) LCA queries.
    pub tables: InlabelTables,
}

/// One immutable, epoch-versioned serving unit: the graph and every table
/// needed to answer batched queries with single device launches.
#[derive(Debug)]
pub struct Snapshot {
    /// Catalog name (the file stem the graph was loaded from).
    pub name: String,
    /// Epoch: 1 on first load, +1 per reload.
    pub epoch: u64,
    /// The snapshot-scoped pooled device every batch for this snapshot
    /// launches on.
    pub device: DeviceHandle,
    /// The parsed graph.
    pub graph: EdgeList,
    /// CSR adjacency (from the emgbin sidecar when present, else built on
    /// the device).
    pub csr: Csr,
    /// Spanning forest: component representatives drive connectivity
    /// queries.
    pub forest: UnrootedForest,
    /// Per-edge bridge flags (`1` = bridge), host-resident so the bridge
    /// kernel can read them directly.
    pub bridge_flag: Vec<u8>,
    /// Number of bridges.
    pub num_bridges: u32,
    /// Tree-only tables; `None` when the graph is not a rooted tree.
    pub tree: Option<TreeData>,
}

impl Snapshot {
    /// Loads `path` and precomputes every serving table on a fresh pooled
    /// device configured from the environment
    /// ([`Snapshot::load_with`] with [`DeviceConfig::default`]).
    ///
    /// # Errors
    /// `Internal` on I/O or parse failures.
    pub fn load(name: &str, path: &Path, epoch: u64) -> Result<Snapshot, ServeError> {
        Self::load_with(name, path, epoch, &DeviceConfig::default())
    }

    /// Loads `path` and precomputes every serving table on a fresh pooled
    /// device built from `device_cfg`. The whole build runs with fault
    /// injection **paused** ([`Device::pause_faults`]): a fault plane on
    /// the serving device is meant to poison individual query batches, not
    /// to make every catalog load a coin flip — and skipping the build
    /// keeps the serving-path fault schedule independent of build length
    /// (DESIGN.md §13.2).
    ///
    /// # Errors
    /// `Internal` on I/O or parse failures.
    pub fn load_with(
        name: &str,
        path: &Path,
        epoch: u64,
        device_cfg: &DeviceConfig,
    ) -> Result<Snapshot, ServeError> {
        let (parsed, maybe_csr) = graph_io::read_edge_list_with_csr(path)
            .map_err(|e| (ErrorCode::Internal, format!("loading {name}: {e}")))?;
        let graph = parsed.graph;
        let device = Device::with_config(device_cfg.clone()).into_handle();
        let (csr, forest, bridge_flag, num_bridges, tree) = {
            let _build_quietly = device.pause_faults();
            let csr = maybe_csr.unwrap_or_else(|| Csr::from_edge_list_on(&device, &graph));
            let forest = UnionFindBuilder.build_unrooted(&device, &graph, &csr);

            // Bridges: the TV pipeline on the device when connected, the
            // DFS oracle otherwise (TV requires a connected input).
            let m = graph.num_edges();
            let mut bridge_flag = vec![0u8; m];
            let mut num_bridges = 0u32;
            if graph.num_nodes() > 0 {
                let result = if forest.is_connected() {
                    bridges_tv(&device, &graph, &csr)
                        .map_err(|e| (ErrorCode::Internal, format!("bridges on {name}: {e:?}")))?
                } else {
                    bridges_dfs(&graph, &csr)
                };
                for (e, flag) in bridge_flag.iter_mut().enumerate() {
                    if result.is_bridge.get(e) {
                        *flag = 1;
                        num_bridges += 1;
                    }
                }
            }

            // Tree tables iff the graph is a rooted tree (root 0) — the
            // same construction the one-shot `emg lca` path runs, so
            // server answers are bit-identical to the CLI oracle.
            let n = graph.num_nodes();
            let tree = if n >= 1 && m == n - 1 && forest.is_connected() {
                match Tree::from_edges(n, graph.edges(), 0) {
                    Ok(tree) => {
                        let tour = EulerTour::build(&device, &tree).map_err(|e| {
                            (ErrorCode::Internal, format!("euler tour on {name}: {e:?}"))
                        })?;
                        let stats = TreeStats::compute(&device, &tour);
                        let tables = InlabelTables::from_stats_device(&device, &stats);
                        Some(TreeData { stats, tables })
                    }
                    Err(_) => None,
                }
            } else {
                None
            };
            (csr, forest, bridge_flag, num_bridges, tree)
        };

        Ok(Snapshot {
            name: name.to_string(),
            epoch,
            device,
            graph,
            csr,
            forest,
            bridge_flag,
            num_bridges,
            tree,
        })
    }

    /// The snapshot's catalog metadata.
    pub fn info(&self) -> GraphInfo {
        GraphInfo {
            name: self.name.clone(),
            epoch: self.epoch,
            nodes: self.graph.num_nodes() as u32,
            edges: self.graph.num_edges() as u32,
            is_tree: self.tree.is_some(),
            num_components: self.forest.num_components as u32,
            num_bridges: self.num_bridges,
        }
    }

    /// Validates that `kind` is answerable and every pair is in range —
    /// run once per request *before* it joins a batch, so batched kernels
    /// never see invalid ids.
    ///
    /// # Errors
    /// `NotATree` for LCA/subtree against a non-tree snapshot,
    /// `NodeOutOfRange` for an id `>= n`.
    pub fn validate_request(
        &self,
        kind: QueryKind,
        pairs: &[(u32, u32)],
    ) -> Result<(), ServeError> {
        if matches!(kind, QueryKind::Lca | QueryKind::Subtree) && self.tree.is_none() {
            return Err((
                ErrorCode::NotATree,
                format!("graph {:?} is not a rooted tree", self.name),
            ));
        }
        let n = self.graph.num_nodes() as u32;
        for &(u, v) in pairs {
            if u >= n || v >= n {
                return Err((
                    ErrorCode::NodeOutOfRange,
                    format!("pair ({u},{v}) out of range for {n} nodes"),
                ));
            }
        }
        Ok(())
    }

    /// Answers one coalesced batch with a single device launch for `kind`.
    /// Pairs must already be validated by [`Snapshot::validate_request`].
    ///
    /// # Panics
    /// Panics if `out.len() != pairs.len()` or validation was skipped.
    pub fn answer_batch(&self, kind: QueryKind, pairs: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(pairs.len(), out.len(), "query/output length mismatch");
        match kind {
            QueryKind::Lca => {
                let tree = self.tree.as_ref().expect("validated: tree snapshot");
                tree.tables.query_batch_on(&self.device, pairs, out);
            }
            QueryKind::Subtree => {
                let tree = self.tree.as_ref().expect("validated: tree snapshot");
                let mut bytes = vec![0u8; pairs.len()];
                tree.stats
                    .in_subtree_batch_on(&self.device, pairs, &mut bytes);
                for (o, b) in out.iter_mut().zip(&bytes) {
                    *o = u32::from(*b);
                }
            }
            QueryKind::Connectivity => {
                let mut bytes = vec![0u8; pairs.len()];
                self.forest
                    .connected_batch_on(&self.device, pairs, &mut bytes);
                for (o, b) in out.iter_mut().zip(&bytes) {
                    *o = u32::from(*b);
                }
            }
            QueryKind::BridgeEdge => self.bridge_batch(pairs, out),
        }
    }

    /// Batched bridge-membership: one virtual thread per pair scans the
    /// smaller endpoint's CSR row for the edge. Answers: `1` = bridge,
    /// `0` = edge exists but is not a bridge, [`BRIDGE_NO_SUCH_EDGE`] =
    /// no such edge. Parallel copies of an edge are never bridges, so
    /// OR-ing the flags over every matching edge id is exact.
    fn bridge_batch(&self, pairs: &[(u32, u32)], out: &mut [u32]) {
        let device = &self.device;
        let csr = &self.csr;
        let flag = &self.bridge_flag;
        let _k = device.kernel_label("serve_bridge_batch");
        // The pairs, the CSR adjacency, and the bridge flags feed the
        // closure.
        device.capture_read(pairs);
        device.capture_read(csr.offsets());
        device.capture_read(csr.raw_neighbors());
        device.capture_read(csr.raw_edge_ids());
        device.capture_read(flag);
        device.map(out, |q| {
            let (u, v) = pairs[q];
            // Scan the sparser endpoint's row.
            let (a, b) = if csr.degree(u) <= csr.degree(v) {
                (u, v)
            } else {
                (v, u)
            };
            let mut found = false;
            let mut bridge = 0u32;
            for (w, eid) in csr.incident(a) {
                if w == b {
                    found = true;
                    bridge |= u32::from(flag[eid as usize]);
                }
            }
            if found {
                bridge
            } else {
                BRIDGE_NO_SUCH_EDGE
            }
        });
    }
}

/// One catalog entry: the on-disk source plus the current snapshot.
struct Entry {
    path: PathBuf,
    current: Arc<Snapshot>,
}

/// The serving catalog: every graph found in the catalog directory, each
/// with its current snapshot. Lookup is lock-then-clone (`Arc`), so
/// readers never block a reload for longer than the pointer swap.
pub struct Catalog {
    entries: RwLock<BTreeMap<String, Entry>>,
    /// Template used for every snapshot device this catalog builds —
    /// initial loads and reloads alike, so a reload can never silently
    /// drop a fault plane or pooling mode the server was started with.
    device_cfg: DeviceConfig,
}

impl Catalog {
    /// Loads every regular file in `dir` as a graph (catalog name = file
    /// stem), building each initial snapshot at epoch 1 on a device
    /// configured from the environment.
    ///
    /// # Errors
    /// `Internal` when the directory is unreadable, empty, or a graph
    /// fails to load — a server with nothing to serve is a configuration
    /// error.
    pub fn open(dir: &Path) -> Result<Catalog, ServeError> {
        Self::open_with(dir, DeviceConfig::default())
    }

    /// [`Catalog::open`] with an explicit device template for every
    /// snapshot this catalog will ever build.
    ///
    /// # Errors
    /// `Internal` when the directory is unreadable, empty, or a graph
    /// fails to load.
    pub fn open_with(dir: &Path, device_cfg: DeviceConfig) -> Result<Catalog, ServeError> {
        let mut entries = BTreeMap::new();
        let listing = std::fs::read_dir(dir)
            .map_err(|e| (ErrorCode::Internal, format!("catalog dir {dir:?}: {e}")))?;
        let mut paths: Vec<PathBuf> = listing
            .filter_map(|r| r.ok().map(|d| d.path()))
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| (ErrorCode::Internal, format!("unusable file name {path:?}")))?
                .to_string();
            let snapshot = Arc::new(Snapshot::load_with(&name, &path, 1, &device_cfg)?);
            entries.insert(
                name,
                Entry {
                    path,
                    current: snapshot,
                },
            );
        }
        if entries.is_empty() {
            return Err((
                ErrorCode::Internal,
                format!("catalog dir {dir:?} holds no graph files"),
            ));
        }
        Ok(Catalog {
            entries: RwLock::new(entries),
            device_cfg,
        })
    }

    /// The current snapshot of `graph`.
    ///
    /// # Errors
    /// `UnknownGraph` when the name is not in the catalog.
    pub fn get(&self, graph: &str) -> Result<Arc<Snapshot>, ServeError> {
        self.entries
            .read()
            .expect("catalog lock poisoned")
            .get(graph)
            .map(|e| Arc::clone(&e.current))
            .ok_or_else(|| {
                (
                    ErrorCode::UnknownGraph,
                    format!("no graph named {graph:?} in the catalog"),
                )
            })
    }

    /// Metadata for every graph, in name order.
    pub fn list(&self) -> Vec<GraphInfo> {
        self.entries
            .read()
            .expect("catalog lock poisoned")
            .values()
            .map(|e| e.current.info())
            .collect()
    }

    /// Re-reads `graph` from its source file into a fresh snapshot at
    /// `epoch + 1` and swaps it in. The old snapshot stays alive for any
    /// in-flight batch still holding its `Arc`.
    ///
    /// # Errors
    /// `UnknownGraph` for an unknown name, `Internal` when the reload
    /// itself fails — including a *panic* mid-build, which is caught and
    /// isolated. In every failure case the old snapshot stays current and
    /// its epoch is unchanged, so a bad file on disk can never take a
    /// graph out of service (DESIGN.md §13.4).
    pub fn reload(&self, graph: &str) -> Result<Arc<Snapshot>, ServeError> {
        // Build outside the lock: snapshot construction is the expensive
        // part and readers should keep answering from the old epoch.
        let (path, next_epoch) = {
            let entries = self.entries.read().expect("catalog lock poisoned");
            let entry = entries.get(graph).ok_or_else(|| {
                (
                    ErrorCode::UnknownGraph,
                    format!("no graph named {graph:?} in the catalog"),
                )
            })?;
            (entry.path.clone(), entry.current.epoch + 1)
        };
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Snapshot::load_with(graph, &path, next_epoch, &self.device_cfg)
        }))
        .unwrap_or_else(|panic| {
            let reason = crate::batcher::panic_message(panic.as_ref());
            Err((
                ErrorCode::Internal,
                format!("reload of {graph} panicked (isolated): {reason}"),
            ))
        });
        let fresh = Arc::new(built?);
        let mut entries = self.entries.write().expect("catalog lock poisoned");
        let entry = entries.get_mut(graph).ok_or_else(|| {
            (
                ErrorCode::UnknownGraph,
                format!("graph {graph:?} vanished during reload"),
            )
        })?;
        entry.current = Arc::clone(&fresh);
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_graph(dir: &Path, name: &str, edges: &[(u32, u32)]) -> PathBuf {
        let path = dir.join(format!("{name}.txt"));
        let mut text = String::new();
        for (u, v) in edges {
            text.push_str(&format!("{u}\t{v}\n"));
        }
        std::fs::write(&path, text).unwrap();
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("emg-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tree_snapshot_answers_all_kinds() {
        let dir = temp_dir("tree");
        // A 6-node tree: 0 parents {1,2,3}, 1 parents {4,5}. The edges
        // list nodes in ascending first-appearance order, so the SNAP
        // compaction maps file ids to dense ids identically.
        write_graph(&dir, "tree6", &[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)]);
        let catalog = Catalog::open(&dir).unwrap();
        let snap = catalog.get("tree6").unwrap();
        assert!(snap.tree.is_some());
        assert_eq!(snap.epoch, 1);

        let pairs = [(4u32, 5u32), (2, 3), (1, 1)];
        let mut out = vec![0u32; 3];
        snap.answer_batch(QueryKind::Lca, &pairs, &mut out);
        assert_eq!(out, vec![1, 0, 1]);

        snap.answer_batch(QueryKind::Connectivity, &pairs, &mut out);
        assert_eq!(out, vec![1, 1, 1]);

        // Every tree edge is a bridge; (4,5) is not an edge.
        let epairs = [(0u32, 1u32), (1, 5), (4, 5)];
        snap.answer_batch(QueryKind::BridgeEdge, &epairs, &mut out);
        assert_eq!(out, vec![1, 1, BRIDGE_NO_SUCH_EDGE]);

        // 4 and 5 sit in 1's subtree; 2 does not.
        let spairs = [(4u32, 1u32), (5, 1), (2, 1)];
        snap.answer_batch(QueryKind::Subtree, &spairs, &mut out);
        assert_eq!(out, vec![1, 1, 0]);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_tree_rejects_lca_and_answers_connectivity() {
        let dir = temp_dir("cyclic");
        // A triangle plus a pendant and an isolated pair.
        write_graph(&dir, "g", &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]);
        let catalog = Catalog::open(&dir).unwrap();
        let snap = catalog.get("g").unwrap();
        assert!(snap.tree.is_none());
        assert_eq!(snap.forest.num_components, 2);

        let err = snap
            .validate_request(QueryKind::Lca, &[(0, 1)])
            .unwrap_err();
        assert_eq!(err.0, ErrorCode::NotATree);
        let err = snap
            .validate_request(QueryKind::Connectivity, &[(0, 99)])
            .unwrap_err();
        assert_eq!(err.0, ErrorCode::NodeOutOfRange);

        let pairs = [(0u32, 3u32), (0, 4), (4, 5)];
        let mut out = vec![0u32; 3];
        snap.answer_batch(QueryKind::Connectivity, &pairs, &mut out);
        assert_eq!(out, vec![1, 0, 1]);

        // Triangle edges are not bridges; the pendant and the pair are.
        let epairs = [(0u32, 1u32), (2, 3), (4, 5), (0, 3)];
        let mut out = vec![0u32; 4];
        snap.answer_batch(QueryKind::BridgeEdge, &epairs, &mut out);
        assert_eq!(out, vec![0, 1, 1, BRIDGE_NO_SUCH_EDGE]);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_bumps_epoch_and_swaps_content() {
        let dir = temp_dir("reload");
        let path = write_graph(&dir, "g", &[(0, 1), (1, 2)]);
        let catalog = Catalog::open(&dir).unwrap();
        let before = catalog.get("g").unwrap();
        assert_eq!(before.epoch, 1);
        assert_eq!(before.graph.num_nodes(), 3);

        // Grow the graph on disk, then reload.
        std::fs::write(&path, "0\t1\n1\t2\n2\t3\n").unwrap();
        let after = catalog.reload("g").unwrap();
        assert_eq!(after.epoch, 2);
        assert_eq!(after.graph.num_nodes(), 4);
        // The old Arc still answers at its epoch.
        assert_eq!(before.epoch, 1);
        assert_eq!(catalog.get("g").unwrap().epoch, 2);

        assert_eq!(
            catalog.reload("missing").unwrap_err().0,
            ErrorCode::UnknownGraph
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_catalog_is_an_error() {
        let dir = temp_dir("empty");
        let err = Catalog::open(&dir).map(|_| ()).unwrap_err();
        assert_eq!(err.0, ErrorCode::Internal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_reload_keeps_the_old_snapshot_serving() {
        let dir = temp_dir("reload-fail");
        let path = write_graph(&dir, "g", &[(0, 1), (1, 2)]);
        let catalog = Catalog::open(&dir).unwrap();
        assert_eq!(catalog.get("g").unwrap().epoch, 1);

        // Corrupt the file on disk: reload must fail with Internal and the
        // old snapshot must keep serving at its old epoch.
        std::fs::write(&path, "this is not\tan edge list\n\u{0}\u{0}").unwrap();
        let err = catalog.reload("g").map(|_| ()).unwrap_err();
        assert_eq!(err.0, ErrorCode::Internal);
        let snap = catalog.get("g").unwrap();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.graph.num_nodes(), 3);

        // Repair the file: the next reload succeeds and lands on epoch 2,
        // not 3 — the failed attempt consumed no epoch.
        std::fs::write(&path, "0\t1\n1\t2\n2\t3\n").unwrap();
        assert_eq!(catalog.reload("g").unwrap().epoch, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_builds_are_immune_to_fault_injection() {
        let dir = temp_dir("faulted");
        write_graph(&dir, "tree", &[(0, 1), (0, 2), (1, 3)]);
        // p=1.0: every unpaused launch panics. The catalog must still open
        // (builds run under pause_faults) and the fault plane must still be
        // armed on the serving device afterwards.
        let cfg = DeviceConfig {
            faults: "launch_panic:p=1.0:seed=7".parse().unwrap(),
            ..DeviceConfig::default()
        };
        let catalog = Catalog::open_with(&dir, cfg).unwrap();
        let snap = catalog.get("tree").unwrap();
        assert_eq!(snap.epoch, 1);

        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0u32; 1];
            snap.answer_batch(QueryKind::Connectivity, &[(0, 3)], &mut out);
        }))
        .unwrap_err();
        let reason = crate::batcher::panic_message(panic.as_ref());
        assert!(
            reason.contains(gpu_sim::fault::INJECTED_PANIC),
            "expected an injected panic, got: {reason}"
        );

        // Reload inherits the template; its build pauses faults too, so it
        // succeeds even at p=1.0.
        let after = catalog.reload("tree").unwrap();
        assert_eq!(after.epoch, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
