//! # emg-server — the always-on batched query daemon
//!
//! The one-shot `emg` CLI pays the full preprocessing bill — parse, CSR,
//! spanning forest, Euler tour, inlabel tables — on every invocation,
//! then answers its queries and exits. For the query kinds this workspace
//! accelerates that is exactly backwards: Schieber–Vishkin LCA is O(1)
//! *per query* after an O(n) build, so the economics only make sense when
//! one build amortizes over many queries. `emg serve` is that
//! amortization: a long-lived daemon that loads graphs once into
//! immutable, epoch-versioned [`Snapshot`]s (graph + forest + bridge
//! flags + inlabel tables, one pooled device per snapshot) and answers
//! batched queries over a length-prefixed socket protocol.
//!
//! The moving parts, one module each:
//!
//! * [`protocol`] — the wire format (framing, tags, error codes,
//!   versioning), normatively specified in DESIGN.md §12;
//! * [`catalog`] — snapshot construction and the epoch/reload lifecycle;
//! * [`batcher`] — the request coalescer: concurrent sessions' queries
//!   merge into single device launches, flushed on a size cap or a
//!   deadline;
//! * [`server`] — the listener and per-connection sessions;
//! * [`client`] — the blocking client the CLI's `emg client` and the
//!   qps sweep drive, plus the retrying wrapper the chaos sweep drives.
//!
//! Robustness (DESIGN.md §13): sessions run under read/write deadlines,
//! the batcher bounds its queue (`Overloaded` + retry hint) and isolates
//! per-batch panics, reload failures never unseat a serving snapshot,
//! shutdown drains admitted work, and the whole plane is exercised by
//! deterministic fault injection (`EMG_FAULT`) from the gpu-sim device.
//!
//! The correctness contract throughout: a batched answer is
//! **bit-identical** to what the one-shot CLI path computes for the same
//! pair, whatever batch it rides in — the integration suite pins this
//! against the sequential oracles at pool widths 1 and 4.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod catalog;
pub mod client;
pub mod protocol;
pub mod server;

pub use batcher::{BatchConfig, Batcher, DEFAULT_MAX_PENDING};
pub use catalog::{Catalog, Snapshot};
pub use client::{Client, ClientError, RetryPolicy, RetryingClient};
pub use protocol::{
    retry_after_ms, ErrorCode, GraphInfo, QueryKind, Request, Response, ServerStats,
};
pub use server::{Server, SessionLimits};
