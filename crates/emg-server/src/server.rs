//! The daemon: socket listener, per-connection sessions, lifecycle.
//!
//! `emg serve` binds one listener — TCP (`host:port`) or, on Unix, a
//! local socket (`unix:/path`) — loads the catalog, starts the
//! [`Batcher`], and then accepts connections until a client sends
//! `Shutdown`. Each connection gets its own session thread: it enforces
//! the handshake (first frame must be a well-formed `Hello`, DESIGN.md
//! §12.2), validates every request against the current snapshot *before*
//! it joins a batch, and writes exactly one response frame per request
//! frame, in order. All query work funnels through the shared batcher, so
//! concurrency across sessions is what creates coalescing opportunities.
//!
//! Sessions read under two deadlines (DESIGN.md §13.3): an *idle* window
//! for the first byte of each frame (`EMG_SERVE_IDLE_MS`) and a *frame*
//! window for the rest of it (`EMG_SERVE_IO_TIMEOUT_MS`), so a client
//! that trickles one byte per minute — the slow-loris shape — is reaped
//! instead of pinning a session thread forever. Writes run under the
//! frame deadline, too. When the accept loop exits, [`Server::run`]
//! drains the batcher before returning: every admitted query is answered
//! before shutdown completes.

use crate::batcher::{BatchConfig, Batcher};
use crate::catalog::{Catalog, ServeError};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use gpu_sim::env::{parse_positive_knob, EMG_SERVE_IDLE_MS, EMG_SERVE_IO_TIMEOUT_MS};
use gpu_sim::DeviceConfig;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Prefix selecting a Unix-domain socket address (`unix:/path/to.sock`).
pub const UNIX_ADDR_PREFIX: &str = "unix:";

/// One accepted connection, transport-erased.
pub enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

/// Default idle window before a silent session is reaped, milliseconds.
pub const DEFAULT_IDLE_MS: u64 = 30_000;
/// Default per-frame read/write deadline, milliseconds.
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 5_000;

/// Per-session read/write deadlines (DESIGN.md §13.3).
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// How long a session may sit between frames before it is closed.
    pub idle: Duration,
    /// Once a frame's first byte arrives, the whole frame — and every
    /// response write — must complete within this window.
    pub io: Duration,
}

impl SessionLimits {
    /// Reads `EMG_SERVE_IDLE_MS` and `EMG_SERVE_IO_TIMEOUT_MS` from the
    /// environment (registry-validated; a typo panics, unset means the
    /// defaults).
    pub fn from_env() -> Self {
        SessionLimits {
            idle: Duration::from_millis(parse_positive_knob(EMG_SERVE_IDLE_MS, DEFAULT_IDLE_MS)),
            io: Duration::from_millis(parse_positive_knob(
                EMG_SERVE_IO_TIMEOUT_MS,
                DEFAULT_IO_TIMEOUT_MS,
            )),
        }
    }
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            idle: Duration::from_millis(DEFAULT_IDLE_MS),
            io: Duration::from_millis(DEFAULT_IO_TIMEOUT_MS),
        }
    }
}

/// A one-frame [`Read`] adapter enforcing the two-deadline discipline:
/// the *idle* budget governs the wait for the frame's first byte; from
/// that byte on, the remainder of the frame must land before a fixed
/// *frame* deadline. The per-syscall socket timeout is re-armed to the
/// remaining budget before every read, so no single `read(2)` can
/// outlive the deadline no matter how slowly bytes trickle in.
struct DeadlineReader<'a> {
    conn: &'a mut Conn,
    limits: SessionLimits,
    /// Set once the first byte arrives; the whole frame must beat it.
    frame_deadline: Option<Instant>,
    /// True when the session died by deadline rather than by I/O error.
    timed_out: bool,
}

impl<'a> DeadlineReader<'a> {
    fn new(conn: &'a mut Conn, limits: SessionLimits) -> Self {
        DeadlineReader {
            conn,
            limits,
            frame_deadline: None,
            timed_out: false,
        }
    }

    fn deadline_error(&mut self) -> std::io::Error {
        self.timed_out = true;
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            if self.frame_deadline.is_some() {
                "frame read deadline elapsed"
            } else {
                "session idle deadline elapsed"
            },
        )
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let budget = match self.frame_deadline {
            None => self.limits.idle,
            Some(deadline) => deadline.saturating_duration_since(Instant::now()),
        };
        if budget.is_zero() {
            return Err(self.deadline_error());
        }
        self.conn.set_read_timeout(Some(budget))?;
        match self.conn.read(buf) {
            Ok(n) => {
                if n > 0 && self.frame_deadline.is_none() {
                    self.frame_deadline = Some(Instant::now() + self.limits.io);
                }
                Ok(n)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(self.deadline_error())
            }
            Err(e) => Err(e),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn bind(addr: &str) -> std::io::Result<Listener> {
        if let Some(path) = addr.strip_prefix(UNIX_ADDR_PREFIX) {
            #[cfg(unix)]
            {
                // A stale socket file from a previous run would make bind
                // fail with AddrInUse even though nobody is listening.
                let _ = std::fs::remove_file(path);
                return UnixListener::bind(path).map(Listener::Unix);
            }
            #[cfg(not(unix))]
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    format!("unix sockets unavailable on this platform: {path}"),
                ));
            }
        }
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// The `emg serve` daemon: catalog + batcher + listener.
pub struct Server {
    listener: Listener,
    catalog: Arc<Catalog>,
    batcher: Arc<Batcher>,
    shutdown: Arc<AtomicBool>,
    limits: SessionLimits,
}

impl Server {
    /// Binds `addr` (`host:port`, `127.0.0.1:0` for an ephemeral test
    /// port, or `unix:/path`), loads every graph in `catalog_dir` into
    /// epoch-1 snapshots, and starts the batcher worker. Device
    /// configuration and session limits come from the environment.
    ///
    /// # Errors
    /// Bind failures surface as `Internal` alongside catalog load errors.
    pub fn bind(addr: &str, catalog_dir: &Path, config: BatchConfig) -> Result<Server, ServeError> {
        Self::bind_with(
            addr,
            catalog_dir,
            config,
            DeviceConfig::default(),
            SessionLimits::from_env(),
        )
    }

    /// [`Server::bind`] with an explicit device template (applied to every
    /// snapshot the catalog builds — this is how the chaos harness arms a
    /// fault plane without touching the process environment) and explicit
    /// session limits.
    ///
    /// # Errors
    /// Bind failures surface as `Internal` alongside catalog load errors.
    pub fn bind_with(
        addr: &str,
        catalog_dir: &Path,
        config: BatchConfig,
        device_cfg: DeviceConfig,
        limits: SessionLimits,
    ) -> Result<Server, ServeError> {
        let catalog = Arc::new(Catalog::open_with(catalog_dir, device_cfg)?);
        let listener = Listener::bind(addr)
            .map_err(|e| (ErrorCode::Internal, format!("binding {addr}: {e}")))?;
        Ok(Server {
            listener,
            catalog,
            batcher: Arc::new(Batcher::new(config)),
            shutdown: Arc::new(AtomicBool::new(false)),
            limits,
        })
    }

    /// The bound address, in the same syntax [`Server::bind`] accepts —
    /// how tests recover an ephemeral port.
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unbound>".to_string()),
            #[cfg(unix)]
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| format!("unix:{}", p.display())))
                .unwrap_or_else(|| "<unbound>".to_string()),
        }
    }

    /// A flag that stops the accept loop when set (the `Shutdown` request
    /// sets it; embedders may, too).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shared catalog (tests reload through it directly).
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// Accepts and serves connections until shutdown, then drains the
    /// batcher: every query admitted before the shutdown flag flipped is
    /// answered before this returns (DESIGN.md §13.5). Session threads
    /// are detached; they exit when their client hangs up or a deadline
    /// reaps them.
    ///
    /// # Errors
    /// Only setup-level I/O errors (making the listener pollable); accept
    /// errors on individual connections are not fatal.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(conn) => {
                    let session = SessionCtx {
                        catalog: Arc::clone(&self.catalog),
                        batcher: Arc::clone(&self.batcher),
                        shutdown: Arc::clone(&self.shutdown),
                        limits: self.limits,
                    };
                    std::thread::Builder::new()
                        .name("emg-serve-session".into())
                        .spawn(move || run_session(conn, &session))
                        .expect("spawning a session thread");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        // Graceful drain: stop the batcher's worker after it has flushed
        // everything already admitted. Sessions still blocked in
        // `submit`'s receiver get their answers; anything arriving after
        // this point is refused with `shutting down`.
        self.batcher.stop();
        Ok(())
    }
}

struct SessionCtx {
    catalog: Arc<Catalog>,
    batcher: Arc<Batcher>,
    shutdown: Arc<AtomicBool>,
    limits: SessionLimits,
}

fn send(conn: &mut Conn, ctx: &SessionCtx, resp: &Response) -> bool {
    match write_frame(conn, &resp.encode()) {
        Ok(()) => true,
        Err(e) => {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                ctx.batcher.note_timeout();
            }
            false
        }
    }
}

fn send_error(conn: &mut Conn, ctx: &SessionCtx, err: ServeError) -> bool {
    send(
        conn,
        ctx,
        &Response::Error {
            code: err.0,
            message: err.1,
        },
    )
}

/// Reads one frame under the session deadlines; a deadline miss is
/// counted in the server stats and surfaces as `FrameError::Io` with
/// kind `TimedOut`, which closes the session.
fn read_frame_deadlined(conn: &mut Conn, ctx: &SessionCtx) -> Result<Vec<u8>, FrameError> {
    let mut reader = DeadlineReader::new(conn, ctx.limits);
    let result = read_frame(&mut reader);
    if reader.timed_out {
        ctx.batcher.note_timeout();
    }
    result
}

/// One connection: handshake, then the request/response loop.
fn run_session(mut conn: Conn, ctx: &SessionCtx) {
    // Response writes run under the frame deadline from the first byte.
    if conn.set_write_timeout(Some(ctx.limits.io)).is_err() {
        return;
    }
    // Handshake: the first frame must be a well-formed Hello.
    match read_frame_deadlined(&mut conn, ctx) {
        Ok(payload) => match Request::decode(&payload) {
            Ok(Request::Hello { version }) => {
                if version == 0 {
                    send_error(
                        &mut conn,
                        ctx,
                        (
                            ErrorCode::UnsupportedVersion,
                            "client offered protocol version 0".to_string(),
                        ),
                    );
                    return;
                }
                let negotiated = version.min(PROTOCOL_VERSION);
                if !send(
                    &mut conn,
                    ctx,
                    &Response::HelloOk {
                        version: negotiated,
                    },
                ) {
                    return;
                }
            }
            Ok(_) => {
                send_error(
                    &mut conn,
                    ctx,
                    (
                        ErrorCode::ExpectedHello,
                        "the first frame must be Hello".to_string(),
                    ),
                );
                return;
            }
            Err(err) => {
                send_error(&mut conn, ctx, err);
                return;
            }
        },
        Err(FrameError::TooLarge(n)) => {
            send_error(
                &mut conn,
                ctx,
                (
                    ErrorCode::FrameTooLarge,
                    format!("frame length {n} exceeds the {MAX_FRAME_LEN} cap"),
                ),
            );
            return;
        }
        Err(_) => return,
    }

    // Request loop: one response per request, in order.
    loop {
        let payload = match read_frame_deadlined(&mut conn, ctx) {
            Ok(p) => p,
            Err(FrameError::TooLarge(n)) => {
                // The stream position is unrecoverable past a bad length
                // prefix; report and close.
                send_error(
                    &mut conn,
                    ctx,
                    (
                        ErrorCode::FrameTooLarge,
                        format!("frame length {n} exceeds the {MAX_FRAME_LEN} cap"),
                    ),
                );
                return;
            }
            Err(_) => return,
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(err) => {
                if !send_error(&mut conn, ctx, err) {
                    return;
                }
                continue;
            }
        };
        match handle_request(request, ctx) {
            Flow::Reply(resp) => {
                if !send(&mut conn, ctx, &resp) {
                    return;
                }
            }
            Flow::Quit(resp) => {
                send(&mut conn, ctx, &resp);
                ctx.shutdown.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

enum Flow {
    Reply(Response),
    Quit(Response),
}

fn handle_request(request: Request, ctx: &SessionCtx) -> Flow {
    let result: Result<Flow, ServeError> = (|| {
        Ok(match request {
            Request::Hello { .. } => Flow::Reply(Response::HelloOk {
                version: PROTOCOL_VERSION,
            }),
            Request::ListGraphs => Flow::Reply(Response::GraphList {
                graphs: ctx.catalog.list(),
            }),
            Request::Info { graph } => Flow::Reply(Response::InfoOk {
                info: ctx.catalog.get(&graph)?.info(),
            }),
            Request::Stats => Flow::Reply(Response::StatsOk {
                stats: ctx.batcher.stats(),
            }),
            Request::Reload { graph } => Flow::Reply(Response::ReloadOk {
                epoch: ctx.catalog.reload(&graph)?.epoch,
            }),
            Request::Shutdown => Flow::Quit(Response::ShutdownOk),
            Request::Query {
                graph,
                epoch,
                kind,
                pairs,
            } => {
                let snapshot = ctx.catalog.get(&graph)?;
                if epoch != 0 && epoch != snapshot.epoch {
                    return Err((
                        ErrorCode::WrongEpoch,
                        format!(
                            "requested epoch {epoch}, graph {graph:?} serves epoch {}",
                            snapshot.epoch
                        ),
                    ));
                }
                snapshot.validate_request(kind, &pairs)?;
                let rx = ctx.batcher.submit(snapshot, kind, pairs);
                let (answered_epoch, answers) = rx
                    .recv()
                    .map_err(|_| (ErrorCode::Internal, "batcher worker went away".to_string()))??;
                Flow::Reply(Response::Answers {
                    kind,
                    epoch: answered_epoch,
                    answers,
                })
            }
        })
    })();
    match result {
        Ok(flow) => flow,
        Err((code, message)) => Flow::Reply(Response::Error { code, message }),
    }
}
