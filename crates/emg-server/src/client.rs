//! A blocking client for the `emg serve` protocol.
//!
//! [`Client::connect`] dials the server, performs the `Hello` handshake,
//! and then exposes one typed method per request. The transport is
//! strictly request/response in order, so a `Client` is `!Sync` by
//! construction — open one client per thread for concurrent load (the qps
//! sweep and the concurrency tests do exactly that).

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, GraphInfo, QueryKind, Request, Response,
    ServerStats, PROTOCOL_VERSION,
};
use crate::server::{Conn, UNIX_ADDR_PREFIX};
use std::net::TcpStream;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, EOF mid-exchange).
    Io(std::io::Error),
    /// The server spoke bytes this client cannot parse, or answered a
    /// request with the wrong response type.
    Protocol(String),
    /// The server answered with an error frame.
    Server(ErrorCode, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(code, m) => write!(f, "server error {code:?}: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A connected, handshaken protocol client.
pub struct Client {
    conn: Conn,
    version: u16,
}

impl Client {
    /// Dials `addr` (`host:port` or `unix:/path`) and performs the
    /// handshake.
    ///
    /// # Errors
    /// Connect/transport failures, or a server that refuses the
    /// handshake.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let conn = if let Some(path) = addr.strip_prefix(UNIX_ADDR_PREFIX) {
            #[cfg(unix)]
            {
                Conn::Unix(std::os::unix::net::UnixStream::connect(path)?)
            }
            #[cfg(not(unix))]
            {
                return Err(ClientError::Protocol(format!(
                    "unix sockets unavailable on this platform: {path}"
                )));
            }
        } else {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Conn::Tcp(stream)
        };
        let mut client = Client { conn, version: 0 };
        match client.exchange(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { version } => {
                client.version = version;
                Ok(client)
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// The protocol version negotiated at connect time.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// One request frame out, one response frame in. Error frames are
    /// returned as [`Response::Error`], not lifted — the typed wrappers
    /// below do the lifting.
    ///
    /// # Errors
    /// Transport and framing failures only.
    pub fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, &request.encode())?;
        let payload = read_frame(&mut self.conn)?;
        Response::decode(&payload)
            .map_err(|(code, msg)| ClientError::Protocol(format!("{code:?}: {msg}")))
    }

    /// Lists every graph in the catalog.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn list(&mut self) -> Result<Vec<GraphInfo>, ClientError> {
        match self.exchange(&Request::ListGraphs)? {
            Response::GraphList { graphs } => Ok(graphs),
            other => Err(lift(other, "GraphList")),
        }
    }

    /// Answers `pairs` under `kind` against `graph`, returning the
    /// answering epoch and one answer word per pair. `epoch` pins a
    /// snapshot version (`0` accepts whatever is current).
    ///
    /// # Errors
    /// Transport failures or a server error frame (`NotATree`,
    /// `NodeOutOfRange`, `WrongEpoch`, ...).
    pub fn query(
        &mut self,
        graph: &str,
        epoch: u64,
        kind: QueryKind,
        pairs: &[(u32, u32)],
    ) -> Result<(u64, Vec<u32>), ClientError> {
        let request = Request::Query {
            graph: graph.to_string(),
            epoch,
            kind,
            pairs: pairs.to_vec(),
        };
        match self.exchange(&request)? {
            Response::Answers {
                kind: got,
                epoch,
                answers,
            } => {
                if got != kind {
                    return Err(ClientError::Protocol(format!(
                        "asked {kind:?}, answered {got:?}"
                    )));
                }
                Ok((epoch, answers))
            }
            other => Err(lift(other, "Answers")),
        }
    }

    /// Metadata for one graph.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn info(&mut self, graph: &str) -> Result<GraphInfo, ClientError> {
        match self.exchange(&Request::Info {
            graph: graph.to_string(),
        })? {
            Response::InfoOk { info } => Ok(info),
            other => Err(lift(other, "InfoOk")),
        }
    }

    /// Aggregate server counters.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::StatsOk { stats } => Ok(stats),
            other => Err(lift(other, "StatsOk")),
        }
    }

    /// Reloads one graph from disk; returns the fresh epoch.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn reload(&mut self, graph: &str) -> Result<u64, ClientError> {
        match self.exchange(&Request::Reload {
            graph: graph.to_string(),
        })? {
            Response::ReloadOk { epoch } => Ok(epoch),
            other => Err(lift(other, "ReloadOk")),
        }
    }

    /// Asks the server to exit.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(lift(other, "ShutdownOk")),
        }
    }
}

fn lift(resp: Response, expected: &str) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server(code, message),
        other => unexpected(expected, &other),
    }
}

fn unexpected(expected: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {expected}, got {got:?}"))
}
