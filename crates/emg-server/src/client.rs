//! A blocking client for the `emg serve` protocol.
//!
//! [`Client::connect`] dials the server, performs the `Hello` handshake,
//! and then exposes one typed method per request. The transport is
//! strictly request/response in order, so a `Client` is `!Sync` by
//! construction — open one client per thread for concurrent load (the qps
//! sweep and the concurrency tests do exactly that).
//!
//! [`RetryingClient`] wraps a `Client` with the failure-mode discipline
//! DESIGN.md §13.6 specifies: reconnect on transport errors, retry
//! transient failures (`Overloaded`, `Internal`, connection resets) under
//! a bounded budget with decorrelated-jitter backoff, and honor the
//! `retry_after_ms` hint an `Overloaded` refusal carries.

use crate::protocol::{
    read_frame, retry_after_ms, write_frame, ErrorCode, FrameError, GraphInfo, QueryKind, Request,
    Response, ServerStats, PROTOCOL_VERSION,
};
use crate::server::{Conn, UNIX_ADDR_PREFIX};
use std::net::TcpStream;
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, EOF mid-exchange).
    Io(std::io::Error),
    /// The server spoke bytes this client cannot parse, or answered a
    /// request with the wrong response type.
    Protocol(String),
    /// The server answered with an error frame.
    Server(ErrorCode, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(code, m) => write!(f, "server error {code:?}: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A connected, handshaken protocol client.
pub struct Client {
    conn: Conn,
    version: u16,
}

impl Client {
    /// Dials `addr` (`host:port` or `unix:/path`) and performs the
    /// handshake.
    ///
    /// # Errors
    /// Connect/transport failures, or a server that refuses the
    /// handshake.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Self::connect_with(addr, None)
    }

    /// [`Client::connect`] with an optional socket deadline: every read
    /// and write on the connection (the handshake included) fails with a
    /// `TimedOut`/`WouldBlock` I/O error after `timeout` instead of
    /// blocking forever on a wedged server.
    ///
    /// # Errors
    /// Connect/transport failures, or a server that refuses the
    /// handshake.
    pub fn connect_with(addr: &str, timeout: Option<Duration>) -> Result<Client, ClientError> {
        let conn = if let Some(path) = addr.strip_prefix(UNIX_ADDR_PREFIX) {
            #[cfg(unix)]
            {
                Conn::Unix(std::os::unix::net::UnixStream::connect(path)?)
            }
            #[cfg(not(unix))]
            {
                return Err(ClientError::Protocol(format!(
                    "unix sockets unavailable on this platform: {path}"
                )));
            }
        } else {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Conn::Tcp(stream)
        };
        if timeout.is_some() {
            conn.set_read_timeout(timeout)?;
            conn.set_write_timeout(timeout)?;
        }
        let mut client = Client { conn, version: 0 };
        match client.exchange(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { version } => {
                client.version = version;
                Ok(client)
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// The protocol version negotiated at connect time.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// One request frame out, one response frame in. Error frames are
    /// returned as [`Response::Error`], not lifted — the typed wrappers
    /// below do the lifting.
    ///
    /// # Errors
    /// Transport and framing failures only.
    pub fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, &request.encode())?;
        let payload = read_frame(&mut self.conn)?;
        Response::decode(&payload)
            .map_err(|(code, msg)| ClientError::Protocol(format!("{code:?}: {msg}")))
    }

    /// Lists every graph in the catalog.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn list(&mut self) -> Result<Vec<GraphInfo>, ClientError> {
        match self.exchange(&Request::ListGraphs)? {
            Response::GraphList { graphs } => Ok(graphs),
            other => Err(lift(other, "GraphList")),
        }
    }

    /// Answers `pairs` under `kind` against `graph`, returning the
    /// answering epoch and one answer word per pair. `epoch` pins a
    /// snapshot version (`0` accepts whatever is current).
    ///
    /// # Errors
    /// Transport failures or a server error frame (`NotATree`,
    /// `NodeOutOfRange`, `WrongEpoch`, ...).
    pub fn query(
        &mut self,
        graph: &str,
        epoch: u64,
        kind: QueryKind,
        pairs: &[(u32, u32)],
    ) -> Result<(u64, Vec<u32>), ClientError> {
        let request = Request::Query {
            graph: graph.to_string(),
            epoch,
            kind,
            pairs: pairs.to_vec(),
        };
        match self.exchange(&request)? {
            Response::Answers {
                kind: got,
                epoch,
                answers,
            } => {
                if got != kind {
                    return Err(ClientError::Protocol(format!(
                        "asked {kind:?}, answered {got:?}"
                    )));
                }
                Ok((epoch, answers))
            }
            other => Err(lift(other, "Answers")),
        }
    }

    /// Metadata for one graph.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn info(&mut self, graph: &str) -> Result<GraphInfo, ClientError> {
        match self.exchange(&Request::Info {
            graph: graph.to_string(),
        })? {
            Response::InfoOk { info } => Ok(info),
            other => Err(lift(other, "InfoOk")),
        }
    }

    /// Aggregate server counters.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::StatsOk { stats } => Ok(stats),
            other => Err(lift(other, "StatsOk")),
        }
    }

    /// Reloads one graph from disk; returns the fresh epoch.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn reload(&mut self, graph: &str) -> Result<u64, ClientError> {
        match self.exchange(&Request::Reload {
            graph: graph.to_string(),
        })? {
            Response::ReloadOk { epoch } => Ok(epoch),
            other => Err(lift(other, "ReloadOk")),
        }
    }

    /// Asks the server to exit.
    ///
    /// # Errors
    /// Transport failures or a server error frame.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(lift(other, "ShutdownOk")),
        }
    }
}

fn lift(resp: Response, expected: &str) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server(code, message),
        other => unexpected(expected, &other),
    }
}

fn unexpected(expected: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {expected}, got {got:?}"))
}

/// Retry discipline for [`RetryingClient`]: how many times to retry a
/// transient failure and how to pace the attempts. Backoff uses
/// *decorrelated jitter* — `sleep = clamp(base, rand(base, 3·prev), cap)`
/// — which spreads a thundering herd of refused clients instead of
/// re-synchronizing them the way plain exponential backoff does.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = fail fast, no retry).
    pub retries: u32,
    /// Smallest sleep between attempts.
    pub base: Duration,
    /// Largest sleep between attempts (the `retry_after_ms` server hint
    /// may still push an individual sleep past this).
    pub cap: Duration,
    /// Seed for the jitter stream — fixed seed, reproducible pacing.
    pub seed: u64,
}

impl RetryPolicy {
    /// `retries` attempts with the default pacing (2 ms base, 500 ms cap).
    pub fn new(retries: u32) -> Self {
        RetryPolicy {
            retries,
            ..RetryPolicy::default()
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(500),
            seed: 0x243F_6A88_85A3_08D3, // pi, for want of a better nothing-up-my-sleeve
        }
    }
}

/// Whether an error is worth retrying. Transport errors (connection
/// reset, timeout) and `Overloaded` are plainly transient. `Internal` is
/// retryable *for this protocol* because every request is an idempotent
/// read and a panic-poisoned batch does not outlive its flush — the next
/// attempt lands in a fresh batch (DESIGN.md §13.6).
fn retryable(err: &ClientError) -> bool {
    matches!(err, ClientError::Io(_))
        || matches!(
            err,
            ClientError::Server(ErrorCode::Overloaded | ErrorCode::Internal, _)
        )
}

/// A [`Client`] that survives a flaky server: transport failures drop the
/// connection and redial, transient server errors back off and retry
/// under the [`RetryPolicy`] budget. Counters record what happened so a
/// load harness can tell *recovered* failures from *unrecovered* ones.
pub struct RetryingClient {
    addr: String,
    timeout: Option<Duration>,
    policy: RetryPolicy,
    client: Option<Client>,
    prev_sleep: Duration,
    rng: u64,
    attempts: u64,
    recovered: u64,
    gave_up: u64,
}

impl RetryingClient {
    /// A lazy client for `addr`: the first operation dials (and every
    /// operation after a transport error redials) with `timeout` applied
    /// to the socket, [`Client::connect_with`]-style.
    pub fn new(addr: &str, policy: RetryPolicy, timeout: Option<Duration>) -> Self {
        RetryingClient {
            addr: addr.to_string(),
            timeout,
            policy,
            client: None,
            prev_sleep: policy.base,
            rng: policy.seed,
            attempts: 0,
            recovered: 0,
            gave_up: 0,
        }
    }

    /// Operations attempted, including retries — one per wire exchange.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Operations that failed at least once and then succeeded.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Operations that exhausted the retry budget on a transient error.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    fn next_rand(&mut self) -> u64 {
        // splitmix64 — the same generator the fault plane uses, so the
        // whole chaos pipeline is deterministic end to end.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Decorrelated jitter, floored by the server's `retry_after_ms` hint
    /// when one came back with the refusal.
    fn next_backoff(&mut self, floor: Option<Duration>) -> Duration {
        let base = self.policy.base;
        let hi = (self.prev_sleep * 3).clamp(base, self.policy.cap);
        let span_us = hi.saturating_sub(base).as_micros() as u64;
        let jittered = if span_us == 0 {
            base
        } else {
            base + Duration::from_micros(self.next_rand() % (span_us + 1))
        };
        let sleep = jittered.max(floor.unwrap_or(Duration::ZERO));
        self.prev_sleep = sleep.min(self.policy.cap);
        sleep
    }

    fn with_retry<T>(
        &mut self,
        op: impl Fn(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut failures = 0u32;
        loop {
            self.attempts += 1;
            let result = match self.client {
                Some(ref mut c) => op(c),
                None => match Client::connect_with(&self.addr, self.timeout) {
                    Ok(mut c) => {
                        let r = op(&mut c);
                        self.client = Some(c);
                        r
                    }
                    Err(e) => Err(e),
                },
            };
            match result {
                Ok(v) => {
                    if failures > 0 {
                        self.recovered += 1;
                        self.prev_sleep = self.policy.base;
                    }
                    return Ok(v);
                }
                Err(e) => {
                    if matches!(e, ClientError::Io(_)) {
                        // The stream position is unknowable after a
                        // transport error; redial on the next attempt.
                        self.client = None;
                    }
                    if !retryable(&e) {
                        return Err(e);
                    }
                    if failures >= self.policy.retries {
                        self.gave_up += 1;
                        return Err(e);
                    }
                    failures += 1;
                    let floor = match &e {
                        ClientError::Server(_, message) => {
                            retry_after_ms(message).map(Duration::from_millis)
                        }
                        _ => None,
                    };
                    std::thread::sleep(self.next_backoff(floor));
                }
            }
        }
    }

    /// [`Client::query`] with retries.
    ///
    /// # Errors
    /// A non-transient error, or a transient one that outlived the budget.
    pub fn query(
        &mut self,
        graph: &str,
        epoch: u64,
        kind: QueryKind,
        pairs: &[(u32, u32)],
    ) -> Result<(u64, Vec<u32>), ClientError> {
        self.with_retry(|c| c.query(graph, epoch, kind, pairs))
    }

    /// [`Client::list`] with retries.
    ///
    /// # Errors
    /// A non-transient error, or a transient one that outlived the budget.
    pub fn list(&mut self) -> Result<Vec<GraphInfo>, ClientError> {
        self.with_retry(Client::list)
    }

    /// [`Client::info`] with retries.
    ///
    /// # Errors
    /// A non-transient error, or a transient one that outlived the budget.
    pub fn info(&mut self, graph: &str) -> Result<GraphInfo, ClientError> {
        self.with_retry(|c| c.info(graph))
    }

    /// [`Client::stats`] with retries.
    ///
    /// # Errors
    /// A non-transient error, or a transient one that outlived the budget.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.with_retry(Client::stats)
    }

    /// [`Client::reload`] with retries. Reload is idempotent in effect
    /// (each attempt rebuilds from the same file), so retrying is safe;
    /// a duplicated attempt costs an extra epoch bump, nothing more.
    ///
    /// # Errors
    /// A non-transient error, or a transient one that outlived the budget.
    pub fn reload(&mut self, graph: &str) -> Result<u64, ClientError> {
        self.with_retry(|c| c.reload(graph))
    }

    /// [`Client::shutdown`] with retries.
    ///
    /// # Errors
    /// A non-transient error, or a transient one that outlived the budget.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.with_retry(Client::shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_decorrelated_bounded_and_seeded() {
        let policy = RetryPolicy {
            retries: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            seed: 42,
        };
        let mut a = RetryingClient::new("127.0.0.1:1", policy, None);
        let mut b = RetryingClient::new("127.0.0.1:1", policy, None);
        let mut prev = policy.base;
        for _ in 0..32 {
            let sa = a.next_backoff(None);
            let sb = b.next_backoff(None);
            assert_eq!(sa, sb, "same seed, same pacing");
            assert!(sa >= policy.base && sa <= policy.cap);
            assert!(sa <= (prev * 3).clamp(policy.base, policy.cap));
            prev = sa;
        }
        // The server hint floors the sleep, even past the cap.
        let hinted = a.next_backoff(Some(Duration::from_millis(200)));
        assert!(hinted >= Duration::from_millis(200));
    }

    #[test]
    fn transient_errors_are_retryable_and_client_bugs_are_not() {
        assert!(retryable(&ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "reset"
        ))));
        assert!(retryable(&ClientError::Server(
            ErrorCode::Overloaded,
            "retry_after_ms=1".to_string()
        )));
        assert!(retryable(&ClientError::Server(
            ErrorCode::Internal,
            "batch launch panicked (isolated): injected".to_string()
        )));
        assert!(!retryable(&ClientError::Server(
            ErrorCode::NodeOutOfRange,
            "node 9 out of range".to_string()
        )));
        assert!(!retryable(&ClientError::Protocol("garbage".to_string())));
    }

    #[test]
    fn retry_budget_zero_fails_fast_and_counts_the_give_up() {
        // Nothing listens on a reserved port; every dial fails with Io.
        let mut c = RetryingClient::new("127.0.0.1:1", RetryPolicy::new(0), None);
        let err = c.list().unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
        assert_eq!(c.attempts(), 1);
        assert_eq!(c.gave_up(), 1);
        assert_eq!(c.recovered(), 0);

        let mut c = RetryingClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                retries: 2,
                base: Duration::from_micros(100),
                cap: Duration::from_micros(200),
                seed: 1,
            },
            None,
        );
        let err = c.list().unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
        assert_eq!(c.attempts(), 3, "initial try + two retries");
        assert_eq!(c.gave_up(), 1);
    }
}
