//! The request coalescer: queued queries become single device launches.
//!
//! Every client session submits its validated query jobs here instead of
//! launching directly. A single worker thread drains the queue in
//! **flushes**: it sleeps until the first job arrives, then keeps
//! admitting jobs until either the pending pair count reaches
//! [`BatchConfig::max_batch`] (a *size flush*) or
//! [`BatchConfig::max_delay`] has elapsed since the flush opened (a
//! *deadline flush*), whichever comes first — the classic
//! latency-vs-throughput coalescing window. Each flush groups its jobs by
//! (snapshot, kind) and answers every group with **one** batched device
//! launch ([`Snapshot::answer_batch`]), then splits the answer array back
//! per request. The flush discipline and its two knobs (`EMG_SERVE_BATCH`,
//! `EMG_SERVE_DEADLINE_US`) are specified in DESIGN.md §12.4.
//!
//! Jobs hold an `Arc<Snapshot>` pinned at submit time, so a catalog reload
//! mid-flush never tears a batch: the batch answers against the epoch the
//! session validated, and the response carries that epoch.
//!
//! Two robustness layers guard the queue (DESIGN.md §13): **admission
//! control** — past [`BatchConfig::max_pending`] pending pairs a new
//! submission is refused with [`ErrorCode::Overloaded`] and a
//! `retry_after_ms` hint instead of growing the queue without bound — and
//! **panic isolation** — each per-(snapshot, kind) launch runs under
//! `catch_unwind`, so a poisoned batch answers its own requesters with
//! `Internal` while the worker (and the daemon) keep serving.

use crate::catalog::{ServeError, Snapshot};
use crate::protocol::{overloaded_message, ErrorCode, QueryKind, ServerStats};
use gpu_sim::env::{parse_positive_knob, EMG_SERVE_BATCH, EMG_SERVE_DEADLINE_US, EMG_SERVE_QUEUE};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default pending-pair cap per flush.
pub const DEFAULT_MAX_BATCH: u64 = 1024;
/// Default coalescing deadline in microseconds.
pub const DEFAULT_DEADLINE_US: u64 = 500;
/// Default admission-control bound on pending pairs across the whole
/// queue (64 windows of the default batch size — deep enough for bursts,
/// bounded enough that a stalled device cannot buffer unbounded memory).
pub const DEFAULT_MAX_PENDING: u64 = 65_536;

/// The coalescing knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush as soon as this many query pairs are pending.
    pub max_batch: usize,
    /// Flush this long after the first pending job, even if the batch is
    /// not full.
    pub max_delay: Duration,
    /// Admission control: refuse new submissions with
    /// [`ErrorCode::Overloaded`] once this many pairs are pending
    /// (DESIGN.md §13.3).
    pub max_pending: usize,
}

impl BatchConfig {
    /// Reads `EMG_SERVE_BATCH`, `EMG_SERVE_DEADLINE_US`, and
    /// `EMG_SERVE_QUEUE` from the environment (registry-validated; a typo
    /// panics, unset means the defaults).
    pub fn from_env() -> Self {
        BatchConfig {
            max_batch: parse_positive_knob(EMG_SERVE_BATCH, DEFAULT_MAX_BATCH) as usize,
            max_delay: Duration::from_micros(parse_positive_knob(
                EMG_SERVE_DEADLINE_US,
                DEFAULT_DEADLINE_US,
            )),
            max_pending: parse_positive_knob(EMG_SERVE_QUEUE, DEFAULT_MAX_PENDING) as usize,
        }
    }

    /// The backoff hint an `Overloaded` refusal carries: two coalescing
    /// windows, at least one millisecond — by then the flush that was
    /// pending at refusal time has drained.
    fn retry_after_ms(&self) -> u64 {
        (self.max_delay.as_millis() as u64 * 2).max(1)
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: DEFAULT_MAX_BATCH as usize,
            max_delay: Duration::from_micros(DEFAULT_DEADLINE_US),
            max_pending: DEFAULT_MAX_PENDING as usize,
        }
    }
}

/// What a flushed query resolves to: the answering epoch plus one word per
/// pair.
pub type BatchAnswer = Result<(u64, Vec<u32>), ServeError>;

struct Job {
    snapshot: Arc<Snapshot>,
    kind: QueryKind,
    pairs: Vec<(u32, u32)>,
    reply: mpsc::Sender<BatchAnswer>,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    pending_pairs: usize,
    stopped: bool,
}

#[derive(Default)]
struct Counters {
    queries: u64,
    batches: u64,
    max_batch: u64,
    size_flushes: u64,
    deadline_flushes: u64,
    batch_hist: Vec<u64>,
    timeouts: u64,
    overloads: u64,
    panics_isolated: u64,
}

struct Shared {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    stats: Mutex<Counters>,
    config: BatchConfig,
}

/// The coalescing queue plus its worker thread. Dropping the batcher (or
/// calling [`Batcher::stop`]) flushes everything still queued, so no
/// client is left waiting on a reply channel.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the worker thread with the given knobs.
    pub fn new(config: BatchConfig) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            stats: Mutex::new(Counters::default()),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("emg-serve-batcher".into())
            .spawn(move || worker_loop(&worker_shared))
            .expect("spawning the batcher worker");
        Batcher {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Submits one validated query job; the returned channel yields the
    /// answering epoch and one answer word per pair once its flush runs.
    /// Empty pair lists are answered immediately without touching the
    /// queue.
    pub fn submit(
        &self,
        snapshot: Arc<Snapshot>,
        kind: QueryKind,
        pairs: Vec<(u32, u32)>,
    ) -> mpsc::Receiver<BatchAnswer> {
        let (reply, rx) = mpsc::channel();
        if pairs.is_empty() {
            let _ = reply.send(Ok((snapshot.epoch, Vec::new())));
            return rx;
        }
        let mut queue = self.shared.queue.lock().expect("batcher lock poisoned");
        if queue.stopped {
            let _ = reply.send(Err((
                ErrorCode::Internal,
                "server is shutting down".to_string(),
            )));
            return rx;
        }
        // Admission control: past the pending-pair bound the request is
        // refused — never enqueued — with a hint for when to come back.
        // Refusing at the door bounds queue memory and keeps latency for
        // admitted requests within a few coalescing windows.
        let config = &self.shared.config;
        if queue.pending_pairs + pairs.len() > config.max_pending {
            let message = overloaded_message(
                queue.pending_pairs,
                config.max_pending,
                config.retry_after_ms(),
            );
            drop(queue);
            self.shared
                .stats
                .lock()
                .expect("stats lock poisoned")
                .overloads += 1;
            let _ = reply.send(Err((ErrorCode::Overloaded, message)));
            return rx;
        }
        queue.pending_pairs += pairs.len();
        queue.jobs.push_back(Job {
            snapshot,
            kind,
            pairs,
            reply,
        });
        drop(queue);
        self.shared.wakeup.notify_all();
        rx
    }

    /// A point-in-time copy of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        let c = self.shared.stats.lock().expect("stats lock poisoned");
        ServerStats {
            queries: c.queries,
            batches: c.batches,
            max_batch: c.max_batch,
            size_flushes: c.size_flushes,
            deadline_flushes: c.deadline_flushes,
            batch_hist: c.batch_hist.clone(),
            timeouts: c.timeouts,
            overloads: c.overloads,
            panics_isolated: c.panics_isolated,
        }
    }

    /// Records a session closed by a read/write deadline. Sessions own
    /// their sockets, but the batcher owns the stats block every counter
    /// reports through, so the server's session loops feed this one here.
    pub(crate) fn note_timeout(&self) {
        self.shared
            .stats
            .lock()
            .expect("stats lock poisoned")
            .timeouts += 1;
    }

    /// Stops the worker after it drains everything still queued — the
    /// graceful-shutdown drain. Idempotent; safe through a shared
    /// reference (the server calls this from its accept loop while
    /// sessions still hold clones).
    pub fn stop(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("batcher lock poisoned");
            queue.stopped = true;
        }
        self.shared.wakeup.notify_all();
        let worker = self
            .worker
            .lock()
            .expect("worker handle lock poisoned")
            .take();
        if let Some(worker) = worker {
            worker.join().expect("batcher worker panicked");
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (jobs, size_flush) = match collect_flush(shared) {
            Some(f) => f,
            None => return,
        };
        run_flush(shared, jobs, size_flush);
    }
}

/// Blocks until a flush is due, then drains it. Returns the drained jobs
/// and whether the size cap (vs the deadline) triggered the flush; `None`
/// when the batcher is stopped and drained.
fn collect_flush(shared: &Shared) -> Option<(Vec<Job>, bool)> {
    let mut queue = shared.queue.lock().expect("batcher lock poisoned");
    // Phase 1: sleep until the first job (or shutdown).
    while queue.jobs.is_empty() {
        if queue.stopped {
            return None;
        }
        queue = shared.wakeup.wait(queue).expect("batcher lock poisoned");
    }
    // Phase 2: the coalescing window — admit more jobs until the size cap
    // or the deadline.
    let deadline = Instant::now() + shared.config.max_delay;
    while queue.pending_pairs < shared.config.max_batch && !queue.stopped {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (q, _timeout) = shared
            .wakeup
            .wait_timeout(queue, deadline - now)
            .expect("batcher lock poisoned");
        queue = q;
    }
    let size_flush = queue.pending_pairs >= shared.config.max_batch;
    let jobs: Vec<Job> = queue.jobs.drain(..).collect();
    queue.pending_pairs = 0;
    Some((jobs, size_flush))
}

/// Answers one flush: group by (snapshot, kind), one launch per group,
/// split the answers back per job.
fn run_flush(shared: &Shared, jobs: Vec<Job>, size_flush: bool) {
    // Group jobs by snapshot identity and kind. Arc pointer identity is
    // the right key: two epochs of the same graph are distinct snapshots
    // and must not share a launch.
    let mut groups: HashMap<(usize, u8), Vec<Job>> = HashMap::new();
    let mut order: Vec<(usize, u8)> = Vec::new();
    for job in jobs {
        let key = (Arc::as_ptr(&job.snapshot) as usize, job.kind.as_u8());
        let bucket = groups.entry(key).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        bucket.push(job);
    }

    // Record the flush reason before any reply goes out, so a client that
    // reads its answer and immediately asks for stats sees this flush.
    if !order.is_empty() {
        let mut c = shared.stats.lock().expect("stats lock poisoned");
        if size_flush {
            c.size_flushes += 1;
        } else {
            c.deadline_flushes += 1;
        }
    }

    for key in order {
        let group = groups.remove(&key).expect("group just inserted");
        let snapshot = Arc::clone(&group[0].snapshot);
        let kind = group[0].kind;
        let total: usize = group.iter().map(|j| j.pairs.len()).sum();
        let mut pairs = Vec::with_capacity(total);
        for job in &group {
            pairs.extend_from_slice(&job.pairs);
        }
        // Panic isolation: a poisoned batch — an injected fault, a bug in
        // one kind's kernel, a refused allocation — answers its own
        // requesters with `Internal` and must not kill this worker (a dead
        // worker turns every future query into an error and `stop` into a
        // hang). The launch takes `&Snapshot` and a fresh answers buffer,
        // so no observable state is left half-written on unwind.
        let launched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut answers = vec![0u32; total];
            snapshot.answer_batch(kind, &pairs, &mut answers);
            answers
        }));
        let answers = match launched {
            Ok(answers) => answers,
            Err(panic) => {
                shared
                    .stats
                    .lock()
                    .expect("stats lock poisoned")
                    .panics_isolated += 1;
                let reason = panic_message(panic.as_ref());
                for job in group {
                    let _ = job.reply.send(Err((
                        ErrorCode::Internal,
                        format!("batch launch panicked (isolated): {reason}"),
                    )));
                }
                continue;
            }
        };

        {
            let mut c = shared.stats.lock().expect("stats lock poisoned");
            c.queries += total as u64;
            c.batches += 1;
            c.max_batch = c.max_batch.max(total as u64);
            let bucket = (total as u64).ilog2() as usize;
            if c.batch_hist.len() <= bucket {
                c.batch_hist.resize(bucket + 1, 0);
            }
            c.batch_hist[bucket] += 1;
        }

        let mut offset = 0;
        for job in group {
            let take = job.pairs.len();
            let slice = answers[offset..offset + take].to_vec();
            offset += take;
            // A vanished receiver just means the client hung up mid-query.
            let _ = job.reply.send(Ok((snapshot.epoch, slice)));
        }
    }
}

/// Best-effort text of a caught panic payload (panics carry `&str` or
/// `String` in practice).
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use std::path::PathBuf;

    fn tree_catalog(tag: &str) -> (Catalog, PathBuf) {
        let dir = std::env::temp_dir().join(format!("emg-batcher-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tree6.txt"), "0\t1\n0\t2\n0\t3\n1\t4\n1\t5\n").unwrap();
        (Catalog::open(&dir).unwrap(), dir)
    }

    #[test]
    fn coalesces_concurrent_submissions_into_fewer_launches() {
        let (catalog, dir) = tree_catalog("coalesce");
        let snap = catalog.get("tree6").unwrap();
        let batcher = Batcher::new(BatchConfig {
            max_batch: 1024,
            max_delay: Duration::from_millis(20),
            ..BatchConfig::default()
        });
        // Many tiny submissions inside one coalescing window.
        let receivers: Vec<_> = (0..16)
            .map(|_| batcher.submit(Arc::clone(&snap), QueryKind::Lca, vec![(4, 5), (2, 3)]))
            .collect();
        for rx in receivers {
            let (epoch, answers) = rx.recv().unwrap().unwrap();
            assert_eq!(epoch, 1);
            assert_eq!(answers, vec![1, 0]);
        }
        let stats = batcher.stats();
        assert_eq!(stats.queries, 32);
        // All 16 jobs were submitted before the 20ms window closed, so
        // they coalesced into far fewer launches than jobs.
        assert!(stats.batches < 16, "batches = {}", stats.batches);
        assert!(stats.max_batch >= 4);
        assert_eq!(
            stats.batch_hist.iter().sum::<u64>(),
            stats.batches,
            "histogram covers every batch"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_cap_flushes_without_waiting_for_the_deadline() {
        let (catalog, dir) = tree_catalog("sizecap");
        let snap = catalog.get("tree6").unwrap();
        let batcher = Batcher::new(BatchConfig {
            max_batch: 4,
            // A deadline long enough that only the size cap can explain a
            // prompt flush.
            max_delay: Duration::from_secs(5),
            ..BatchConfig::default()
        });
        let start = Instant::now();
        let rx = batcher.submit(
            Arc::clone(&snap),
            QueryKind::Connectivity,
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        );
        let (_, answers) = rx.recv().unwrap().unwrap();
        assert_eq!(answers, vec![1, 1, 1, 1]);
        assert!(start.elapsed() < Duration::from_secs(2), "deadline flush?");
        assert!(batcher.stats().size_flushes >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_pairs_answer_immediately() {
        let (catalog, dir) = tree_catalog("empty");
        let snap = catalog.get("tree6").unwrap();
        let batcher = Batcher::new(BatchConfig::default());
        let rx = batcher.submit(snap, QueryKind::Lca, Vec::new());
        let (epoch, answers) = rx.recv().unwrap().unwrap();
        assert_eq!(epoch, 1);
        assert!(answers.is_empty());
        assert_eq!(batcher.stats().queries, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stop_drains_queued_jobs() {
        let (catalog, dir) = tree_catalog("stop");
        let snap = catalog.get("tree6").unwrap();
        let batcher = Batcher::new(BatchConfig {
            max_batch: 1 << 20,
            max_delay: Duration::from_secs(5),
            ..BatchConfig::default()
        });
        let rx = batcher.submit(Arc::clone(&snap), QueryKind::Lca, vec![(4, 5)]);
        batcher.stop();
        let (_, answers) = rx.recv().unwrap().unwrap();
        assert_eq!(answers, vec![1]);
        // Submissions after stop are refused, not dropped.
        let rx = batcher.submit(snap, QueryKind::Lca, vec![(4, 5)]);
        assert_eq!(rx.recv().unwrap().unwrap_err().0, ErrorCode::Internal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_from_env_defaults() {
        let cfg = BatchConfig::from_env();
        assert_eq!(cfg.max_batch, DEFAULT_MAX_BATCH as usize);
        assert_eq!(cfg.max_delay, Duration::from_micros(DEFAULT_DEADLINE_US));
        assert_eq!(cfg.max_pending, DEFAULT_MAX_PENDING as usize);
    }

    #[test]
    fn admission_control_refuses_past_the_pending_bound() {
        let (catalog, dir) = tree_catalog("overload");
        let snap = catalog.get("tree6").unwrap();
        // A long deadline holds the first submission in the coalescing
        // window, so the queue is demonstrably occupied when the second
        // arrives and trips the 4-pair bound.
        let batcher = Batcher::new(BatchConfig {
            max_batch: 1 << 20,
            max_delay: Duration::from_secs(5),
            max_pending: 4,
        });
        let admitted = batcher.submit(
            Arc::clone(&snap),
            QueryKind::Connectivity,
            vec![(0, 1), (1, 2), (2, 3)],
        );
        let refused = batcher.submit(
            Arc::clone(&snap),
            QueryKind::Connectivity,
            vec![(0, 1), (1, 2)],
        );
        let (code, message) = refused.recv().unwrap().unwrap_err();
        assert_eq!(code, ErrorCode::Overloaded);
        let hint = crate::protocol::retry_after_ms(&message);
        assert!(
            hint.is_some_and(|ms| ms >= 1),
            "hint missing in {message:?}"
        );
        assert_eq!(batcher.stats().overloads, 1);
        // The refused request was never enqueued; the admitted one drains
        // normally on stop.
        batcher.stop();
        let (_, answers) = admitted.recv().unwrap().unwrap();
        assert_eq!(answers, vec![1, 1, 1]);
        assert_eq!(batcher.stats().queries, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
