//! GPU Inlabel LCA answers must not depend on the scan engine backing
//! its Euler-tour preprocessing.

use gpu_sim::{Device, DeviceConfig, ScanEngine};
use graph_core::ids::INVALID_NODE;
use graph_core::Tree;
use lca::{GpuInlabelLca, LcaAlgorithm, SequentialInlabelLca};

fn dev(engine: ScanEngine) -> Device {
    Device::with_config(DeviceConfig {
        threads: Some(4),
        block_size: 64,
        seq_threshold: 16,
        scan_engine: engine,
        ..Default::default()
    })
}

#[test]
fn inlabel_queries_are_engine_independent() {
    let n = 800usize;
    let mut parent = vec![INVALID_NODE; n];
    let mut state = 0x9E3779B97F4A7C15u64;
    for (v, p) in parent.iter_mut().enumerate().skip(1) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *p = ((state >> 33) as usize % v) as u32;
    }
    let tree = Tree::from_parent_array(parent, 0).unwrap();

    let queries: Vec<(u32, u32)> = (0..500u64)
        .map(|q| {
            let a = (q.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u32 % n as u32;
            let b = (q.wrapping_mul(0xD1B54A32D192ED03) >> 33) as u32 % n as u32;
            (a, b)
        })
        .collect();

    let d_lb = dev(ScanEngine::Lookback);
    let d_tp = dev(ScanEngine::TwoPass);
    let lb = GpuInlabelLca::preprocess(&d_lb, &tree).unwrap();
    let tp = GpuInlabelLca::preprocess(&d_tp, &tree).unwrap();
    let seq = SequentialInlabelLca::preprocess(&tree);

    let mut out_lb = vec![0u32; queries.len()];
    let mut out_tp = vec![0u32; queries.len()];
    let mut out_seq = vec![0u32; queries.len()];
    lb.query_batch(&queries, &mut out_lb);
    tp.query_batch(&queries, &mut out_tp);
    seq.query_batch(&queries, &mut out_seq);
    assert_eq!(out_lb, out_tp);
    assert_eq!(out_lb, out_seq);
}
