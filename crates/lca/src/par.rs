//! Multi-core CPU Inlabel — substitutes the paper's OpenMP implementation
//! with rayon parallel loops.
//!
//! Preprocessing shares the Euler-tour pipeline (the tour *is* the parallel
//! preprocessing; re-implementing it with raw OpenMP-style loops would
//! duplicate the same algorithm); table construction and query batches use
//! plain rayon parallel iterators, chunked like an OpenMP `parallel for`.

use crate::inlabel::InlabelTables;
use crate::LcaAlgorithm;
use euler_tour::{EulerTour, TourError, TreeStats};
use gpu_sim::Device;
use graph_core::Tree;
use rayon::prelude::*;

/// Multi-core Schieber–Vishkin LCA.
#[derive(Debug, Clone)]
pub struct MulticoreInlabelLca {
    tables: InlabelTables,
}

impl MulticoreInlabelLca {
    /// Preprocesses `tree` using all cores.
    pub fn preprocess(device: &Device, tree: &Tree) -> Result<Self, TourError> {
        let tour = EulerTour::build(device, tree)?;
        let stats = TreeStats::compute(device, &tour);
        Ok(Self {
            tables: InlabelTables::from_stats_rayon(&stats),
        })
    }

    /// The underlying tables.
    pub fn tables(&self) -> &InlabelTables {
        &self.tables
    }
}

impl LcaAlgorithm for MulticoreInlabelLca {
    fn name(&self) -> &'static str {
        "Multi-core CPU Inlabel"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        // OpenMP-style chunked parallel for.
        const CHUNK: usize = 8192;
        if queries.len() <= CHUNK {
            for (slot, &(x, y)) in out.iter_mut().zip(queries) {
                *slot = self.tables.query(x, y);
            }
            return;
        }
        out.par_chunks_mut(CHUNK)
            .zip(queries.par_chunks(CHUNK))
            .for_each(|(out_chunk, q_chunk)| {
                for (slot, &(x, y)) in out_chunk.iter_mut().zip(q_chunk) {
                    *slot = self.tables.query(x, y);
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialInlabelLca;
    use graph_core::ids::INVALID_NODE;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parents, 0).unwrap()
    }

    #[test]
    fn matches_sequential_on_random_trees() {
        let device = Device::new();
        let tree = random_tree(20_000, 5);
        let par = MulticoreInlabelLca::preprocess(&device, &tree).unwrap();
        let seq = SequentialInlabelLca::preprocess(&tree);

        let mut state = 7u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let queries: Vec<(u32, u32)> = (0..30_000)
            .map(|_| ((step() % 20_000) as u32, (step() % 20_000) as u32))
            .collect();
        let mut out_par = vec![0u32; queries.len()];
        let mut out_seq = vec![0u32; queries.len()];
        par.query_batch(&queries, &mut out_par);
        seq.query_batch(&queries, &mut out_seq);
        assert_eq!(out_par, out_seq);
    }

    #[test]
    fn small_batches_run_inline() {
        let device = Device::new();
        let tree = random_tree(100, 9);
        let par = MulticoreInlabelLca::preprocess(&device, &tree).unwrap();
        assert_eq!(par.query(0, 0), 0);
        let mut out = vec![0u32; 2];
        par.query_batch(&[(5, 9), (9, 5)], &mut out);
        assert_eq!(out[0], out[1]);
    }
}
