//! The naïve GPU LCA algorithm of Martins et al. (paper §3.1, \[38\]).
//!
//! Preprocessing computes only node levels, by pointer doubling with the
//! paper's optimization of **five jumps per global synchronization**
//! (O(n log n) work — "not theoretically optimal, but never a bottleneck").
//! Each query walks the two nodes up to a common level and then in lockstep
//! to their meeting point: O(distance(x, y)) per query, which is why this
//! algorithm collapses on deep trees (Figures 3d and 5).

use crate::LcaAlgorithm;
use gpu_sim::{Device, PhaseTimer};
use graph_core::ids::NodeId;
use graph_core::Tree;
use std::sync::atomic::{AtomicU64, Ordering};

/// How many pointer jumps each virtual thread performs per kernel launch —
/// the paper found 5 "empirically proves to be faster than synchronizing
/// after each parallel pointer jump".
const JUMPS_PER_SYNC: usize = 5;

/// Naïve GPU LCA: level preprocessing + per-query upward walks.
pub struct NaiveGpuLca<'d> {
    device: &'d Device,
    parent: Vec<NodeId>,
    level: Vec<u32>,
}

impl<'d> NaiveGpuLca<'d> {
    /// Preprocesses the tree (levels only) with the paper's default of
    /// five jumps per synchronization. Records the `lca.naive_levels`
    /// phase in the device metrics.
    pub fn preprocess(device: &'d Device, tree: &Tree) -> Self {
        Self::preprocess_with_jumps(device, tree, JUMPS_PER_SYNC)
    }

    /// Preprocesses with an explicit jumps-per-sync count — the ablation
    /// knob for the paper's "five jumps before synchronizing" optimization
    /// (`jumps = 1` recovers plain synchronous pointer doubling).
    ///
    /// # Panics
    /// Panics if `jumps == 0`.
    pub fn preprocess_with_jumps(device: &'d Device, tree: &Tree, jumps: usize) -> Self {
        assert!(jumps > 0, "at least one jump per round required");
        let _t = PhaseTimer::new(device.metrics(), "lca.naive_levels");
        let n = tree.num_nodes();
        let parent = tree.parent_slice().to_vec();
        let root = tree.root();

        // (ancestor, distance) packed in one u64 so racy five-jump rounds
        // read internally consistent pairs — the CUDA code gets the same
        // effect from naturally atomic 64-bit loads.
        let cells: Vec<AtomicU64> = (0..n)
            .map(|v| {
                let (anc, dist) = if v as NodeId == root {
                    (root, 0u32)
                } else {
                    (parent[v], 1u32)
                };
                AtomicU64::new(pack(anc, dist))
            })
            .collect();

        // Distances grow at least (jumps + 1)× per round (each read adds at
        // least the round-start minimum), so ⌈log₂ n⌉ + 2 rounds are a safe
        // upper bound for any jumps ≥ 1; the `done` flag exits far earlier.
        let rounds_bound = (usize::BITS - n.leading_zeros()) as usize + 2;
        for _ in 0..rounds_bound {
            let _k = device.kernel_label("naive_jump_round");
            let done = AtomicU64::new(1);
            let cells_ref = &cells;
            let done_ref = &done;
            device.for_each(n, |v| {
                let mut cur = cells_ref[v].load(Ordering::Relaxed);
                for _ in 0..jumps {
                    let (anc, dist) = unpack(cur);
                    if anc == root {
                        break;
                    }
                    let (anc2, dist2) = unpack(cells_ref[anc as usize].load(Ordering::Relaxed));
                    cur = pack(anc2, dist + dist2);
                }
                cells_ref[v].store(cur, Ordering::Relaxed);
                if unpack(cur).0 != root {
                    done_ref.store(0, Ordering::Relaxed);
                }
            });
            if done.load(Ordering::Relaxed) == 1 {
                break;
            }
        }

        let level: Vec<u32> = cells
            .iter()
            .map(|c| unpack(c.load(Ordering::Relaxed)).1)
            .collect();
        Self {
            device,
            parent,
            level,
        }
    }

    /// The computed levels (exposed for tests and the hybrid bridge
    /// algorithm).
    pub fn levels(&self) -> &[u32] {
        &self.level
    }

    #[inline]
    fn walk(&self, mut x: NodeId, mut y: NodeId) -> NodeId {
        // Lift the deeper endpoint.
        while self.level[x as usize] > self.level[y as usize] {
            x = self.parent[x as usize];
        }
        while self.level[y as usize] > self.level[x as usize] {
            y = self.parent[y as usize];
        }
        // Lockstep to the meeting point.
        while x != y {
            x = self.parent[x as usize];
            y = self.parent[y as usize];
        }
        x
    }
}

#[inline]
fn pack(anc: NodeId, dist: u32) -> u64 {
    ((anc as u64) << 32) | dist as u64
}

#[inline]
fn unpack(cell: u64) -> (NodeId, u32) {
    ((cell >> 32) as NodeId, cell as u32)
}

impl LcaAlgorithm for NaiveGpuLca<'_> {
    fn name(&self) -> &'static str {
        "GPU Naive"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        let _k = self.device.kernel_label("naive_query_batch");
        self.device.capture_read(queries);
        self.device.map(out, |q| {
            let (x, y) = queries[q];
            self.walk(x, y)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialInlabelLca;
    use graph_core::ids::INVALID_NODE;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parents, 0).unwrap()
    }

    #[test]
    fn levels_match_tree_depths() {
        let device = Device::new();
        let tree = random_tree(10_000, 3);
        let naive = NaiveGpuLca::preprocess(&device, &tree);
        for v in (0..10_000).step_by(97) {
            assert_eq!(naive.levels()[v] as usize, tree.depth_of(v as u32));
        }
    }

    #[test]
    fn levels_on_deep_path() {
        let device = Device::new();
        let n = 100_000;
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let naive = NaiveGpuLca::preprocess(&device, &tree);
        assert_eq!(naive.levels()[n - 1], n as u32 - 1);
        assert_eq!(naive.levels()[0], 0);
    }

    #[test]
    fn queries_match_inlabel() {
        let device = Device::new();
        let tree = random_tree(20_000, 8);
        let naive = NaiveGpuLca::preprocess(&device, &tree);
        let seq = SequentialInlabelLca::preprocess(&tree);

        let mut state = 5u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let queries: Vec<(u32, u32)> = (0..10_000)
            .map(|_| ((step() % 20_000) as u32, (step() % 20_000) as u32))
            .collect();
        let mut out_naive = vec![0u32; queries.len()];
        let mut out_seq = vec![0u32; queries.len()];
        naive.query_batch(&queries, &mut out_naive);
        seq.query_batch(&queries, &mut out_seq);
        assert_eq!(out_naive, out_seq);
    }

    #[test]
    fn jumps_ablation_agrees() {
        let device = Device::new();
        let tree = random_tree(30_000, 17);
        let five = NaiveGpuLca::preprocess(&device, &tree);
        for jumps in [1usize, 2, 5, 16] {
            let alt = NaiveGpuLca::preprocess_with_jumps(&device, &tree, jumps);
            assert_eq!(alt.levels(), five.levels(), "jumps={jumps}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one jump")]
    fn zero_jumps_rejected() {
        let device = Device::new();
        let tree = random_tree(10, 1);
        let _ = NaiveGpuLca::preprocess_with_jumps(&device, &tree, 0);
    }

    #[test]
    fn single_node() {
        let device = Device::new();
        let tree = Tree::from_parent_array(vec![INVALID_NODE], 0).unwrap();
        let naive = NaiveGpuLca::preprocess(&device, &tree);
        assert_eq!(naive.query(0, 0), 0);
    }
}
