//! Single-core CPU Inlabel — the paper's sequential baseline.

use crate::inlabel::InlabelTables;
use crate::LcaAlgorithm;
use euler_tour::cpu::sequential_stats;
use graph_core::Tree;

/// Sequential Schieber–Vishkin LCA: iterative-DFS preprocessing, one query
/// at a time.
#[derive(Debug, Clone)]
pub struct SequentialInlabelLca {
    tables: InlabelTables,
}

impl SequentialInlabelLca {
    /// Preprocesses `tree` on a single core.
    pub fn preprocess(tree: &Tree) -> Self {
        let stats = sequential_stats(tree);
        Self {
            tables: InlabelTables::from_stats_seq(&stats),
        }
    }

    /// The underlying tables.
    pub fn tables(&self) -> &InlabelTables {
        &self.tables
    }
}

impl LcaAlgorithm for SequentialInlabelLca {
    fn name(&self) -> &'static str {
        "Single-core CPU Inlabel"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        for (slot, &(x, y)) in out.iter_mut().zip(queries) {
            *slot = self.tables.query(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LcaAlgorithm;
    use graph_core::ids::INVALID_NODE;

    #[test]
    fn paper_tree_queries() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 2, 0, 0, 0, 2], 0).unwrap();
        let lca = SequentialInlabelLca::preprocess(&tree);
        assert_eq!(lca.query(1, 5), 2);
        assert_eq!(lca.query(1, 2), 2);
        assert_eq!(lca.query(3, 4), 0);
        assert_eq!(lca.query(1, 4), 0);
        assert_eq!(lca.query(5, 5), 5);
    }

    #[test]
    fn batch_matches_singles() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 0, 0, 1, 1, 2, 2, 3], 0).unwrap();
        let lca = SequentialInlabelLca::preprocess(&tree);
        let queries: Vec<(u32, u32)> = (0..8u32)
            .flat_map(|x| (0..8u32).map(move |y| (x, y)))
            .collect();
        let mut out = vec![0u32; queries.len()];
        lca.query_batch(&queries, &mut out);
        for (i, &(x, y)) in queries.iter().enumerate() {
            assert_eq!(out[i], lca.query(x, y));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_output_panics() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 0], 0).unwrap();
        let lca = SequentialInlabelLca::preprocess(&tree);
        let mut out = vec![0u32; 1];
        lca.query_batch(&[(0, 1), (1, 1)], &mut out);
    }
}
