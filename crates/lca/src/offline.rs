//! Tarjan's offline LCA — the classical answer to the batching question of
//! the paper's Figure 6.
//!
//! The paper's §3.3 "Batch Size" experiment studies *online* algorithms
//! fed queries in batches: preprocessing happens before any query is
//! known. When the entire query set is available up front there is a
//! third design point the paper does not evaluate: Tarjan's offline
//! algorithm answers all q queries in a single DFS with a union-find —
//! O((n + q)·α(n)) total, no per-query tables at all. It is inherently
//! sequential (one DFS), so it bounds what a *single core with full
//! knowledge* can do: the break-even against parallel online algorithms
//! is exactly what `--bin fig6` reports as the offline reference line.

use graph_core::ids::NodeId;
use graph_core::Tree;

/// Union-find with path halving and union by rank.
struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// The answer-carrying node of each set: the subtree root whose DFS is
    /// currently open (the "ancestor" array of Tarjan's algorithm).
    ancestor: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            ancestor: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut v: u32) -> u32 {
        loop {
            let p = self.parent[v as usize];
            if p == v {
                return v;
            }
            let gp = self.parent[p as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
    }

    /// Unions the sets of `child` and `into`, keeping `anc` as the set's
    /// ancestor marker.
    fn union(&mut self, child: u32, into: u32, anc: u32) {
        let (a, b) = (self.find(child), self.find(into));
        if a == b {
            return;
        }
        let root = match self.rank[a as usize].cmp(&self.rank[b as usize]) {
            std::cmp::Ordering::Less => {
                self.parent[a as usize] = b;
                b
            }
            std::cmp::Ordering::Greater => {
                self.parent[b as usize] = a;
                a
            }
            std::cmp::Ordering::Equal => {
                self.parent[a as usize] = b;
                self.rank[b as usize] += 1;
                b
            }
        };
        self.ancestor[root as usize] = anc;
    }
}

/// Answers all `queries` with Tarjan's offline algorithm: one iterative
/// DFS over `tree`, a union-find, and per-node query buckets.
///
/// # Panics
/// Panics if a query endpoint is out of range.
pub fn offline_tarjan_lca(tree: &Tree, queries: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    let n = tree.num_nodes();
    let q = queries.len();

    // Children adjacency.
    let mut child_count = vec![0u32; n];
    for v in 0..n as u32 {
        if let Some(p) = tree.parent(v) {
            child_count[p as usize] += 1;
        }
    }
    let mut child_off = vec![0u32; n + 1];
    for v in 0..n {
        child_off[v + 1] = child_off[v] + child_count[v];
    }
    let mut cursor = child_off.clone();
    let mut children = vec![0u32; n.saturating_sub(1)];
    for v in 0..n as u32 {
        if let Some(p) = tree.parent(v) {
            children[cursor[p as usize] as usize] = v;
            cursor[p as usize] += 1;
        }
    }

    // Query buckets: each query hangs off both endpoints (CSR-style).
    let mut qcount = vec![0u32; n];
    for &(x, y) in queries {
        assert!((x as usize) < n && (y as usize) < n, "query out of range");
        qcount[x as usize] += 1;
        qcount[y as usize] += 1;
    }
    let mut qoff = vec![0u32; n + 1];
    for v in 0..n {
        qoff[v + 1] = qoff[v] + qcount[v];
    }
    let mut qcursor = qoff.clone();
    let mut qids = vec![0u32; 2 * q];
    for (i, &(x, y)) in queries.iter().enumerate() {
        for v in [x, y] {
            qids[qcursor[v as usize] as usize] = i as u32;
            qcursor[v as usize] += 1;
        }
    }

    let mut dsu = Dsu::new(n);
    let mut visited = vec![false; n];
    let mut closed = vec![false; n];
    let mut answers = vec![0u32; q];

    // Iterative post-order DFS: (node, next-child index).
    let mut stack: Vec<(u32, u32)> = vec![(tree.root(), 0)];
    while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
        if *ci == 0 {
            visited[v as usize] = true;
            // Resolve queries whose partner's subtree is already closed
            // (or whose partner is an open ancestor — then find() is that
            // ancestor itself).
            for &qi in &qids[qoff[v as usize] as usize..qoff[v as usize + 1] as usize] {
                let (x, y) = queries[qi as usize];
                let other = if x == v { y } else { x };
                if other == v {
                    answers[qi as usize] = v;
                } else if closed[other as usize] || visited[other as usize] {
                    let root = dsu.find(other);
                    answers[qi as usize] = dsu.ancestor[root as usize];
                }
            }
        }
        let s = child_off[v as usize];
        let e = child_off[v as usize + 1];
        if s + *ci < e {
            let c = children[(s + *ci) as usize];
            *ci += 1;
            stack.push((c, 0));
        } else {
            stack.pop();
            closed[v as usize] = true;
            if let Some(&(p, _)) = stack.last() {
                dsu.union(v, p, p);
            }
        }
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialInlabelLca;
    use crate::LcaAlgorithm;
    use graph_core::ids::INVALID_NODE;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parents, 0).unwrap()
    }

    #[test]
    fn matches_inlabel_on_random_trees() {
        for (n, seed) in [(2usize, 5u64), (30, 6), (1000, 7), (10_000, 8)] {
            let tree = random_tree(n, seed);
            let oracle = SequentialInlabelLca::preprocess(&tree);
            let mut state = seed + 1;
            let mut step = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            };
            let queries: Vec<(u32, u32)> = (0..3000)
                .map(|_| ((step() % n as u64) as u32, (step() % n as u64) as u32))
                .collect();
            let got = offline_tarjan_lca(&tree, &queries);
            let mut expect = vec![0u32; queries.len()];
            oracle.query_batch(&queries, &mut expect);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn self_queries_and_root() {
        let tree = random_tree(100, 9);
        let queries = vec![(5, 5), (0, 17), (17, 0), (99, 99)];
        let got = offline_tarjan_lca(&tree, &queries);
        assert_eq!(got[0], 5);
        assert_eq!(got[1], 0);
        assert_eq!(got[2], 0);
        assert_eq!(got[3], 99);
    }

    #[test]
    fn path_tree_answers_are_minima() {
        let n = 400;
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let queries: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let got = offline_tarjan_lca(&tree, &queries);
        for (i, &a) in got.iter().enumerate() {
            assert_eq!(a, i as u32);
        }
    }

    #[test]
    fn duplicate_and_symmetric_queries() {
        let tree = random_tree(500, 10);
        let oracle = SequentialInlabelLca::preprocess(&tree);
        let queries = vec![(3, 400), (400, 3), (3, 400), (123, 321)];
        let got = offline_tarjan_lca(&tree, &queries);
        assert_eq!(got[0], got[1]);
        assert_eq!(got[0], got[2]);
        assert_eq!(got[0], oracle.query(3, 400));
    }

    #[test]
    fn empty_query_set() {
        let tree = random_tree(10, 11);
        assert!(offline_tarjan_lca(&tree, &[]).is_empty());
    }

    #[test]
    fn single_node_tree() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE], 0).unwrap();
        assert_eq!(offline_tarjan_lca(&tree, &[(0, 0)]), vec![0]);
    }
}
