//! Sparse-table and block-decomposed ±1 RMQ LCA — the *full*
//! Bender–Farach-Colton construction.
//!
//! The paper's §3.1 preliminary baseline deliberately uses "a variant of
//! \[9\], using a segment tree and **without the preprocessed lookup tables
//! for all short sequences**" ([`crate::RmqLca`]). This module supplies the
//! variants that preliminary experiment left out, completing the RMQ side
//! of the design space:
//!
//! * [`SparseRmqLca`] — a sparse table over the Euler walk: O(n log n)
//!   preprocessing, true O(1) queries (two table probes);
//! * [`BlockRmqLca`] — the full Bender–Farach ±1 RMQ: the walk is cut into
//!   blocks of ½·log₂ n, in-block queries hit a lookup table indexed by the
//!   block's ±1 *signature* (adjacent walk depths differ by exactly one, so
//!   a (b−1)-bit pattern determines the block's shape), and a sparse table
//!   over per-block minima covers the middle — O(n) preprocessing, O(1)
//!   queries.
//!
//! Both are sequential CPU structures, like the baselines of §3.1; the
//! device-parallel sparse-table variant lives in [`crate::gpu_rmq`].

use crate::rmq::{euler_walk, EulerWalk};
use crate::LcaAlgorithm;
use graph_core::ids::NodeId;
use graph_core::Tree;

/// Position of the min-depth entry among `a` and `b` (ties to the left —
/// callers only need *a* minimum, and leftmost keeps tests deterministic).
#[inline]
fn min_pos(depth: &[u32], a: u32, b: u32) -> u32 {
    if depth[b as usize] < depth[a as usize] {
        b
    } else {
        a
    }
}

/// Builds a sparse table of range-min *positions* over `depth`:
/// `table[k][i]` = position of the minimum in `[i, i + 2^k)`.
fn build_sparse(depth: &[u32]) -> Vec<Vec<u32>> {
    let len = depth.len();
    let levels = usize::BITS as usize - (len.max(1)).leading_zeros() as usize;
    let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
    table.push((0..len as u32).collect());
    let mut width = 1usize;
    while 2 * width <= len {
        let prev = table.last().unwrap();
        let row: Vec<u32> = (0..len - 2 * width + 1)
            .map(|i| min_pos(depth, prev[i], prev[i + width]))
            .collect();
        table.push(row);
        width *= 2;
    }
    table
}

/// O(1) range-min position query over a sparse table (inclusive `[l, r]`).
#[inline]
fn sparse_query(table: &[Vec<u32>], depth: &[u32], l: usize, r: usize) -> u32 {
    debug_assert!(l <= r);
    let k = (usize::BITS - 1 - (r - l + 1).leading_zeros()) as usize;
    min_pos(depth, table[k][l], table[k][r + 1 - (1 << k)])
}

/// Sparse-table RMQ LCA: O(n log n) preprocessing, O(1) queries.
#[derive(Debug, Clone)]
pub struct SparseRmqLca {
    euler: Vec<NodeId>,
    depth: Vec<u32>,
    first: Vec<u32>,
    table: Vec<Vec<u32>>,
}

impl SparseRmqLca {
    /// Preprocesses `tree` sequentially.
    pub fn preprocess(tree: &Tree) -> Self {
        let EulerWalk {
            euler,
            depth,
            first,
        } = euler_walk(tree);
        let table = build_sparse(&depth);
        Self {
            euler,
            depth,
            first,
            table,
        }
    }
}

impl LcaAlgorithm for SparseRmqLca {
    fn name(&self) -> &'static str {
        "Single-core CPU sparse RMQ"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        for (slot, &(x, y)) in out.iter_mut().zip(queries) {
            let (mut l, mut r) = (self.first[x as usize], self.first[y as usize]);
            if l > r {
                std::mem::swap(&mut l, &mut r);
            }
            let pos = sparse_query(&self.table, &self.depth, l as usize, r as usize);
            *slot = self.euler[pos as usize];
        }
    }
}

/// The full Bender–Farach-Colton ±1 RMQ LCA: O(n) preprocessing, O(1)
/// queries via per-signature in-block lookup tables.
#[derive(Debug, Clone)]
pub struct BlockRmqLca {
    euler: Vec<NodeId>,
    depth: Vec<u32>,
    first: Vec<u32>,
    /// Block size `b ≈ ½·log₂(2n)`.
    block: usize,
    /// ±1 signature of each block (bit `j` set ⇔ depth rises at step `j`).
    signatures: Vec<u32>,
    /// Global position of each block's minimum (over its real prefix).
    block_min_pos: Vec<u32>,
    /// Depth at each block's minimum (level-0 data for the sparse table).
    block_min_depth: Vec<u32>,
    /// Sparse table of block-index minima over `block_min_depth`.
    block_table: Vec<Vec<u32>>,
    /// `in_block[sig·b² + l·b + r]` = offset of the minimum in `[l, r]` of a
    /// block shaped `sig`.
    in_block: Vec<u8>,
}

impl BlockRmqLca {
    /// Preprocesses `tree` sequentially in O(n) time.
    pub fn preprocess(tree: &Tree) -> Self {
        let EulerWalk {
            euler,
            depth,
            first,
        } = euler_walk(tree);
        let len = depth.len();
        // b = ½·log₂(len), clamped: at most 8 signature bits keeps the
        // lookup table at 2⁸·9² < 21K entries while b ≤ 9 stays optimal for
        // any input that fits in memory.
        let block = ((usize::BITS - len.leading_zeros()) as usize / 2).clamp(1, 9);
        let num_blocks = len.div_ceil(block);

        // In-block lookup tables for every possible signature. A signature
        // has block−1 bits; padded steps (beyond the real sequence) are
        // "rise" bits, which never create new minima to the right.
        let sigs = 1usize << (block - 1);
        let mut in_block = vec![0u8; sigs * block * block];
        let mut d = vec![0i32; block];
        for sig in 0..sigs {
            for j in 1..block {
                d[j] = d[j - 1] + if sig >> (j - 1) & 1 == 1 { 1 } else { -1 };
            }
            let base = sig * block * block;
            for l in 0..block {
                let mut best = l;
                for r in l..block {
                    if d[r] < d[best] {
                        best = r;
                    }
                    in_block[base + l * block + r] = best as u8;
                }
            }
        }

        // Per-block signatures and minima (over real positions only).
        let mut signatures = vec![0u32; num_blocks];
        let mut block_min_pos = vec![0u32; num_blocks];
        let mut block_min_depth = vec![0u32; num_blocks];
        for blk in 0..num_blocks {
            let lo = blk * block;
            let hi = usize::min(lo + block, len);
            let mut sig = 0u32;
            for j in 1..block {
                // Padded steps rise.
                if lo + j >= len || depth[lo + j] > depth[lo + j - 1] {
                    sig |= 1 << (j - 1);
                }
            }
            signatures[blk] = sig;
            let mut best = lo;
            for p in lo + 1..hi {
                if depth[p] < depth[best] {
                    best = p;
                }
            }
            block_min_pos[blk] = best as u32;
            block_min_depth[blk] = depth[best];
        }
        let block_table = build_sparse(&block_min_depth);

        Self {
            euler,
            depth,
            first,
            block,
            signatures,
            block_min_pos,
            block_min_depth,
            block_table,
            in_block,
        }
    }

    /// Offset of the min within block `blk`, range `[l, r]` (block-local).
    #[inline]
    fn in_block_query(&self, blk: usize, l: usize, r: usize) -> usize {
        let b = self.block;
        let base = self.signatures[blk] as usize * b * b;
        blk * b + self.in_block[base + l * b + r] as usize
    }

    /// Global position of the minimum depth in `[l, r]` (inclusive).
    fn range_min_pos(&self, l: usize, r: usize) -> usize {
        let b = self.block;
        let (bl, br) = (l / b, r / b);
        if bl == br {
            return self.in_block_query(bl, l % b, r % b);
        }
        // Suffix of bl (bl < br, so bl is a full block) + prefix of br.
        let mut best = self.in_block_query(bl, l % b, b - 1);
        let right = self.in_block_query(br, 0, r % b);
        if self.depth[right] < self.depth[best] {
            best = right;
        }
        if bl + 1 < br {
            let mid_blk = sparse_query(&self.block_table, &self.block_min_depth, bl + 1, br - 1);
            let mid = self.block_min_pos[mid_blk as usize] as usize;
            if self.depth[mid] < self.depth[best] {
                best = mid;
            }
        }
        best
    }
}

impl LcaAlgorithm for BlockRmqLca {
    fn name(&self) -> &'static str {
        "Single-core CPU block RMQ"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        for (slot, &(x, y)) in out.iter_mut().zip(queries) {
            let (mut l, mut r) = (self.first[x as usize], self.first[y as usize]);
            if l > r {
                std::mem::swap(&mut l, &mut r);
            }
            *slot = self.euler[self.range_min_pos(l as usize, r as usize)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialInlabelLca;
    use graph_core::ids::INVALID_NODE;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parents, 0).unwrap()
    }

    fn check_all_variants(tree: &Tree, queries: usize, seed: u64) {
        let n = tree.num_nodes();
        let oracle = SequentialInlabelLca::preprocess(tree);
        let sparse = SparseRmqLca::preprocess(tree);
        let block = BlockRmqLca::preprocess(tree);
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..queries {
            let x = (step() % n as u64) as u32;
            let y = (step() % n as u64) as u32;
            let expect = oracle.query(x, y);
            assert_eq!(sparse.query(x, y), expect, "sparse ({x},{y})");
            assert_eq!(block.query(x, y), expect, "block ({x},{y})");
        }
    }

    #[test]
    fn sparse_table_rows_shrink_by_doubling_windows() {
        let depth = [0u32, 1, 2, 1, 0, 1, 0];
        let table = build_sparse(&depth);
        assert_eq!(table[0].len(), 7);
        assert_eq!(table[1].len(), 6);
        assert_eq!(table[2].len(), 4);
        assert_eq!(table.len(), 3);
        // Whole range: minimum is at position 0 (leftmost tie).
        assert_eq!(sparse_query(&table, &depth, 0, 6), 0);
        // [1, 3] holds depths 1, 2, 1 — the leftmost minimum wins.
        assert_eq!(sparse_query(&table, &depth, 1, 3), 1);
        assert_eq!(sparse_query(&table, &depth, 5, 5), 5);
    }

    #[test]
    fn random_trees_match_inlabel() {
        for (n, seed) in [(2usize, 1u64), (3, 2), (10, 3), (500, 4), (5000, 5)] {
            check_all_variants(&random_tree(n, seed), 2000, seed + 100);
        }
    }

    #[test]
    fn path_tree_lca_is_min() {
        let n = 777;
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let sparse = SparseRmqLca::preprocess(&tree);
        let block = BlockRmqLca::preprocess(&tree);
        for x in (0..n as u32).step_by(31) {
            for y in (0..n as u32).step_by(41) {
                assert_eq!(sparse.query(x, y), x.min(y));
                assert_eq!(block.query(x, y), x.min(y));
            }
        }
    }

    #[test]
    fn star_tree_lca_is_center_or_self() {
        let n = 1000;
        let mut parents = vec![0u32; n];
        parents[0] = INVALID_NODE;
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let block = BlockRmqLca::preprocess(&tree);
        assert_eq!(block.query(5, 9), 0);
        assert_eq!(block.query(7, 7), 7);
        assert_eq!(block.query(0, 3), 0);
    }

    #[test]
    fn single_node_tree() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE], 0).unwrap();
        assert_eq!(SparseRmqLca::preprocess(&tree).query(0, 0), 0);
        assert_eq!(BlockRmqLca::preprocess(&tree).query(0, 0), 0);
    }

    #[test]
    fn two_node_tree() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 0], 0).unwrap();
        let block = BlockRmqLca::preprocess(&tree);
        assert_eq!(block.query(0, 1), 0);
        assert_eq!(block.query(1, 1), 1);
    }

    #[test]
    fn block_size_is_clamped() {
        // Huge-n formula would want b > 9; the clamp keeps the signature
        // table bounded. Just verify correctness on a tree big enough to
        // exercise multi-level block tables.
        let tree = random_tree(20_000, 42);
        check_all_variants(&tree, 3000, 4242);
    }

    #[test]
    fn deep_caterpillar() {
        // Spine with a leaf at every spine node: first occurrences spread
        // across blocks in both directions.
        let spine = 400usize;
        let mut parents = vec![INVALID_NODE; 2 * spine];
        for (v, p) in parents.iter_mut().enumerate().skip(1).take(spine - 1) {
            *p = v as u32 - 1;
        }
        for leaf in 0..spine {
            parents[spine + leaf] = leaf as u32;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        check_all_variants(&tree, 4000, 7);
    }
}
