//! GPU RMQ LCA — Euler-tour preprocessing plus a device-built sparse table
//! with O(1) per-thread queries.
//!
//! The paper's related work singles out Soman et al. \[55\] as the only GPU
//! alternative to the naïve walker: an RMQ-based LCA whose preprocessing is
//! "assumed already done". This module supplies the missing piece with the
//! same substrate the Inlabel implementation uses — the Euler tour
//! technique — making the comparison fair end-to-end:
//!
//! 1. the edge-level tour (one list ranking) yields the node-level Euler
//!    walk (`2n − 1` node visits) and each node's first occurrence, all as
//!    array kernels;
//! 2. a sparse table over walk depths is built level by level — O(n log n)
//!    work, O(log n) launches — trading the Inlabel preprocessing's strict
//!    O(n) work for a simpler, branch-free query;
//! 3. each query is two table probes in one kernel thread, exactly like the
//!    Inlabel query kernel.

use crate::LcaAlgorithm;
use euler_tour::{twin, EulerTour, TourError, TreeStats};
use gpu_sim::Device;
use graph_core::ids::NodeId;
use graph_core::Tree;

/// Device-parallel sparse-table RMQ LCA.
pub struct GpuRmqLca<'d> {
    device: &'d Device,
    /// Node at each walk position (length `2n − 1`).
    euler: Vec<NodeId>,
    /// Depth at each walk position.
    depth: Vec<u32>,
    /// First walk position of each node.
    first: Vec<u32>,
    /// `table[k][i]` = position of the min depth in `[i, i + 2^k)`.
    table: Vec<Vec<u32>>,
}

impl<'d> GpuRmqLca<'d> {
    /// Preprocesses `tree` on the device.
    ///
    /// # Errors
    /// Propagates [`TourError`] from the Euler tour construction.
    pub fn preprocess(device: &'d Device, tree: &Tree) -> Result<Self, TourError> {
        let n = tree.num_nodes();
        let tour = EulerTour::build(device, tree)?;
        let stats = TreeStats::compute(device, &tour);
        let level = &stats.level;

        // Node-level walk from the edge-level tour: the walk starts at the
        // root and then visits the head of every tour edge in order.
        let walk_len = 2 * n - 1;
        let heads = &tour.dcel().heads;
        let order = tour.order();
        let root = tour.root();
        let euler = device.alloc_map(walk_len, |p| {
            if p == 0 {
                root
            } else {
                heads[order[p - 1] as usize]
            }
        });
        let depth = device.alloc_map(walk_len, |p| level[euler[p] as usize]);

        // First occurrence: the root sits at position 0; every other node is
        // first entered through its unique down edge, one write per node.
        let mut first = vec![0u32; n];
        {
            let _k = device.kernel_label("rmq_first_occurrence");
            // Each non-root node has exactly one down edge.
            let shared = device.shared(&mut first);
            let rank = tour.rank();
            device.for_each(tour.len(), |e| {
                let e = e as u32;
                if rank[e as usize] < rank[twin(e) as usize] {
                    shared.write(heads[e as usize] as usize, rank[e as usize] + 1);
                }
            });
        }

        // Sparse table, one kernel launch per level.
        let levels = usize::BITS as usize - walk_len.leading_zeros() as usize;
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push(device.alloc_map(walk_len, |i| i as u32));
        let mut width = 1usize;
        while 2 * width <= walk_len {
            let prev = table.last().unwrap();
            let depth_ref = &depth;
            let row = device.alloc_map(walk_len - 2 * width + 1, |i| {
                let (a, b) = (prev[i], prev[i + width]);
                if depth_ref[b as usize] < depth_ref[a as usize] {
                    b
                } else {
                    a
                }
            });
            table.push(row);
            width *= 2;
        }

        Ok(Self {
            device,
            euler,
            depth,
            first,
            table,
        })
    }

    /// O(1) single-query resolution (two probes), callable from any thread.
    #[inline]
    fn resolve(&self, x: u32, y: u32) -> u32 {
        let (mut l, mut r) = (self.first[x as usize], self.first[y as usize]);
        if l > r {
            std::mem::swap(&mut l, &mut r);
        }
        let (l, r) = (l as usize, r as usize);
        let k = (usize::BITS - 1 - (r - l + 1).leading_zeros()) as usize;
        let (a, b) = (self.table[k][l], self.table[k][r + 1 - (1 << k)]);
        let pos = if self.depth[b as usize] < self.depth[a as usize] {
            b
        } else {
            a
        };
        self.euler[pos as usize]
    }
}

impl LcaAlgorithm for GpuRmqLca<'_> {
    fn name(&self) -> &'static str {
        "GPU RMQ"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        let _k = self.device.kernel_label("rmq_query_batch");
        self.device.capture_read(queries);
        self.device.map(out, |i| {
            let (x, y) = queries[i];
            self.resolve(x, y)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialInlabelLca;
    use graph_core::ids::INVALID_NODE;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parents, 0).unwrap()
    }

    #[test]
    fn matches_inlabel_on_random_trees() {
        let device = Device::new();
        for (n, seed) in [(2usize, 8u64), (50, 9), (2000, 10), (20_000, 11)] {
            let tree = random_tree(n, seed);
            let gpu = GpuRmqLca::preprocess(&device, &tree).unwrap();
            let oracle = SequentialInlabelLca::preprocess(&tree);
            let mut state = seed + 5;
            let mut step = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            };
            let queries: Vec<(u32, u32)> = (0..5000)
                .map(|_| ((step() % n as u64) as u32, (step() % n as u64) as u32))
                .collect();
            let mut got = vec![0u32; queries.len()];
            gpu.query_batch(&queries, &mut got);
            let mut expect = vec![0u32; queries.len()];
            oracle.query_batch(&queries, &mut expect);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn walk_first_positions_are_consistent() {
        let device = Device::new();
        let tree = random_tree(500, 77);
        let gpu = GpuRmqLca::preprocess(&device, &tree).unwrap();
        // first[v] is indeed the earliest occurrence of v on the walk.
        for (p, &v) in gpu.euler.iter().enumerate() {
            assert!(gpu.first[v as usize] as usize <= p);
        }
        for v in 0..500 {
            assert_eq!(gpu.euler[gpu.first[v] as usize], v as u32);
        }
    }

    #[test]
    fn single_node_tree() {
        let device = Device::new();
        let tree = Tree::from_parent_array(vec![INVALID_NODE], 0).unwrap();
        let gpu = GpuRmqLca::preprocess(&device, &tree).unwrap();
        assert_eq!(gpu.query(0, 0), 0);
    }

    #[test]
    fn path_tree() {
        let device = Device::new();
        let n = 1024;
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let gpu = GpuRmqLca::preprocess(&device, &tree).unwrap();
        for (x, y, e) in [(0u32, 1023u32, 0u32), (512, 700, 512), (5, 5, 5)] {
            assert_eq!(gpu.query(x, y), e);
        }
    }
}
