//! Tree path queries on top of LCA: distances, level ancestors, and k-th
//! nodes on paths.
//!
//! The paper motivates LCA with phylogenetic distance computation \[38\] —
//! but a distance needs more than the ancestor itself: `dist(x, y) =
//! level(x) + level(y) − 2·level(lca(x, y))`, and applications then ask
//! for the node *k steps along* the path. This module packages those
//! queries: Euler-tour preprocessing supplies levels, the Inlabel tables
//! give O(1) LCA, and a device-built jump-pointer table (the same
//! pointer-doubling idea the naïve algorithm's preprocessing uses, kept
//! this time) answers k-th-ancestor in O(log n).

use crate::inlabel::InlabelTables;
use euler_tour::{EulerTour, TourError, TreeStats};
use gpu_sim::Device;
use graph_core::ids::{NodeId, INVALID_NODE};
use graph_core::Tree;

/// Preprocessed structure for LCA, distance and path-position queries.
pub struct TreePaths<'d> {
    device: &'d Device,
    tables: InlabelTables,
    level: Vec<u32>,
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (`INVALID_NODE` if none).
    up: Vec<Vec<NodeId>>,
}

impl<'d> TreePaths<'d> {
    /// Preprocesses `tree` on the device: Euler tour statistics, Inlabel
    /// tables, and `⌈log₂(depth)⌉ + 1` jump-pointer levels.
    ///
    /// # Errors
    /// Propagates [`TourError`] from the Euler tour construction.
    pub fn preprocess(device: &'d Device, tree: &Tree) -> Result<Self, TourError> {
        let tour = EulerTour::build(device, tree)?;
        let stats = TreeStats::compute(device, &tour);
        let tables = InlabelTables::from_stats_device(device, &stats);
        let n = stats.preorder.len();
        let max_level = stats.level.iter().copied().max().unwrap_or(0);
        let levels = if max_level == 0 {
            1
        } else {
            (u32::BITS - max_level.leading_zeros()) as usize + 1
        };
        let mut up: Vec<Vec<NodeId>> = Vec::with_capacity(levels);
        up.push(stats.parent.clone());
        for k in 1..levels {
            let _k = device.kernel_label("paths_up_table_level");
            let prev = &up[k - 1];
            device.capture_read(&prev[..]);
            let row = device.alloc_map(n, |v| {
                let half = prev[v];
                if half == INVALID_NODE {
                    INVALID_NODE
                } else {
                    prev[half as usize]
                }
            });
            up.push(row);
        }
        Ok(Self {
            device,
            tables,
            level: stats.level,
            up,
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.level.len()
    }

    /// Depth of `v` (root = 0).
    pub fn level(&self, v: NodeId) -> u32 {
        self.level[v as usize]
    }

    /// O(1) lowest common ancestor.
    pub fn lca(&self, x: NodeId, y: NodeId) -> NodeId {
        self.tables.query(x, y)
    }

    /// Number of edges on the `x`–`y` path.
    pub fn distance(&self, x: NodeId, y: NodeId) -> u32 {
        let l = self.lca(x, y);
        self.level[x as usize] + self.level[y as usize] - 2 * self.level[l as usize]
    }

    /// The ancestor `k` levels above `v`, or `None` when `k > level(v)`.
    pub fn kth_ancestor(&self, v: NodeId, k: u32) -> Option<NodeId> {
        if k > self.level[v as usize] {
            return None;
        }
        let mut cur = v;
        let mut remaining = k;
        let mut bit = 0;
        while remaining > 0 {
            if remaining & 1 == 1 {
                cur = self.up[bit][cur as usize];
                debug_assert_ne!(cur, INVALID_NODE);
            }
            remaining >>= 1;
            bit += 1;
        }
        Some(cur)
    }

    /// Whether `a` is an ancestor of `v` (every node is its own ancestor).
    pub fn is_ancestor(&self, a: NodeId, v: NodeId) -> bool {
        let (la, lv) = (self.level[a as usize], self.level[v as usize]);
        la <= lv && self.kth_ancestor(v, lv - la) == Some(a)
    }

    /// The `k`-th node on the path from `x` to `y` (`k = 0` is `x`, `k =
    /// distance(x, y)` is `y`), or `None` when `k` exceeds the path length.
    pub fn kth_on_path(&self, x: NodeId, y: NodeId, k: u32) -> Option<NodeId> {
        let l = self.lca(x, y);
        let up_len = self.level[x as usize] - self.level[l as usize];
        let down_len = self.level[y as usize] - self.level[l as usize];
        if k > up_len + down_len {
            return None;
        }
        if k <= up_len {
            self.kth_ancestor(x, k)
        } else {
            self.kth_ancestor(y, up_len + down_len - k)
        }
    }

    /// Batched distances, one device thread per query.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len()`.
    pub fn distance_batch(&self, queries: &[(NodeId, NodeId)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        let tables = &self.tables;
        let level = &self.level;
        let _k = self.device.kernel_label("paths_distance_batch");
        self.device.capture_read(queries);
        self.device.map(out, |i| {
            let (x, y) = queries[i];
            let l = tables.query(x, y);
            level[x as usize] + level[y as usize] - 2 * level[l as usize]
        });
    }

    /// The full node sequence of the `x`–`y` path (O(path length)).
    pub fn path(&self, x: NodeId, y: NodeId) -> Vec<NodeId> {
        let l = self.lca(x, y);
        let mut front = Vec::new();
        let mut cur = x;
        while cur != l {
            front.push(cur);
            cur = self.up[0][cur as usize];
        }
        front.push(l);
        let mut back = Vec::new();
        let mut cur = y;
        while cur != l {
            back.push(cur);
            cur = self.up[0][cur as usize];
        }
        front.extend(back.into_iter().rev());
        front
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parents, 0).unwrap()
    }

    /// Oracle: path via parent walks and marking.
    fn brute_path(tree: &Tree, x: u32, y: u32) -> Vec<u32> {
        let to_root = |mut v: u32| {
            let mut p = vec![v];
            while let Some(q) = tree.parent(v) {
                p.push(q);
                v = q;
            }
            p
        };
        let px = to_root(x);
        let py = to_root(y);
        // Find the first common node.
        let set: std::collections::HashSet<u32> = py.iter().copied().collect();
        let mut front = Vec::new();
        let mut meet = 0;
        for &v in &px {
            front.push(v);
            if set.contains(&v) {
                meet = v;
                break;
            }
        }
        let tail: Vec<u32> = py.iter().copied().take_while(|&v| v != meet).collect();
        front.extend(tail.into_iter().rev());
        front
    }

    #[test]
    fn distances_and_paths_match_brute_force() {
        let device = Device::new();
        for (n, seed) in [(2usize, 1u64), (30, 2), (1000, 3)] {
            let tree = random_tree(n, seed);
            let paths = TreePaths::preprocess(&device, &tree).unwrap();
            let mut state = seed + 7;
            let mut step = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            };
            for _ in 0..300 {
                let x = (step() % n as u64) as u32;
                let y = (step() % n as u64) as u32;
                let expect = brute_path(&tree, x, y);
                assert_eq!(paths.distance(x, y) as usize, expect.len() - 1, "({x},{y})");
                assert_eq!(paths.path(x, y), expect, "({x},{y})");
                // Every position on the path is found by kth_on_path.
                for (k, &node) in expect.iter().enumerate() {
                    assert_eq!(paths.kth_on_path(x, y, k as u32), Some(node));
                }
                assert_eq!(paths.kth_on_path(x, y, expect.len() as u32), None);
            }
        }
    }

    #[test]
    fn kth_ancestor_walks_parents() {
        let device = Device::new();
        let tree = random_tree(500, 11);
        let paths = TreePaths::preprocess(&device, &tree).unwrap();
        for v in (0..500u32).step_by(13) {
            let mut cur = Some(v);
            let mut k = 0;
            while let Some(c) = cur {
                assert_eq!(paths.kth_ancestor(v, k), Some(c));
                cur = tree.parent(c);
                k += 1;
            }
            assert_eq!(paths.kth_ancestor(v, k), None);
        }
    }

    #[test]
    fn is_ancestor_consistency() {
        let device = Device::new();
        let tree = random_tree(300, 13);
        let paths = TreePaths::preprocess(&device, &tree).unwrap();
        for v in 0..300u32 {
            assert!(paths.is_ancestor(0, v), "root above all");
            assert!(paths.is_ancestor(v, v), "self-ancestor");
            if let Some(p) = tree.parent(v) {
                assert!(paths.is_ancestor(p, v));
                assert!(!paths.is_ancestor(v, p));
            }
        }
    }

    #[test]
    fn distance_batch_matches_scalar() {
        let device = Device::new();
        let n = 4000;
        let tree = random_tree(n, 17);
        let paths = TreePaths::preprocess(&device, &tree).unwrap();
        let queries: Vec<(u32, u32)> = (0..5000u64)
            .map(|i| {
                let a = (i.wrapping_mul(2654435761) % n as u64) as u32;
                let b = (i.wrapping_mul(40503) % n as u64) as u32;
                (a, b)
            })
            .collect();
        let mut batch = vec![0u32; queries.len()];
        paths.distance_batch(&queries, &mut batch);
        for (i, &(x, y)) in queries.iter().enumerate() {
            assert_eq!(batch[i], paths.distance(x, y));
        }
    }

    #[test]
    fn path_tree_geometry() {
        let device = Device::new();
        let n = 200;
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let paths = TreePaths::preprocess(&device, &tree).unwrap();
        assert_eq!(paths.distance(0, 199), 199);
        assert_eq!(paths.distance(50, 150), 100);
        assert_eq!(paths.kth_on_path(50, 150, 0), Some(50));
        // The path from 50 to 150 runs through their LCA (node 50) then
        // descends: position k is node 50 + k.
        assert_eq!(paths.kth_on_path(50, 150, 60), Some(110));
        assert_eq!(paths.lca(50, 150), 50);
    }

    #[test]
    fn single_node_tree() {
        let device = Device::new();
        let tree = Tree::from_parent_array(vec![INVALID_NODE], 0).unwrap();
        let paths = TreePaths::preprocess(&device, &tree).unwrap();
        assert_eq!(paths.distance(0, 0), 0);
        assert_eq!(paths.path(0, 0), vec![0]);
        assert_eq!(paths.kth_ancestor(0, 0), Some(0));
        assert_eq!(paths.kth_ancestor(0, 1), None);
    }
}
