//! Online batched-query driving (paper §3.3, "Batch Size" experiment /
//! Figure 6).
//!
//! The Inlabel algorithms work online: preprocess once, then answer query
//! batches as they arrive. [`BatchRunner`] feeds a query stream to an
//! algorithm in fixed-size batches and reports the aggregate throughput,
//! which is what Figure 6 plots against the batch size.

use crate::LcaAlgorithm;
use std::time::{Duration, Instant};

/// Drives an [`LcaAlgorithm`] with a stream of queries split into batches.
pub struct BatchRunner<'a> {
    algorithm: &'a dyn LcaAlgorithm,
}

/// Result of a batched run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Total queries answered.
    pub queries: usize,
    /// Batch size used.
    pub batch_size: usize,
    /// Total wall-clock time across all batches.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Queries answered per second.
    pub fn throughput(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

impl<'a> BatchRunner<'a> {
    /// Wraps an algorithm.
    pub fn new(algorithm: &'a dyn LcaAlgorithm) -> Self {
        Self { algorithm }
    }

    /// Answers `queries` in batches of `batch_size`, writing into `out`,
    /// and reports the timing.
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or `out.len() != queries.len()`.
    pub fn run(&self, queries: &[(u32, u32)], out: &mut [u32], batch_size: usize) -> BatchReport {
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        let start = Instant::now();
        for (q_chunk, o_chunk) in queries.chunks(batch_size).zip(out.chunks_mut(batch_size)) {
            self.algorithm.query_batch(q_chunk, o_chunk);
        }
        BatchReport {
            queries: queries.len(),
            batch_size,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialInlabelLca;
    use graph_core::ids::INVALID_NODE;
    use graph_core::Tree;

    fn fixture() -> (SequentialInlabelLca, Vec<(u32, u32)>) {
        let n = 1000usize;
        let mut parents = vec![INVALID_NODE; n];
        let mut state = 3u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let lca = SequentialInlabelLca::preprocess(&tree);
        let queries: Vec<(u32, u32)> = (0..5000)
            .map(|_| ((step() % 1000) as u32, (step() % 1000) as u32))
            .collect();
        (lca, queries)
    }

    #[test]
    fn batching_does_not_change_answers() {
        let (lca, queries) = fixture();
        let mut all_at_once = vec![0u32; queries.len()];
        lca.query_batch(&queries, &mut all_at_once);
        for batch_size in [1usize, 7, 100, 4999, 5000, 10_000] {
            let mut out = vec![0u32; queries.len()];
            let report = BatchRunner::new(&lca).run(&queries, &mut out, batch_size);
            assert_eq!(out, all_at_once, "batch_size={batch_size}");
            assert_eq!(report.queries, queries.len());
            assert!(report.throughput() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let (lca, queries) = fixture();
        let mut out = vec![0u32; queries.len()];
        let _ = BatchRunner::new(&lca).run(&queries, &mut out, 0);
    }
}
