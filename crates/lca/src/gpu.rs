//! GPU Inlabel — the paper's theoretically optimal algorithm on the
//! simulated device.
//!
//! Preprocessing: Euler tour (DCEL → one list ranking → scans) yields
//! preorder, subtree size, level and parent; O(1)-per-node kernels build the
//! inlabel/ascendant/head tables. Queries: one virtual thread per query,
//! O(1) each.

use crate::inlabel::InlabelTables;
use crate::LcaAlgorithm;
use euler_tour::{EulerTour, TourError, TreeStats};
use gpu_sim::{Device, PhaseTimer};
use graph_core::Tree;

/// GPU-sim Schieber–Vishkin LCA.
pub struct GpuInlabelLca<'d> {
    device: &'d Device,
    tables: InlabelTables,
}

impl<'d> GpuInlabelLca<'d> {
    /// Preprocesses `tree` on the device. Records `lca.euler_tour`,
    /// `lca.stats` and `lca.tables` phases in the device metrics.
    pub fn preprocess(device: &'d Device, tree: &Tree) -> Result<Self, TourError> {
        let tour = {
            let _t = PhaseTimer::new(device.metrics(), "lca.euler_tour");
            EulerTour::build(device, tree)?
        };
        let stats = {
            let _t = PhaseTimer::new(device.metrics(), "lca.stats");
            TreeStats::compute(device, &tour)
        };
        let tables = {
            let _t = PhaseTimer::new(device.metrics(), "lca.tables");
            InlabelTables::from_stats_device(device, &stats)
        };
        Ok(Self { device, tables })
    }

    /// The underlying tables.
    pub fn tables(&self) -> &InlabelTables {
        &self.tables
    }
}

impl LcaAlgorithm for GpuInlabelLca<'_> {
    fn name(&self) -> &'static str {
        "GPU Inlabel"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        self.tables.query_batch_on(self.device, queries, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialInlabelLca;
    use graph_core::ids::INVALID_NODE;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parents, 0).unwrap()
    }

    #[test]
    fn paper_tree_queries() {
        let device = Device::new();
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 2, 0, 0, 0, 2], 0).unwrap();
        let lca = GpuInlabelLca::preprocess(&device, &tree).unwrap();
        assert_eq!(lca.query(1, 5), 2);
        assert_eq!(lca.query(3, 4), 0);
        assert_eq!(lca.query(2, 2), 2);
    }

    #[test]
    fn matches_sequential_on_random_trees() {
        let device = Device::new();
        for (n, seed) in [(1000usize, 1u64), (10_000, 2), (50_000, 3)] {
            let tree = random_tree(n, seed);
            let gpu = GpuInlabelLca::preprocess(&device, &tree).unwrap();
            let seq = SequentialInlabelLca::preprocess(&tree);

            let mut state = seed ^ 0xABCD;
            let mut step = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            };
            let queries: Vec<(u32, u32)> = (0..20_000)
                .map(|_| ((step() % n as u64) as u32, (step() % n as u64) as u32))
                .collect();
            let mut out_gpu = vec![0u32; queries.len()];
            let mut out_seq = vec![0u32; queries.len()];
            gpu.query_batch(&queries, &mut out_gpu);
            seq.query_batch(&queries, &mut out_seq);
            assert_eq!(out_gpu, out_seq, "n={n}");
        }
    }

    #[test]
    fn deep_tree_queries_are_exact() {
        // A path — worst case for the naive algorithm, routine for Inlabel.
        let device = Device::new();
        let n = 30_000;
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let lca = GpuInlabelLca::preprocess(&device, &tree).unwrap();
        assert_eq!(lca.query(29_999, 15_000), 15_000);
        assert_eq!(lca.query(100, 29_000), 100);
    }

    #[test]
    fn phase_timers_recorded() {
        let device = Device::new();
        let tree = random_tree(5000, 11);
        let _ = device.metrics().take_phases();
        let _lca = GpuInlabelLca::preprocess(&device, &tree).unwrap();
        let phases = device.metrics().take_phases();
        let names: Vec<&str> = phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["lca.euler_tour", "lca.stats", "lca.tables"]);
    }
}
