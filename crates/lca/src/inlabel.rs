//! The Schieber–Vishkin *Inlabel* machinery (paper §3.1, \[50\]).
//!
//! Every node `v` receives an **inlabel** — the number with the most
//! trailing zeros inside `v`'s preorder interval
//! `[pre(v), pre(v) + size(v) − 1]`. Inlabels satisfy two properties the
//! query procedure exploits (both checked by property tests):
//!
//! * **path partition** — equal-inlabel nodes form top-down paths;
//! * **inorder embedding** — viewing inlabels as inorder numbers of a full
//!   binary tree *B*, descendants map to descendants.
//!
//! Together with the **ascendant** bitsets (which bits of *B* appear on the
//! root path) and a **head** table (topmost node of each inlabel path),
//! a query resolves with O(1) word operations.
//!
//! Construction is O(1) per node given the Euler-tour statistics, so the
//! whole preprocessing is dominated by the tour itself — the paper's point.

use euler_tour::TreeStats;
use gpu_sim::device::SharedSlice;
use gpu_sim::Device;
use graph_core::ids::{NodeId, INVALID_NODE};
use rayon::prelude::*;

/// Number of pointer-jumping rounds that cover inlabel-tree chains:
/// chains are at most 32 long (one per bit of a `u32` inlabel), and each
/// round doubles the hop, so 6 rounds ≥ 64 hops.
const ASCENDANT_JUMP_ROUNDS: usize = 6;

/// The preprocessed Schieber–Vishkin tables; [`InlabelTables::query`]
/// answers an LCA query in constant time.
#[derive(Debug, Clone)]
pub struct InlabelTables {
    /// Inlabel number of each node.
    pub inlabel: Vec<u32>,
    /// Ascendant bitset of each node.
    pub ascendant: Vec<u32>,
    /// Level (distance from root) of each node.
    pub level: Vec<u32>,
    /// Parent array (`INVALID_NODE` at the root).
    pub parent: Vec<NodeId>,
    /// `head[l]` = topmost node of the inlabel-`l` path (`INVALID_NODE` for
    /// absent inlabel values). Indexed `0..=n`.
    pub head: Vec<NodeId>,
}

/// `inlabel(v)` from the preorder number and subtree size (1-based preorder).
#[inline]
pub fn inlabel_of(pre: u32, size: u32) -> u32 {
    let i = pre;
    let j = pre + size - 1;
    // Highest bit where (i-1) and j differ marks the largest power of two
    // with a multiple inside [i, j]; clear everything below it.
    let k = 31 - ((i - 1) ^ j).leading_zeros();
    (j >> k) << k
}

impl InlabelTables {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.inlabel.len()
    }

    /// Sequential construction (single-core CPU baseline).
    pub fn from_stats_seq(stats: &TreeStats) -> Self {
        let n = stats.num_nodes();
        let inlabel: Vec<u32> = (0..n)
            .map(|v| inlabel_of(stats.preorder[v], stats.subtree_size[v]))
            .collect();

        // Heads of inlabel paths.
        let mut head = vec![INVALID_NODE; n + 1];
        for v in 0..n {
            let is_head = match stats.parent[v] {
                INVALID_NODE => true,
                p => inlabel[p as usize] != inlabel[v],
            };
            if is_head {
                head[inlabel[v] as usize] = v as NodeId;
            }
        }

        // Ascendants, walking nodes in preorder so parents come first.
        let mut by_preorder: Vec<u32> = vec![0; n];
        for v in 0..n {
            by_preorder[stats.preorder[v] as usize - 1] = v as u32;
        }
        let mut ascendant = vec![0u32; n];
        for &v in &by_preorder {
            let bit = 1u32 << inlabel[v as usize].trailing_zeros();
            ascendant[v as usize] = match stats.parent[v as usize] {
                INVALID_NODE => bit,
                p => ascendant[p as usize] | bit,
            };
        }

        Self {
            inlabel,
            ascendant,
            level: stats.level.clone(),
            parent: stats.parent.clone(),
            head,
        }
    }

    /// Multicore construction with plain rayon loops (OpenMP substitute).
    pub fn from_stats_rayon(stats: &TreeStats) -> Self {
        let n = stats.num_nodes();
        let inlabel: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|v| inlabel_of(stats.preorder[v], stats.subtree_size[v]))
            .collect();

        let mut head = vec![INVALID_NODE; n + 1];
        {
            // One head per inlabel value, so each slot has one writer.
            let head_shared = SharedSlice::new(&mut head);
            (0..n).into_par_iter().for_each(|v| {
                let is_head = match stats.parent[v] {
                    INVALID_NODE => true,
                    p => inlabel[p as usize] != inlabel[v],
                };
                if is_head {
                    head_shared.write(inlabel[v] as usize, v as NodeId);
                }
            });
        }

        // Inlabel-tree parents and seed bits, then pointer jumping.
        let mut ipar = vec![INVALID_NODE; n + 1];
        let mut asc = vec![0u32; n + 1];
        ipar.par_iter_mut()
            .zip(asc.par_iter_mut())
            .enumerate()
            .for_each(|(l, (ip, a))| {
                let h = head[l];
                if h != INVALID_NODE {
                    *a = 1u32 << (l as u32).trailing_zeros();
                    let p = stats.parent[h as usize];
                    if p != INVALID_NODE {
                        *ip = inlabel[p as usize];
                    }
                }
            });
        let mut ptr = ipar;
        for _ in 0..ASCENDANT_JUMP_ROUNDS {
            let asc_next: Vec<u32> = (0..n + 1)
                .into_par_iter()
                .map(|l| {
                    let p = ptr[l];
                    if p == INVALID_NODE {
                        asc[l]
                    } else {
                        asc[l] | asc[p as usize]
                    }
                })
                .collect();
            let ptr_next: Vec<u32> = (0..n + 1)
                .into_par_iter()
                .map(|l| {
                    let p = ptr[l];
                    if p == INVALID_NODE {
                        INVALID_NODE
                    } else {
                        ptr[p as usize]
                    }
                })
                .collect();
            asc = asc_next;
            ptr = ptr_next;
        }

        let ascendant: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|v| asc[inlabel[v] as usize])
            .collect();

        Self {
            inlabel,
            ascendant,
            level: stats.level.clone(),
            parent: stats.parent.clone(),
            head,
        }
    }

    /// Device (GPU-sim) construction: the same O(1)-per-node kernels the
    /// paper runs as CUDA kernels.
    pub fn from_stats_device(device: &Device, stats: &TreeStats) -> Self {
        let n = stats.num_nodes();
        let mut inlabel = vec![0u32; n];
        {
            let _k = device.kernel_label("inlabel_compute");
            // Preorder and subtree sizes feed the closure.
            device.capture_read(&stats.preorder);
            device.capture_read(&stats.subtree_size);
            device.map(&mut inlabel, |v| {
                inlabel_of(stats.preorder[v], stats.subtree_size[v])
            });
        }

        let mut head = vec![INVALID_NODE; n + 1];
        {
            let _k = device.kernel_label("inlabel_heads");
            // One head per inlabel value, so each slot has one writer.
            device.capture_read(&inlabel);
            device.capture_read(&stats.parent);
            let head_shared = device.shared(&mut head);
            let inlabel_ref = &inlabel;
            device.for_each(n, |v| {
                let is_head = match stats.parent[v] {
                    INVALID_NODE => true,
                    p => inlabel_ref[p as usize] != inlabel_ref[v],
                };
                if is_head {
                    head_shared.write(inlabel_ref[v] as usize, v as NodeId);
                }
            });
        }

        // Inlabel-tree parent pointers and per-inlabel seed bits: round
        // buffers for the pointer jumping below, all from the device arena.
        let mut ipar = device.alloc_filled(n + 1, INVALID_NODE);
        let mut asc = device.alloc_filled(n + 1, 0u32);
        {
            let _k = device.kernel_label("inlabel_tree_seed");
            // Each l is written once by its own virtual thread.
            device.capture_read(&head);
            device.capture_read(&inlabel);
            device.capture_read(&stats.parent);
            let ipar_shared = device.shared(&mut ipar);
            let asc_shared = device.shared(&mut asc);
            let inlabel_ref = &inlabel;
            let head_ref = &head;
            device.for_each(n + 1, |l| {
                let h = head_ref[l];
                if h != INVALID_NODE {
                    asc_shared.write(l, 1u32 << (l as u32).trailing_zeros());
                    match stats.parent[h as usize] {
                        INVALID_NODE => {}
                        p => ipar_shared.write(l, inlabel_ref[p as usize]),
                    }
                }
            });
        }

        // Pointer jumping over the (≤ 32-deep) inlabel tree.
        let mut ptr = ipar;
        let mut asc_new = device.alloc_pooled::<u32>(n + 1);
        let mut ptr_new = device.alloc_pooled::<u32>(n + 1);
        for round in 0..ASCENDANT_JUMP_ROUNDS {
            {
                let _k = device.kernel_label("inlabel_jump_asc");
                device.capture_read(&ptr[..]);
                device.capture_read(&asc[..]);
                device.map(&mut asc_new, |l| {
                    let p = ptr[l];
                    if p == INVALID_NODE {
                        asc[l]
                    } else {
                        asc[l] | asc[p as usize]
                    }
                });
            }
            std::mem::swap(&mut asc, &mut asc_new);
            // The last round's pointer jump would never be read — skip it
            // (found by the launch-graph dead-write pass).
            if round + 1 < ASCENDANT_JUMP_ROUNDS {
                let _k = device.kernel_label("inlabel_jump_ptr");
                device.capture_read(&ptr[..]);
                device.map(&mut ptr_new, |l| {
                    let p = ptr[l];
                    if p == INVALID_NODE {
                        INVALID_NODE
                    } else {
                        ptr[p as usize]
                    }
                });
                std::mem::swap(&mut ptr, &mut ptr_new);
            }
        }

        let mut ascendant = vec![0u32; n];
        {
            let _k = device.kernel_label("inlabel_ascendant");
            device.capture_read(&asc[..]);
            device.capture_read(&inlabel);
            device.map(&mut ascendant, |v| asc[inlabel[v] as usize]);
        }

        Self {
            inlabel,
            ascendant,
            level: stats.level.clone(),
            parent: stats.parent.clone(),
            head,
        }
    }

    /// The O(1) Schieber–Vishkin query.
    #[inline]
    pub fn query(&self, x: NodeId, y: NodeId) -> NodeId {
        let ix = self.inlabel[x as usize];
        let iy = self.inlabel[y as usize];
        if ix == iy {
            // Same inlabel path: the shallower node is the ancestor.
            return if self.level[x as usize] <= self.level[y as usize] {
                x
            } else {
                y
            };
        }
        // Highest bit where the inlabels differ.
        let i = 31 - (ix ^ iy).leading_zeros();
        // Lowest common ascendant bit at position >= i gives the inlabel of
        // the LCA's path.
        let common = (self.ascendant[x as usize] & self.ascendant[y as usize]) >> i << i;
        let j = common.trailing_zeros();
        let inlabel_z = ((((ix as u64) >> (j + 1)) << (j + 1)) | (1u64 << j)) as u32;

        let zx = self.lowest_ancestor_on_path(x, inlabel_z, j);
        let zy = self.lowest_ancestor_on_path(y, inlabel_z, j);
        if self.level[zx as usize] <= self.level[zy as usize] {
            zx
        } else {
            zy
        }
    }

    /// Answers a batch of LCA queries in one device launch: one virtual
    /// thread per `(x, y)` pair, each running the O(1) [`query`] kernel.
    ///
    /// This is the batch entry point shared by [`crate::GpuInlabelLca`]
    /// and the `emg serve` daemon's request coalescer — both dispatch a
    /// whole queue of queries as a single `lca_query_batch` launch, which
    /// is what makes the inlabel scheme embarrassingly batchable.
    ///
    /// [`query`]: InlabelTables::query
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len()` or a node id is out of
    /// range.
    pub fn query_batch_on(&self, device: &Device, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        let _k = device.kernel_label("lca_query_batch");
        // Queries and every Schieber–Vishkin table feed the closure.
        device.capture_read(queries);
        device.capture_read(&self.inlabel);
        device.capture_read(&self.ascendant);
        device.capture_read(&self.level);
        device.capture_read(&self.parent);
        device.capture_read(&self.head);
        device.map(out, |q| {
            let (x, y) = queries[q];
            self.query(x, y)
        });
    }

    /// Lowest ancestor of `x` lying on the inlabel path `inlabel_z`
    /// (whose trailing-zero count is `j`).
    #[inline]
    fn lowest_ancestor_on_path(&self, x: NodeId, inlabel_z: u32, j: u32) -> NodeId {
        let ix = self.inlabel[x as usize];
        if ix == inlabel_z {
            return x;
        }
        // Highest ascendant bit of x strictly below j identifies the
        // inlabel path of x's ancestry just below the z-path.
        let below = self.ascendant[x as usize] & ((1u64 << j) - 1) as u32;
        let k = 31 - below.leading_zeros();
        let inlabel_w = ((((ix as u64) >> (k + 1)) << (k + 1)) | (1u64 << k)) as u32;
        let w = self.head[inlabel_w as usize];
        self.parent[w as usize]
    }

    /// Checks the two structural properties of inlabel numbers (test
    /// support; O(n) plus O(n) ancestor hops).
    pub fn check_structural_properties(&self, stats: &TreeStats) -> Result<(), String> {
        let n = self.num_nodes();
        // Path partition: the nodes with inlabel l must form a path; i.e.
        // each non-head node's parent shares its inlabel, and per inlabel
        // value levels are consecutive starting at the head.
        let mut count = vec![0u32; n + 1];
        for v in 0..n {
            count[self.inlabel[v] as usize] += 1;
        }
        for v in 0..n {
            let l = self.inlabel[v] as usize;
            let h = self.head[l];
            if h == INVALID_NODE {
                return Err(format!("inlabel {l} has nodes but no head"));
            }
            let offset = self.level[v] as i64 - self.level[h as usize] as i64;
            if offset < 0 || offset >= count[l] as i64 {
                return Err(format!(
                    "node {v} level offset {offset} outside path of {} nodes",
                    count[l]
                ));
            }
        }
        // Inorder embedding: inlabel(child) must be a B-descendant of
        // inlabel(parent): with t = tz(inlabel(parent)), the child's inlabel
        // must share all bits above t and lie in the parent's B-interval.
        for v in 0..n {
            if stats.parent[v] == INVALID_NODE {
                continue;
            }
            let p = stats.parent[v] as usize;
            let iv = self.inlabel[v] as u64;
            let ip = self.inlabel[p] as u64;
            let t = ip.trailing_zeros();
            let lo = ip - (1 << t) + 1;
            let hi = ip + (1 << t) - 1;
            if !(lo..=hi).contains(&iv) {
                return Err(format!(
                    "inlabel({v}) = {iv} escapes B-subtree [{lo},{hi}] of parent inlabel {ip}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_tour::cpu::sequential_stats;
    use graph_core::Tree;

    fn tables_for(parents: Vec<u32>) -> (InlabelTables, TreeStats) {
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let stats = sequential_stats(&tree);
        (InlabelTables::from_stats_seq(&stats), stats)
    }

    #[test]
    fn inlabel_formula_basics() {
        // Root of an n=6 tree: interval [1,6] → inlabel 4.
        assert_eq!(inlabel_of(1, 6), 4);
        // Leaf at preorder 5: interval [5,5] → 5.
        assert_eq!(inlabel_of(5, 1), 5);
        // Interval [3,4] contains 4 (tz=2 beats tz=0).
        assert_eq!(inlabel_of(3, 2), 4);
        // Interval [5,7]: 6 has tz=1.
        assert_eq!(inlabel_of(5, 3), 6);
        // Full tree of 7: [1,7] → 4.
        assert_eq!(inlabel_of(1, 7), 4);
    }

    #[test]
    fn paper_tree_structural_properties() {
        let (tables, stats) = tables_for(vec![INVALID_NODE, 2, 0, 0, 0, 2]);
        tables.check_structural_properties(&stats).unwrap();
    }

    #[test]
    fn path_tree_queries() {
        let n = 64;
        let mut parents = vec![0u32; n];
        parents[0] = INVALID_NODE;
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let (tables, _) = tables_for(parents);
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                assert_eq!(tables.query(x, y), x.min(y), "query({x},{y})");
            }
        }
    }

    #[test]
    fn star_tree_queries() {
        let n = 50;
        let mut parents = vec![0u32; n];
        parents[0] = INVALID_NODE;
        let (tables, _) = tables_for(parents);
        for x in 1..n as u32 {
            for y in 1..n as u32 {
                let expected = if x == y { x } else { 0 };
                assert_eq!(tables.query(x, y), expected);
            }
        }
        assert_eq!(tables.query(0, 7), 0);
    }

    /// Brute-force LCA by walking parents.
    fn brute(stats: &TreeStats, mut x: u32, mut y: u32) -> u32 {
        while stats.level[x as usize] > stats.level[y as usize] {
            x = stats.parent[x as usize];
        }
        while stats.level[y as usize] > stats.level[x as usize] {
            y = stats.parent[y as usize];
        }
        while x != y {
            x = stats.parent[x as usize];
            y = stats.parent[y as usize];
        }
        x
    }

    #[test]
    fn exhaustive_small_increasing_trees() {
        // All increasing-parent trees on 7 nodes: parent[v] ∈ [0, v).
        // 6! = 720 trees, all 49 query pairs each.
        fn rec(parents: &mut Vec<u32>, v: usize, n: usize, tested: &mut u64) {
            if v == n {
                let tree = Tree::from_parent_array(parents.clone(), 0).unwrap();
                let stats = sequential_stats(&tree);
                let tables = InlabelTables::from_stats_seq(&stats);
                tables.check_structural_properties(&stats).unwrap();
                for x in 0..n as u32 {
                    for y in 0..n as u32 {
                        assert_eq!(
                            tables.query(x, y),
                            brute(&stats, x, y),
                            "tree {parents:?} query ({x},{y})"
                        );
                    }
                }
                *tested += 1;
                return;
            }
            for p in 0..v {
                parents.push(p as u32);
                rec(parents, v + 1, n, tested);
                parents.pop();
            }
        }
        let mut parents = vec![INVALID_NODE];
        let mut tested = 0;
        rec(&mut parents, 1, 7, &mut tested);
        assert_eq!(tested, 720);
    }

    #[test]
    fn random_trees_match_brute_force() {
        let mut state = 2024u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for n in [100usize, 1000, 5000] {
            let mut parents = vec![INVALID_NODE; n];
            for (v, p) in parents.iter_mut().enumerate().skip(1) {
                *p = (step() % v as u64) as u32;
            }
            let tree = Tree::from_parent_array(parents, 0).unwrap();
            let stats = sequential_stats(&tree);
            let tables = InlabelTables::from_stats_seq(&stats);
            for _ in 0..500 {
                let x = (step() % n as u64) as u32;
                let y = (step() % n as u64) as u32;
                assert_eq!(tables.query(x, y), brute(&stats, x, y));
            }
        }
    }

    #[test]
    fn all_backends_build_identical_tables() {
        let device = Device::new();
        let mut parents = vec![INVALID_NODE; 3000];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (v / 2) as u32;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let stats = sequential_stats(&tree);
        let a = InlabelTables::from_stats_seq(&stats);
        let b = InlabelTables::from_stats_rayon(&stats);
        let c = InlabelTables::from_stats_device(&device, &stats);
        assert_eq!(a.inlabel, b.inlabel);
        assert_eq!(a.inlabel, c.inlabel);
        assert_eq!(a.ascendant, b.ascendant);
        assert_eq!(a.ascendant, c.ascendant);
        assert_eq!(a.head, b.head);
        assert_eq!(a.head, c.head);
    }

    #[test]
    fn single_node_tree_query() {
        let (tables, _) = tables_for(vec![INVALID_NODE]);
        assert_eq!(tables.query(0, 0), 0);
    }

    #[test]
    fn self_queries_return_self() {
        let (tables, _) = tables_for(vec![INVALID_NODE, 0, 0, 1, 1, 2]);
        for v in 0..6u32 {
            assert_eq!(tables.query(v, v), v);
        }
    }
}
