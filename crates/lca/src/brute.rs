//! Brute-force LCA oracle for tests: O(depth) per query, no preprocessing
//! beyond levels.

use crate::LcaAlgorithm;
use graph_core::ids::NodeId;
use graph_core::Tree;

/// Reference LCA by parent walking. Not an experimental subject — the
/// ground truth the property tests compare everything against.
#[derive(Debug, Clone)]
pub struct BruteLca {
    parent: Vec<NodeId>,
    level: Vec<u32>,
}

impl BruteLca {
    /// Builds the oracle (sequential level computation).
    pub fn preprocess(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let parent = tree.parent_slice().to_vec();
        // Levels via memoized walking (iterative, amortized O(n)).
        let mut level = vec![u32::MAX; n];
        level[tree.root() as usize] = 0;
        let mut path = Vec::new();
        for start in 0..n {
            let mut v = start;
            while level[v] == u32::MAX {
                path.push(v);
                v = parent[v] as usize;
            }
            let mut d = level[v];
            while let Some(u) = path.pop() {
                d += 1;
                level[u] = d;
            }
        }
        Self { parent, level }
    }

    /// Node levels (root = 0).
    pub fn levels(&self) -> &[u32] {
        &self.level
    }
}

impl LcaAlgorithm for BruteLca {
    fn name(&self) -> &'static str {
        "Brute force (oracle)"
    }

    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        for (slot, &(mut x, mut y)) in out.iter_mut().zip(queries) {
            while self.level[x as usize] > self.level[y as usize] {
                x = self.parent[x as usize];
            }
            while self.level[y as usize] > self.level[x as usize] {
                y = self.parent[y as usize];
            }
            while x != y {
                x = self.parent[x as usize];
                y = self.parent[y as usize];
            }
            *slot = x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::ids::INVALID_NODE;

    #[test]
    fn paper_tree() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 2, 0, 0, 0, 2], 0).unwrap();
        let lca = BruteLca::preprocess(&tree);
        assert_eq!(lca.query(1, 5), 2);
        assert_eq!(lca.query(3, 4), 0);
        assert_eq!(lca.query(0, 5), 0);
        assert_eq!(lca.levels(), &[0, 2, 1, 1, 1, 2]);
    }

    #[test]
    fn deep_path_levels() {
        let n = 200_000;
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let lca = BruteLca::preprocess(&tree);
        assert_eq!(lca.levels()[n - 1], n as u32 - 1);
    }
}
