//! # lca — lowest common ancestor algorithms (paper §3)
//!
//! Four algorithms, mirroring the paper's experimental lineup:
//!
//! | Paper name            | Type                                   | Here |
//! |-----------------------|----------------------------------------|------|
//! | Single-core CPU Inlabel | sequential Schieber–Vishkin          | [`SequentialInlabelLca`] |
//! | Multi-core CPU Inlabel  | rayon (OpenMP substitute)            | [`MulticoreInlabelLca`] |
//! | GPU Inlabel             | Euler tour + O(1) query kernels      | [`GpuInlabelLca`] |
//! | GPU Naïve               | pointer-jumped levels + O(depth) walk| [`NaiveGpuLca`] |
//!
//! plus the RMQ/segment-tree baseline of the paper's §3.1 preliminary
//! experiment ([`RmqLca`]), a brute-force oracle ([`BruteLca`]), and the
//! extensions beyond the paper's lineup: the full Bender–Farach design
//! space ([`SparseRmqLca`], [`BlockRmqLca`]), a device-parallel
//! sparse-table RMQ ([`GpuRmqLca`]) and tree path queries
//! ([`TreePaths`]: distances, k-th ancestors, paths).
//!
//! ```
//! use graph_core::Tree;
//! use gpu_sim::Device;
//! use lca::{GpuInlabelLca, LcaAlgorithm};
//!
//! let device = Device::new();
//! let tree = Tree::from_edges(6, &[(0, 2), (0, 3), (0, 4), (2, 1), (2, 5)], 0).unwrap();
//! let lca = GpuInlabelLca::preprocess(&device, &tree).unwrap();
//! assert_eq!(lca.query(1, 5), 2);
//! assert_eq!(lca.query(3, 5), 0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod brute;
pub mod gpu;
pub mod gpu_rmq;
pub mod inlabel;
pub mod naive;
pub mod offline;
pub mod par;
pub mod paths;
pub mod rmq;
pub mod seq;
pub mod sparse;

pub use batch::BatchRunner;
pub use brute::BruteLca;
pub use gpu::GpuInlabelLca;
pub use gpu_rmq::GpuRmqLca;
pub use inlabel::InlabelTables;
pub use naive::NaiveGpuLca;
pub use offline::offline_tarjan_lca;
pub use par::MulticoreInlabelLca;
pub use paths::TreePaths;
pub use rmq::RmqLca;
pub use seq::SequentialInlabelLca;
pub use sparse::{BlockRmqLca, SparseRmqLca};

/// A preprocessed LCA structure answering batched queries.
pub trait LcaAlgorithm: Send + Sync {
    /// Human-readable algorithm name (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// Answers `queries[i] = (x, y)` into `out[i]`.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len()` or a node id is out of range.
    fn query_batch(&self, queries: &[(u32, u32)], out: &mut [u32]);

    /// Answers a single query.
    fn query(&self, x: u32, y: u32) -> u32 {
        let mut out = [0u32];
        self.query_batch(&[(x, y)], &mut out);
        out[0]
    }
}
