//! The lint gate's own tests: seeded violations in synthetic workspace
//! trees must be caught, and the real workspace must be clean.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::lint_workspace;

/// Builds a throwaway workspace tree under the system temp directory.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("xtask-lint-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates")).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let p = self.root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, content).unwrap();
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn rules(findings: &[xtask::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn clean_synthetic_workspace_passes() {
    let ws = TempWorkspace::new("clean");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
    );
    ws.write(
        "crates/gpu-sim/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\n// SAFETY: test fixture, trivially disjoint.\npub fn g() { unsafe { std::ptr::null::<u8>().read_volatile(); } }\n",
    );
    assert!(
        lint_workspace(&ws.root).is_empty(),
        "{:?}",
        lint_workspace(&ws.root)
    );
}

#[test]
fn unsafe_outside_gpu_sim_is_flagged() {
    let ws = TempWorkspace::new("outside");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let f = lint_workspace(&ws.root);
    assert!(rules(&f).contains(&"unsafe-outside-gpu-sim"), "{f:?}");
    assert_eq!(f[0].line, 2);
}

#[test]
fn missing_root_attrs_are_flagged() {
    let ws = TempWorkspace::new("attrs");
    ws.write("crates/algo/src/lib.rs", "pub fn f() {}\n");
    ws.write("crates/gpu-sim/src/lib.rs", "pub fn g() {}\n");
    let f = lint_workspace(&ws.root);
    let r = rules(&f);
    assert_eq!(r.iter().filter(|&&x| x == "root-attr").count(), 2, "{f:?}");
}

#[test]
fn unsafe_without_safety_comment_in_gpu_sim_is_flagged() {
    let ws = TempWorkspace::new("nosafety");
    ws.write(
        "crates/gpu-sim/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\npub fn g(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let f = lint_workspace(&ws.root);
    assert!(rules(&f).contains(&"missing-safety-comment"), "{f:?}");
}

#[test]
fn safety_comment_through_attributes_is_accepted() {
    let ws = TempWorkspace::new("attrcomment");
    ws.write(
        "crates/gpu-sim/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\n// SAFETY: fixture invariant.\n#[inline]\npub fn g(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert!(
        lint_workspace(&ws.root).is_empty(),
        "{:?}",
        lint_workspace(&ws.root)
    );
}

#[test]
fn allow_unsafe_code_is_flagged_everywhere() {
    let ws = TempWorkspace::new("allow");
    ws.write(
        "crates/gpu-sim/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\n#[allow(unsafe_code)]\npub fn g() {}\n",
    );
    let f = lint_workspace(&ws.root);
    assert!(rules(&f).contains(&"allow-unsafe"), "{f:?}");
}

#[test]
fn raw_pointer_idioms_outside_gpu_sim_are_flagged() {
    let ws = TempWorkspace::new("rawptr");
    // No `unsafe` keyword — e.g. hidden behind a macro — but the idiom
    // itself is still caught.
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f(x: &u32) -> usize { (x as *const u32) as usize }\n",
    );
    let f = lint_workspace(&ws.root);
    assert!(rules(&f).contains(&"raw-ptr-outside-gpu-sim"), "{f:?}");
}

#[test]
fn unsafe_in_comments_and_identifiers_is_ignored() {
    let ws = TempWorkspace::new("comments");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\n// this comment says unsafe and that is fine\npub fn unsafe_free() {}\npub const UNSAFE_LOOKING: u32 = 0; // mentions unsafe\n",
    );
    let f = lint_workspace(&ws.root);
    // `unsafe_free` / comment mentions must not trip the keyword rule; the
    // trailing comment on the const line does contain the bare word, which
    // a text-level lint conservatively flags — so the fixture avoids it in
    // code position. Expect fully clean.
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn fixture_directories_are_exempt() {
    let ws = TempWorkspace::new("exempt");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f() {}\n",
    );
    ws.write(
        "crates/algo/tests/fixtures/bad.rs",
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert!(
        lint_workspace(&ws.root).is_empty(),
        "{:?}",
        lint_workspace(&ws.root)
    );
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let findings = lint_workspace(root);
    assert!(
        findings.is_empty(),
        "workspace lint violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unlabeled_launch_in_src_is_flagged() {
    let ws = TempWorkspace::new("unlabeled");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f(device: &Device, out: &mut [u32]) {\n    device.map(out, |i| i as u32);\n}\n",
    );
    let f = lint_workspace(&ws.root);
    assert!(rules(&f).contains(&"unlabeled-launch"), "{f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn labeled_launch_in_src_passes() {
    let ws = TempWorkspace::new("labeled");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f(device: &Device, out: &mut [u32]) {\n    let _k = device.kernel_label(\"algo_fill\");\n    device.map(out, |i| i as u32);\n}\n",
    );
    assert!(
        lint_workspace(&ws.root).is_empty(),
        "{:?}",
        lint_workspace(&ws.root)
    );
}

#[test]
fn unlabeled_launch_outside_src_is_exempt() {
    // Test and bench code never feeds the golden graphs.
    let ws = TempWorkspace::new("testexempt");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f() {}\n",
    );
    ws.write(
        "crates/algo/tests/smoke.rs",
        "fn check(device: &Device, out: &mut [u32]) {\n    device.map(out, |i| i as u32);\n}\n",
    );
    assert!(
        lint_workspace(&ws.root).is_empty(),
        "{:?}",
        lint_workspace(&ws.root)
    );
}

#[test]
fn unregistered_env_knob_in_readme_is_flagged() {
    let ws = TempWorkspace::new("envtable");
    ws.write(
        "crates/gpu-sim/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\npub mod env;\n",
    );
    ws.write(
        "crates/gpu-sim/src/env.rs",
        "/// Documented knob.\npub const EMG_DOCUMENTED: &str = \"EMG_DOCUMENTED\";\n\
         /// Forgotten knob.\npub const EMG_FORGOTTEN: &str = \"EMG_FORGOTTEN\";\n",
    );
    ws.write(
        "README.md",
        "# demo\n<!-- env-table:begin -->\n| `EMG_DOCUMENTED` | a knob |\n<!-- env-table:end -->\n",
    );
    let f = lint_workspace(&ws.root);
    let env_findings: Vec<_> = f.iter().filter(|x| x.rule == "env-table").collect();
    assert_eq!(env_findings.len(), 1, "{f:?}");
    assert!(env_findings[0].message.contains("EMG_FORGOTTEN"), "{f:?}");
    assert_eq!(env_findings[0].line, 4, "should point at the const line");
}

#[test]
fn missing_env_table_markers_are_flagged() {
    let ws = TempWorkspace::new("envmarkers");
    ws.write(
        "crates/gpu-sim/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\npub mod env;\n",
    );
    ws.write(
        "crates/gpu-sim/src/env.rs",
        "pub const EMG_KNOB: &str = \"EMG_KNOB\";\n",
    );
    ws.write("README.md", "# demo, no table markers\n");
    let f = lint_workspace(&ws.root);
    assert!(
        f.iter()
            .any(|x| x.rule == "env-table" && x.message.contains("env-table:begin")),
        "{f:?}"
    );
}

#[test]
fn workspaces_without_an_env_registry_skip_the_table_rule() {
    let ws = TempWorkspace::new("noenvreg");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f() {}\n",
    );
    assert!(
        lint_workspace(&ws.root).is_empty(),
        "{:?}",
        lint_workspace(&ws.root)
    );
}

#[test]
fn dangling_design_section_reference_is_flagged() {
    let ws = TempWorkspace::new("designref");
    ws.write("DESIGN.md", "# design\n## 1. The model\n## 2. The rest\n");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\n//! Spec in DESIGN.md \u{a7}2; details in DESIGN.md \u{a7}7.\npub fn f() {}\n",
    );
    let f = lint_workspace(&ws.root);
    let refs: Vec<_> = f
        .iter()
        .filter(|x| x.rule == "dangling-design-ref")
        .collect();
    assert_eq!(refs.len(), 1, "only \u{a7}7 dangles: {f:?}");
    assert!(refs[0].message.contains("## 7."), "{f:?}");
    assert_eq!(refs[0].line, 2);
}

#[test]
fn subsection_references_resolve_by_major_number() {
    let ws = TempWorkspace::new("designsub");
    ws.write(
        "DESIGN.md",
        "# design\n## 12. The server\n### 12.4 Flushes\n",
    );
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\n// Flush discipline: DESIGN.md \u{a7}12.4.\npub fn f() {}\n",
    );
    assert!(
        lint_workspace(&ws.root).is_empty(),
        "{:?}",
        lint_workspace(&ws.root)
    );
}

#[test]
fn design_refs_without_a_design_doc_are_flagged() {
    let ws = TempWorkspace::new("nodesign");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\n// See DESIGN.md \u{a7}3.\npub fn f() {}\n",
    );
    let f = lint_workspace(&ws.root);
    assert!(f.iter().any(|x| x.rule == "dangling-design-ref"), "{f:?}");
}

#[test]
fn empty_justifications_are_flagged() {
    let ws = TempWorkspace::new("emptyjust");
    ws.write(
        "crates/algo/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f(device: &Device) {\n    let _k = device.kernel_label(\"\");\n    let v = device.atomic_u32(&mut buf).benign(\"\");\n}\n",
    );
    let f = lint_workspace(&ws.root);
    let r = rules(&f);
    assert_eq!(
        r.iter().filter(|&&x| x == "empty-justification").count(),
        2,
        "{f:?}"
    );
}
