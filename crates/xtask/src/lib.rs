//! # xtask — workspace hygiene tasks
//!
//! `cargo run -p xtask -- lint` runs the **unsafe-usage gate**: a
//! text-level pass over the workspace sources (no parser, no external
//! dependencies) that pins down where `unsafe` is allowed to live and what
//! paperwork it requires. The rules, mirroring DESIGN.md §9:
//!
//! 1. every non-`gpu-sim` crate root carries `#![deny(unsafe_code)]`;
//! 2. `gpu-sim`'s root carries `#![deny(unsafe_op_in_unsafe_fn)]`;
//! 3. the `unsafe` keyword appears **only** inside `gpu-sim` (the device
//!    access layer) — algorithm crates must use the safe tracked views;
//! 4. every `unsafe` inside `gpu-sim` carries a `SAFETY:` (or doc
//!    `# Safety`) justification in the contiguous comment run above it;
//! 5. `allow(unsafe_code)` never appears — the denies cannot be waived;
//! 6. raw-pointer idioms (`slice::from_raw_parts`, `from_raw_parts_mut`,
//!    `as *mut`, `as *const`, `.offset(`) stay inside `gpu-sim` too, so a
//!    crate cannot smuggle pointer arithmetic past rule 3 behind a macro.
//!
//! Two further rules keep the **launch-graph capture plane** honest
//! (DESIGN.md §11):
//!
//! 7. in algorithm crates (`src/` only, not `gpu-sim`), any function that
//!    launches through a bare `Device` entry point (`device.for_each(`,
//!    `device.map(`, `device.alloc_map(` — the launchers with no built-in
//!    scope label) must open a `kernel_label(` somewhere in that function,
//!    so captured graphs never degrade to anonymous `kernel#N` nodes;
//! 8. empty justification literals — `kernel_label("")` and `.benign("")`
//!    — are rejected everywhere: a whitelist entry or label that says
//!    nothing documents nothing.
//!
//! One rule keeps the **documentation plane** honest:
//!
//! 9. every `EMG_*` knob registered in `gpu-sim/src/env.rs` (a
//!    `pub const NAME: &str = "EMG_...";` item) must appear, backticked,
//!    in the README's consolidated env-var table (the region between the
//!    `<!-- env-table:begin -->` / `<!-- env-table:end -->` markers), and
//!    every `DESIGN.md §N` reference in workspace `.rs` files must point
//!    at an existing `## N.` section of `DESIGN.md` — docs that name a
//!    knob or section that does not exist are worse than no docs.
//!
//! `vendor/` (offline stand-ins), `target/`, and any path containing
//! `fixtures` are exempt. The `xtask` crate itself is exempt from the
//! content rules (its source must name the patterns it hunts) but not from
//! rule 1 — the compiler still enforces `#![deny(unsafe_code)]` here.
//!
//! `cargo run -p xtask -- analyze` runs the **launch-graph golden gate**:
//! every shipped pipeline is captured at pool widths 1 and 4 and both
//! serializations must match `ci/golden_graphs/<pipeline>.json` byte for
//! byte (see [`check_golden_graphs`]).

#![deny(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    /// File the violation is in, relative to the linted root when possible.
    pub path: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Short rule identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Raw-pointer idioms that must not appear outside the access layer.
const RAW_PTR_PATTERNS: &[&str] = &[
    "slice::from_raw_parts",
    "from_raw_parts_mut",
    "as *mut",
    "as *const",
    ".offset(",
];

/// Bare `Device` launch entry points — the launchers with no built-in
/// scope label, whose launches show up as anonymous `kernel#N` nodes in
/// captured graphs unless the enclosing function opens a `kernel_label`.
const LAUNCH_PATTERNS: &[&str] = &["device.for_each(", "device.map(", "device.alloc_map("];

/// Empty justification literals: a label or whitelist reason that says
/// nothing documents nothing.
const EMPTY_JUSTIFICATION_PATTERNS: &[&str] = &["kernel_label(\"\")", ".benign(\"\")"];

/// Start marker of the README's consolidated env-var table (rule 9).
pub const ENV_TABLE_BEGIN: &str = "<!-- env-table:begin -->";
/// End marker of the README's consolidated env-var table (rule 9).
pub const ENV_TABLE_END: &str = "<!-- env-table:end -->";

/// The `DESIGN.md §N` reference pattern rule 9 resolves.
const DESIGN_REF: &str = "DESIGN.md \u{a7}";

/// Runs the full unsafe-usage gate over a workspace rooted at `root`.
/// Returns every violation found (empty = clean).
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let sections = design_sections(root);
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            findings.push(Finding {
                path: crates_dir.clone(),
                line: 0,
                rule: "structure",
                message: format!("cannot read crates directory: {e}"),
            });
            return findings;
        }
    };
    crate_dirs.sort();

    for dir in &crate_dirs {
        let name = dir.file_name().unwrap_or_default().to_string_lossy();
        let is_gpu_sim = name == "gpu-sim";
        let is_xtask = name == "xtask";

        // Rule 1 / 2: the crate-root attributes.
        let lib = dir.join("src/lib.rs");
        if let Ok(text) = fs::read_to_string(&lib) {
            if is_gpu_sim {
                if !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
                    findings.push(finding_at(
                        root,
                        &lib,
                        0,
                        "root-attr",
                        "gpu-sim must carry #![deny(unsafe_op_in_unsafe_fn)] at the crate root"
                            .into(),
                    ));
                }
            } else if !text.contains("#![deny(unsafe_code)]") {
                findings.push(finding_at(
                    root,
                    &lib,
                    0,
                    "root-attr",
                    format!("crate `{name}` must carry #![deny(unsafe_code)] at the crate root"),
                ));
            }
        }

        if is_xtask {
            continue; // content rules: see module docs.
        }
        for file in rust_files(dir) {
            lint_file(root, &file, is_gpu_sim, &sections, &mut findings);
        }
    }

    // The facade package's own sources and integration tests.
    for top in ["src", "tests", "benches", "examples"] {
        let d = root.join(top);
        if d.is_dir() {
            for file in rust_files(&d) {
                lint_file(root, &file, false, &sections, &mut findings);
            }
        }
    }

    // Rule 9a: the env-knob registry vs the README table.
    lint_env_table(root, &mut findings);

    findings
}

/// The set of `## N.` section numbers DESIGN.md actually has, or `None`
/// when there is no DESIGN.md (synthetic test workspaces).
fn design_sections(root: &Path) -> Option<std::collections::BTreeSet<u32>> {
    let text = fs::read_to_string(root.join("DESIGN.md")).ok()?;
    let mut sections = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("## ") {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if !digits.is_empty() && rest[digits.len()..].starts_with('.') {
                if let Ok(n) = digits.parse() {
                    sections.insert(n);
                }
            }
        }
    }
    Some(sections)
}

/// Rule 9b: every `DESIGN.md §N` reference must resolve to an existing
/// `## N.` section. Sub-section references (`§12.4`) resolve by their
/// major number — sub-headings are `### N.M` and move too often to pin.
fn lint_design_refs(
    root: &Path,
    file: &Path,
    lines: &[&str],
    sections: &Option<std::collections::BTreeSet<u32>>,
    findings: &mut Vec<Finding>,
) {
    for (i, raw) in lines.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = raw[from..].find(DESIGN_REF) {
            let start = from + pos + DESIGN_REF.len();
            let digits: String = raw[start..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            // `start` and the ASCII digits keep this a char boundary even
            // when no digits follow the section sign.
            from = start + digits.len();
            let Ok(n) = digits.parse::<u32>() else {
                continue;
            };
            let resolves = match sections {
                Some(s) => s.contains(&n),
                None => false,
            };
            if !resolves {
                findings.push(finding_at(
                    root,
                    file,
                    i + 1,
                    "dangling-design-ref",
                    format!(
                        "reference to DESIGN.md \u{a7}{n} but DESIGN.md has no `## {n}.` section"
                    ),
                ));
            }
        }
    }
}

/// Rule 9a: every `pub const NAME: &str = "EMG_...";` knob in the gpu-sim
/// env registry must appear (backticked) in the README's env-var table,
/// delimited by [`ENV_TABLE_BEGIN`] / [`ENV_TABLE_END`].
fn lint_env_table(root: &Path, findings: &mut Vec<Finding>) {
    let env_rs = root.join("crates/gpu-sim/src/env.rs");
    let Ok(text) = fs::read_to_string(&env_rs) else {
        return; // synthetic workspaces without an env registry
    };
    let mut knobs: Vec<(usize, String)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let code = code_part(line).trim_start();
        let Some(rest) = code.strip_prefix("pub const ") else {
            continue;
        };
        if !rest.contains(": &str") {
            continue;
        }
        let Some(open) = rest.find('"') else { continue };
        let Some(len) = rest[open + 1..].find('"') else {
            continue;
        };
        let name = &rest[open + 1..open + 1 + len];
        if name.starts_with("EMG_") {
            knobs.push((i + 1, name.to_string()));
        }
    }
    if knobs.is_empty() {
        return;
    }
    let readme = root.join("README.md");
    let readme_text = fs::read_to_string(&readme).unwrap_or_default();
    let table = match (
        readme_text.find(ENV_TABLE_BEGIN),
        readme_text.find(ENV_TABLE_END),
    ) {
        (Some(b), Some(e)) if b < e => &readme_text[b..e],
        _ => {
            findings.push(finding_at(
                root,
                &readme,
                0,
                "env-table",
                format!(
                    "README.md must carry a `{ENV_TABLE_BEGIN}` .. `{ENV_TABLE_END}` region \
                     documenting every EMG_* knob in gpu-sim's env registry"
                ),
            ));
            return;
        }
    };
    for (line, knob) in knobs {
        if !table.contains(&format!("`{knob}`")) {
            findings.push(finding_at(
                root,
                &env_rs,
                line,
                "env-table",
                format!(
                    "`{knob}` is registered in gpu-sim::env but missing from the README \
                     env-var table (between the env-table markers)"
                ),
            ));
        }
    }
}

fn finding_at(
    root: &Path,
    file: &Path,
    line: usize,
    rule: &'static str,
    message: String,
) -> Finding {
    Finding {
        path: file.strip_prefix(root).unwrap_or(file).to_path_buf(),
        line,
        rule,
        message,
    }
}

/// Recursively collects `.rs` files, skipping exempt directories.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = fs::read_dir(&d) else { continue };
        for entry in rd.filter_map(|e| e.ok()) {
            let p = entry.path();
            let fname = p
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            if p.is_dir() {
                if fname == "target" || fname == "vendor" || fname.contains("fixtures") {
                    continue;
                }
                stack.push(p);
            } else if fname.ends_with(".rs") && !p.to_string_lossy().contains("fixtures") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Whether `line` contains `unsafe` as a standalone keyword (not as part of
/// a longer identifier like `unsafe_op_in_unsafe_fn`).
fn has_unsafe_keyword(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let before_ok = start == 0 || !is_word_byte(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_word_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_comment_line(trimmed: &str) -> bool {
    trimmed.starts_with("//")
}

fn is_attr_line(trimmed: &str) -> bool {
    trimmed.starts_with("#[") || trimmed.starts_with("#![")
}

/// Whether the contiguous run of comment/attribute lines directly above
/// `idx` (or the line itself) contains a safety justification.
fn has_safety_comment(lines: &[&str], idx: usize) -> bool {
    let mentions = |s: &str| s.contains("SAFETY") || s.contains("# Safety");
    if mentions(lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if is_comment_line(t) {
            if mentions(t) {
                return true;
            }
        } else if !is_attr_line(t) && !is_continuation_line(t) {
            break;
        }
    }
    false
}

/// Whether a rustfmt-wrapped statement continues past this line — the
/// `unsafe` of `let x =\n    unsafe { … }` sits below its SAFETY comment,
/// so the upward walk must pass through the `let x =` line.
fn is_continuation_line(trimmed: &str) -> bool {
    let code = code_part(trimmed).trim_end();
    code.ends_with('=') || code.ends_with('(') || code.ends_with(',') || code.ends_with("=>")
}

/// Strips a trailing `//` line comment. Naive about `//` inside string
/// literals — acceptable for a text-level gate (the compiler-enforced
/// `#![deny(unsafe_code)]` is the ground truth; this pass is the early,
/// readable report).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Whether a line opens a function item (the chunk boundary for the
/// unlabeled-launch rule).
fn is_fn_line(raw: &str) -> bool {
    let t = code_part(raw).trim_start();
    t.starts_with("fn ")
        || t.starts_with("async fn ")
        || t.starts_with("const fn ")
        || (t.starts_with("pub") && t.contains("fn "))
}

/// Rule 7: in algorithm-crate `src/` files, a function that launches via a
/// bare entry point must open a `kernel_label` somewhere in its body.
fn lint_launch_labels(root: &Path, file: &Path, lines: &[&str], findings: &mut Vec<Finding>) {
    let fn_starts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| is_fn_line(l))
        .map(|(i, _)| i)
        .collect();
    for (k, &start) in fn_starts.iter().enumerate() {
        let end = fn_starts.get(k + 1).copied().unwrap_or(lines.len());
        let chunk = &lines[start..end];
        if chunk.iter().any(|l| code_part(l).contains("kernel_label(")) {
            continue;
        }
        for (j, l) in chunk.iter().enumerate() {
            let code = code_part(l);
            if let Some(pat) = LAUNCH_PATTERNS.iter().find(|p| code.contains(*p)) {
                findings.push(finding_at(
                    root,
                    file,
                    start + j + 1,
                    "unlabeled-launch",
                    format!(
                        "`{pat}` launches without a `kernel_label` in the enclosing \
                         function; the captured graph would show an anonymous kernel#N node"
                    ),
                ));
                break; // one finding per function is enough to act on
            }
        }
    }
}

fn lint_file(
    root: &Path,
    file: &Path,
    is_gpu_sim: bool,
    sections: &Option<std::collections::BTreeSet<u32>>,
    findings: &mut Vec<Finding>,
) {
    let Ok(text) = fs::read_to_string(file) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    // Rule 7 covers shipped pipeline code only: `src/` of the algorithm
    // crates. gpu-sim's own primitives label themselves, and test/bench
    // code never feeds the golden graphs.
    if !is_gpu_sim && file.components().any(|c| c.as_os_str() == "src") {
        lint_launch_labels(root, file, &lines, findings);
    }
    // Rule 9b applies everywhere a section can be cited, comments and
    // test strings included.
    lint_design_refs(root, file, &lines, sections, findings);
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        let lineno = i + 1;
        if is_comment_line(trimmed) {
            continue;
        }
        let code = code_part(raw);

        // Rule 8: empty justifications, everywhere (including gpu-sim).
        for pat in EMPTY_JUSTIFICATION_PATTERNS {
            if code.contains(pat) {
                findings.push(finding_at(
                    root,
                    file,
                    lineno,
                    "empty-justification",
                    format!("`{pat}` carries an empty justification; say why or remove it"),
                ));
            }
        }

        // Rule 5: an attribute is never a comment, so the code part
        // suffices (a commented-out allow is harmless).
        if code.contains("allow(unsafe_code)") {
            findings.push(finding_at(
                root,
                file,
                lineno,
                "allow-unsafe",
                "allow(unsafe_code) waives the workspace deny and is forbidden".into(),
            ));
        }

        if has_unsafe_keyword(code) {
            if !is_gpu_sim {
                findings.push(finding_at(root, file, lineno, "unsafe-outside-gpu-sim",
                    "`unsafe` is only permitted inside the gpu-sim access layer; use the safe tracked views".into()));
            } else if !has_safety_comment(&lines, i) {
                findings.push(finding_at(root, file, lineno, "missing-safety-comment",
                    "`unsafe` in gpu-sim requires a SAFETY: (or doc `# Safety`) justification in the comment run above".into()));
            }
        }

        if !is_gpu_sim {
            for pat in RAW_PTR_PATTERNS {
                if code.contains(pat) {
                    findings.push(finding_at(
                        root,
                        file,
                        lineno,
                        "raw-ptr-outside-gpu-sim",
                        format!("raw-pointer idiom `{pat}` is only permitted inside gpu-sim"),
                    ));
                }
            }
        }
    }
}

/// Runs the launch-graph golden gate: captures every shipped pipeline at
/// pool widths 1 and 4, checks the analyzer is clean (no unwhitelisted
/// hazards, no dead-write bytes), and compares both serializations byte
/// for byte against `ci/golden_graphs/<pipeline>.json`. Returns one error
/// string per failure (empty = gate passed).
pub fn check_golden_graphs(root: &Path) -> Vec<String> {
    use emg_cli::analyze::{capture_pipeline, PIPELINES};
    let dir = root.join("ci/golden_graphs");
    let mut errors = Vec::new();
    for &pipeline in PIPELINES {
        let golden_path = dir.join(format!("{pipeline}.json"));
        let golden = match fs::read_to_string(&golden_path) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!(
                    "{}: {e} (regenerate with ci/update_golden_graphs.py)",
                    golden_path.display()
                ));
                continue;
            }
        };
        for threads in [1usize, 4] {
            let graph = match capture_pipeline(pipeline, threads) {
                Ok(g) => g,
                Err(e) => {
                    errors.push(format!(
                        "{pipeline} (pool width {threads}): capture failed: {e}"
                    ));
                    continue;
                }
            };
            let analysis = graph.analyze();
            if !analysis.hazards.is_empty() {
                errors.push(format!(
                    "{pipeline} (pool width {threads}): {} unwhitelisted hazard(s), first: {:?}",
                    analysis.hazards.len(),
                    analysis.hazards[0]
                ));
            }
            if analysis.dead_bytes != 0 {
                errors.push(format!(
                    "{pipeline} (pool width {threads}): {} dead-write byte(s), first: {:?}",
                    analysis.dead_bytes, analysis.dead_writes[0]
                ));
            }
            if graph.to_json(pipeline) != golden {
                errors.push(format!(
                    "{pipeline} (pool width {threads}): captured launch graph differs from {} \
                     (regenerate with ci/update_golden_graphs.py if the change is intentional)",
                    golden_path.display()
                ));
            }
        }
    }
    errors
}
