//! CLI entry point: `cargo run -p xtask -- lint | analyze`.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("analyze") => analyze(),
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint|analyze\n       (got: {:?})",
                other
            );
            ExitCode::from(2)
        }
    }
}

/// crates/xtask/ -> workspace root.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let findings = xtask::lint_workspace(&workspace_root());
    if findings.is_empty() {
        println!("xtask lint: clean ({} rules)", 9);
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn analyze() -> ExitCode {
    let errors = xtask::check_golden_graphs(&workspace_root());
    if errors.is_empty() {
        println!(
            "xtask analyze: all pipeline launch graphs match ci/golden_graphs (widths 1 and 4)"
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{e}");
        }
        eprintln!("xtask analyze: {} failure(s)", errors.len());
        ExitCode::FAILURE
    }
}
