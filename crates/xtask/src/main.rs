//! CLI entry point: `cargo run -p xtask -- lint`.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint\n       (got: {:?})",
                other
            );
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    // crates/xtask/ -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();
    let findings = xtask::lint_workspace(&root);
    if findings.is_empty() {
        println!("xtask lint: clean ({} rules)", 6);
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}
