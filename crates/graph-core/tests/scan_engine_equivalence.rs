//! CSR construction must be bit-identical across scan engines: the
//! device build routes its offsets through `scan_exclusive_with_total`,
//! which dispatches on [`ScanEngine`].

use gpu_sim::{Device, DeviceConfig, ScanEngine};
use graph_core::{Csr, EdgeList};

fn dev(engine: ScanEngine) -> Device {
    Device::with_config(DeviceConfig {
        threads: Some(4),
        block_size: 64,
        seq_threshold: 16,
        scan_engine: engine,
        ..Default::default()
    })
}

fn ladder(n: u32) -> EdgeList {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((v - 1, v));
        if v >= 2 {
            edges.push((v - 2, v));
        }
    }
    EdgeList::new(n as usize, edges)
}

#[test]
fn device_csr_is_engine_independent() {
    for n in [2u32, 65, 300, 2000] {
        let graph = ladder(n);
        let host = Csr::from_edge_list(&graph);
        let lb = Csr::from_edge_list_on(&dev(ScanEngine::Lookback), &graph);
        let tp = Csr::from_edge_list_on(&dev(ScanEngine::TwoPass), &graph);
        assert_eq!(lb, tp, "n={n}");
        assert_eq!(lb, host, "n={n}");
    }
}
