//! Plain and concurrent bitmaps.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitmap of `len` zero bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

impl FromIterator<bool> for BitSet {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut set = BitSet::new(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            set.set(i, b);
        }
        set
    }
}

/// A fixed-size concurrent bitmap: `set` and `test_and_set` may be called
/// from many threads simultaneously (used for CK's visited-edge marking and
/// BFS claims).
#[derive(Debug)]
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitSet {
    /// Creates a bitmap of `len` zero bits.
    pub fn new(len: usize) -> Self {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        words.resize_with(len.div_ceil(64), || AtomicU64::new(0));
        Self { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64].load(Ordering::Relaxed) >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` (relaxed fetch-or).
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64].fetch_or(1u64 << (i % 64), Ordering::Relaxed);
    }

    /// Atomically sets bit `i`; returns `true` if this call changed it from
    /// 0 to 1 (i.e. the caller "won" the claim).
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Snapshot into a plain [`BitSet`] (no concurrent writers allowed for a
    /// meaningful result).
    pub fn to_bitset(&self) -> BitSet {
        BitSet {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::new(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for i in [3usize, 77, 150] {
            b.set(i, true);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 77, 150]);
    }

    #[test]
    fn from_iterator() {
        let b: BitSet = (0..10).map(|i| i % 3 == 0).collect();
        assert_eq!(b.count_ones(), 4); // 0,3,6,9
    }

    #[test]
    fn atomic_claims_are_exclusive() {
        let b = AtomicBitSet::new(1000);
        let winners: usize = (0..8)
            .into_par_iter()
            .map(|_| (0..1000).filter(|&i| b.test_and_set(i)).count())
            .sum();
        assert_eq!(winners, 1000, "each bit must be claimed exactly once");
        assert_eq!(b.count_ones(), 1000);
    }

    #[test]
    fn atomic_to_bitset_snapshot() {
        let b = AtomicBitSet::new(70);
        b.set(69);
        b.set(0);
        let plain = b.to_bitset();
        assert!(plain.get(69) && plain.get(0));
        assert_eq!(plain.count_ones(), 2);
    }

    #[test]
    fn empty_sets() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        let a = AtomicBitSet::new(0);
        assert!(a.is_empty());
    }
}
