//! Unordered undirected edge lists — the paper's §2.1 input format:
//! "a very unstructured input: an unordered collection of undirected edges,
//! represented as pairs of node identifiers".

use crate::ids::NodeId;

/// An undirected graph stored as an unordered list of node-id pairs.
///
/// Multi-edges and self-loops are representable (generators may produce
/// them); [`EdgeList::simplified`] removes both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl EdgeList {
    /// Creates an edge list over `num_nodes` nodes from explicit pairs.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn new(num_nodes: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
        }
        Self { num_nodes, edges }
    }

    /// An empty graph with `num_nodes` isolated nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge pairs.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn push(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push((u, v));
    }

    /// Returns a copy without self-loops and duplicate edges (direction-
    /// insensitive). Edge order is not preserved.
    pub fn simplified(&self) -> EdgeList {
        let mut keys: Vec<u64> = self
            .edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| {
                let (a, b) = if u <= v { (u, v) } else { (v, u) };
                crate::ids::pack_edge(a, b)
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        EdgeList {
            num_nodes: self.num_nodes,
            edges: keys.into_iter().map(crate::ids::unpack_edge).collect(),
        }
    }

    /// Consumes the list, returning the raw pairs.
    pub fn into_edges(self) -> Vec<(NodeId, NodeId)> {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(el.num_nodes(), 4);
        assert_eq!(el.num_edges(), 3);
        assert_eq!(el.edges()[1], (1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = EdgeList::new(3, vec![(0, 3)]);
    }

    #[test]
    fn push_appends() {
        let mut el = EdgeList::empty(5);
        el.push(0, 4);
        assert_eq!(el.num_edges(), 1);
    }

    #[test]
    fn simplified_removes_loops_and_duplicates() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 0), (2, 2), (1, 2), (1, 2), (3, 1)]);
        let s = el.simplified();
        assert_eq!(s.num_edges(), 3); // {0,1}, {1,2}, {1,3}
        assert!(s.edges().iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn simplified_of_clean_graph_is_same_size() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(el.simplified().num_edges(), 3);
    }
}
