//! Rooted trees as parent arrays — the LCA input format of §3.2.

use crate::edge_list::EdgeList;
use crate::ids::{NodeId, INVALID_NODE};

/// A rooted tree over nodes `0..n`, stored as a parent array.
///
/// `parent[root] == INVALID_NODE`; every other node stores its parent.
/// Construction validates that the structure really is a tree (exactly one
/// root, no cycles, every node reaches the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    parent: Vec<NodeId>,
    root: NodeId,
}

/// Errors returned by [`Tree`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The parent array is empty.
    Empty,
    /// `parent[root]` was not `INVALID_NODE`, or multiple roots exist.
    BadRoot(NodeId),
    /// A parent pointer leaves `0..n`.
    ParentOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Its out-of-range parent value.
        parent: NodeId,
    },
    /// Following parent pointers from `node` never reaches the root.
    Cycle(NodeId),
    /// The edge set does not connect all nodes to the root.
    Disconnected(NodeId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree must have at least one node"),
            TreeError::BadRoot(r) => write!(f, "invalid root designation at node {r}"),
            TreeError::ParentOutOfRange { node, parent } => {
                write!(f, "node {node} has out-of-range parent {parent}")
            }
            TreeError::Cycle(v) => write!(f, "parent pointers from node {v} form a cycle"),
            TreeError::Disconnected(v) => write!(f, "node {v} is not connected to the root"),
        }
    }
}

impl std::error::Error for TreeError {}

impl Tree {
    /// Builds a tree from a parent array. `parent[root]` must equal
    /// [`INVALID_NODE`]; all nodes must reach `root`.
    pub fn from_parent_array(parent: Vec<NodeId>, root: NodeId) -> Result<Self, TreeError> {
        let n = parent.len();
        if n == 0 {
            return Err(TreeError::Empty);
        }
        if (root as usize) >= n || parent[root as usize] != INVALID_NODE {
            return Err(TreeError::BadRoot(root));
        }
        for (v, &p) in parent.iter().enumerate() {
            if v as NodeId != root {
                if p == INVALID_NODE {
                    return Err(TreeError::BadRoot(v as NodeId));
                }
                if (p as usize) >= n {
                    return Err(TreeError::ParentOutOfRange {
                        node: v as NodeId,
                        parent: p,
                    });
                }
            }
        }
        // Cycle check: follow parents, stamping the epoch of the walk that
        // first visited each node. Amortized O(n).
        let mut visited_epoch = vec![u32::MAX; n];
        visited_epoch[root as usize] = 0;
        for start in 0..n {
            if visited_epoch[start] != u32::MAX {
                continue;
            }
            let epoch = start as u32 + 1;
            let mut v = start;
            // Walk until a previously stamped node.
            while visited_epoch[v] == u32::MAX {
                visited_epoch[v] = epoch;
                v = parent[v] as usize;
            }
            if visited_epoch[v] == epoch && v as NodeId != root {
                // Came back to our own walk without passing the root.
                return Err(TreeError::Cycle(v as NodeId));
            }
        }
        Ok(Self { parent, root })
    }

    /// Builds a rooted tree from `n-1` undirected edges by BFS from `root`.
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(NodeId, NodeId)],
        root: NodeId,
    ) -> Result<Self, TreeError> {
        if num_nodes == 0 {
            return Err(TreeError::Empty);
        }
        if root as usize >= num_nodes {
            return Err(TreeError::BadRoot(root));
        }
        let el = EdgeList::new(num_nodes, edges.to_vec());
        let csr = crate::csr::Csr::from_edge_list(&el);
        let mut parent = vec![INVALID_NODE; num_nodes];
        let mut seen = vec![false; num_nodes];
        seen[root as usize] = true;
        let mut queue = std::collections::VecDeque::with_capacity(num_nodes);
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &w in csr.neighbors(u) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = u;
                    queue.push_back(w);
                }
            }
        }
        if let Some(v) = seen.iter().position(|&s| !s) {
            return Err(TreeError::Disconnected(v as NodeId));
        }
        Ok(Self { parent, root })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v as usize];
        (p != INVALID_NODE).then_some(p)
    }

    /// The raw parent array (`INVALID_NODE` at the root).
    pub fn parent_slice(&self) -> &[NodeId] {
        &self.parent
    }

    /// The `n - 1` tree edges as `(child, parent)` pairs, in child order.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.num_nodes() as NodeId)
            .filter(|&v| v != self.root)
            .map(|v| (v, self.parent[v as usize]))
            .collect()
    }

    /// Depth of `v` (root has depth 0). O(depth) — intended for tests and
    /// small utilities, not hot paths.
    pub fn depth_of(&self, v: NodeId) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// The path from `v` up to and including the root. O(depth).
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 6-node tree of the paper's Figure 1 (root 0; children 2,3,4;
    /// node 2 has children 1 and 5).
    pub(crate) fn paper_tree() -> Tree {
        // parent: 0 -> INVALID, 1 -> 2, 2 -> 0, 3 -> 0, 4 -> 0, 5 -> 2
        Tree::from_parent_array(vec![INVALID_NODE, 2, 0, 0, 0, 2], 0).unwrap()
    }

    #[test]
    fn paper_tree_structure() {
        let t = paper_tree();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(1), Some(2));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.depth_of(5), 2);
        assert_eq!(t.path_to_root(1), vec![1, 2, 0]);
    }

    #[test]
    fn edges_enumerates_child_parent_pairs() {
        let t = paper_tree();
        let edges = t.edges();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(1, 2)));
        assert!(edges.contains(&(2, 0)));
        assert!(!edges.iter().any(|&(c, _)| c == 0));
    }

    #[test]
    fn from_edges_builds_bfs_tree() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let t = Tree::from_edges(4, &edges, 0).unwrap();
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.depth_of(3), 3);
        // Re-rooting changes parents.
        let t2 = Tree::from_edges(4, &edges, 3).unwrap();
        assert_eq!(t2.parent(0), Some(1));
        assert_eq!(t2.depth_of(0), 3);
    }

    #[test]
    fn rejects_cycle() {
        // 1 -> 2 -> 3 -> 1 cycle beside root 0.
        let err = Tree::from_parent_array(vec![INVALID_NODE, 2, 3, 1], 0).unwrap_err();
        assert!(matches!(err, TreeError::Cycle(_)));
    }

    #[test]
    fn rejects_two_roots() {
        let err = Tree::from_parent_array(vec![INVALID_NODE, INVALID_NODE], 0).unwrap_err();
        assert!(matches!(err, TreeError::BadRoot(1)));
    }

    #[test]
    fn rejects_bad_root_index() {
        let err = Tree::from_parent_array(vec![INVALID_NODE], 5).unwrap_err();
        assert!(matches!(err, TreeError::BadRoot(5)));
    }

    #[test]
    fn rejects_out_of_range_parent() {
        let err = Tree::from_parent_array(vec![INVALID_NODE, 9], 0).unwrap_err();
        assert!(matches!(
            err,
            TreeError::ParentOutOfRange { node: 1, parent: 9 }
        ));
    }

    #[test]
    fn rejects_disconnected_edges() {
        let err = Tree::from_edges(4, &[(0, 1), (2, 3)], 0).unwrap_err();
        assert!(matches!(err, TreeError::Disconnected(_)));
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::from_parent_array(vec![INVALID_NODE], 0).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.depth_of(0), 0);
        assert!(t.edges().is_empty());
    }

    #[test]
    fn long_path_does_not_overflow_stack() {
        let n = 1_000_000;
        let mut parent = vec![0 as NodeId; n];
        parent[0] = INVALID_NODE;
        for (v, p) in parent.iter_mut().enumerate().skip(1) {
            *p = (v - 1) as NodeId;
        }
        let t = Tree::from_parent_array(parent, 0).unwrap();
        assert_eq!(t.depth_of((n - 1) as NodeId), n - 1);
    }
}
