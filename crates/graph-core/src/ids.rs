//! Identifier types.
//!
//! The paper scales to 32M nodes and 182M edges; `u32` identifiers cover
//! that with half the memory traffic of `usize`, which matters for the
//! bandwidth-bound kernels (see the perf-book guidance on smaller integers).

/// A node identifier (index into per-node arrays).
pub type NodeId = u32;

/// An undirected edge identifier (index into an [`crate::EdgeList`]).
pub type EdgeId = u32;

/// Sentinel for "no node" (root's parent, unreached BFS vertices, ...).
pub const INVALID_NODE: NodeId = u32::MAX;

/// Packs a directed half-edge `(u, v)` into a lexicographically ordered
/// `u64` sort key.
#[inline]
pub fn pack_edge(u: NodeId, v: NodeId) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// Inverse of [`pack_edge`].
#[inline]
pub fn unpack_edge(key: u64) -> (NodeId, NodeId) {
    ((key >> 32) as NodeId, key as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &(u, v) in &[(0, 0), (1, 2), (u32::MAX - 1, 7), (123, u32::MAX - 1)] {
            assert_eq!(unpack_edge(pack_edge(u, v)), (u, v));
        }
    }

    #[test]
    fn pack_orders_lexicographically() {
        assert!(pack_edge(1, 9) < pack_edge(2, 0));
        assert!(pack_edge(3, 4) < pack_edge(3, 5));
    }
}
