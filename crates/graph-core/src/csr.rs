//! Compressed sparse row adjacency with stable undirected edge identifiers.
//!
//! Every undirected edge `e = (u, v)` of the source [`EdgeList`] appears
//! twice in the adjacency — once per direction — and both copies carry the
//! same [`EdgeId`] `e`, so per-edge results (e.g. "is edge `e` a bridge")
//! can be reported against the caller's original edge order.

use crate::edge_list::EdgeList;
use crate::ids::{EdgeId, NodeId};
use gpu_sim::device::SharedSlice;
use gpu_sim::Device;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// CSR adjacency structure of an undirected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    edge_ids: Vec<EdgeId>,
    num_edges: usize,
}

impl Csr {
    /// Builds the CSR form of `edges`. Neighbor lists are sorted by
    /// `(neighbor, edge id)` for determinism.
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX / 2` edges.
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        let n = edges.num_nodes();
        let m = edges.num_edges();
        assert!(m <= (u32::MAX / 2) as usize, "graph too large for u32 CSR");

        // Degree count.
        let mut degrees = vec![0u32; n];
        for &(u, v) in edges.edges() {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        // Offsets.
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        // Parallel fill with atomic cursors.
        let mut neighbors = vec![0 as NodeId; 2 * m];
        let mut edge_ids = vec![0 as EdgeId; 2 * m];
        {
            let cursors: Vec<AtomicU32> = offsets[..n].iter().map(|&o| AtomicU32::new(o)).collect();
            // fetch_add hands out unique slots within each node's
            // [offsets[v], offsets[v+1]) range, so each slot has one writer.
            let nb_shared = SharedSlice::new(&mut neighbors);
            let ei_shared = SharedSlice::new(&mut edge_ids);
            edges
                .edges()
                .par_iter()
                .enumerate()
                .for_each(|(e, &(u, v))| {
                    let pu = cursors[u as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    let pv = cursors[v as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    nb_shared.write(pu, v);
                    ei_shared.write(pu, e as EdgeId);
                    nb_shared.write(pv, u);
                    ei_shared.write(pv, e as EdgeId);
                });
        }
        let mut csr = Self {
            offsets,
            neighbors,
            edge_ids,
            num_edges: m,
        };
        csr.sort_adjacency();
        csr
    }

    /// Builds the CSR form of `edges` with the device's kernel launches —
    /// a counting sort of the directed arcs by source node: per-source arc
    /// counts (atomic histogram), offsets via [`Device::scan_exclusive`],
    /// then a placement launch. Bit-identical to [`Csr::from_edge_list`]
    /// (both sort each adjacency by `(neighbor, edge id)` at the end), but
    /// every phase is a device primitive, so the construction shows up in
    /// the device metrics and scales with the pool like any other kernel.
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX / 2` edges.
    pub fn from_edge_list_on(device: &Device, edges: &EdgeList) -> Self {
        let n = edges.num_nodes();
        let m = edges.num_edges();
        assert!(m <= (u32::MAX / 2) as usize, "graph too large for u32 CSR");

        // Phase 1: per-source directed-arc counts (each undirected edge is
        // two arcs). Arena-backed so the scratch has a deterministic
        // lifetime in the captured launch graph.
        let mut counts = device.alloc_filled(n, 0u32);
        let pairs = edges.edges();
        {
            let _k = device.kernel_label("csr_count_arcs");
            device.capture_read(pairs);
            let cells = device
                .atomic_u32(&mut counts)
                .benign("degree histogram: colliding fetch_add increments commute");
            device.for_each(m, |e| {
                let (u, v) = pairs[e];
                cells.fetch_add(u as usize, 1);
                cells.fetch_add(v as usize, 1);
            });
        }

        // Phase 2: offsets = exclusive scan of the counts, padded by one
        // zero so the scan writes all n + 1 slots (offsets[n] = total) in
        // place — no append, no realloc.
        let mut offsets = vec![0u32; n + 1];
        let total = {
            let counts_ref = &counts[..];
            device.capture_read(counts_ref);
            device.map_scan_exclusive_into(
                n + 1,
                |v| if v < n { counts_ref[v] } else { 0 },
                &mut offsets,
                0u32,
                |a, b| a + b,
            )
        };
        drop(counts);
        debug_assert_eq!(total as usize, 2 * m);

        // Phase 3: scatter each arc to its slot (counting-sort placement
        // with atomic per-node cursors).
        let mut neighbors = vec![0 as NodeId; 2 * m];
        let mut edge_ids = vec![0 as EdgeId; 2 * m];
        {
            let _k = device.kernel_label("csr_place_arcs");
            // The arc pairs and offsets feed the closure, invisible to the
            // tracked views — declare the reads for the capture plane.
            device.capture_read(pairs);
            device.capture_read(&offsets[..]);
            let cursors: Vec<AtomicU32> = offsets[..n].iter().map(|&o| AtomicU32::new(o)).collect();
            // fetch_add hands out unique slots within each node's
            // [offsets[v], offsets[v+1]) range, so each slot has one writer.
            let nb_shared = device.shared(&mut neighbors);
            let ei_shared = device.shared(&mut edge_ids);
            device.for_each(m, |e| {
                let (u, v) = pairs[e];
                let pu = cursors[u as usize].fetch_add(1, Ordering::Relaxed) as usize;
                let pv = cursors[v as usize].fetch_add(1, Ordering::Relaxed) as usize;
                nb_shared.write(pu, v);
                ei_shared.write(pu, e as EdgeId);
                nb_shared.write(pv, u);
                ei_shared.write(pv, e as EdgeId);
            });
        }
        let mut csr = Self {
            offsets,
            neighbors,
            edge_ids,
            num_edges: m,
        };
        csr.sort_adjacency();
        csr
    }

    /// Reassembles a CSR from its raw arrays (the shape `emgbin` caches
    /// store), validating every structural invariant — a corrupt cache
    /// must produce an error, not a CSR that panics later.
    ///
    /// # Errors
    /// Describes the first violated invariant: offset monotonicity/bounds,
    /// array length mismatches, or out-of-range neighbor/edge ids.
    pub fn from_raw_parts(
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        edge_ids: Vec<EdgeId>,
        num_edges: usize,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets array is empty (needs num_nodes + 1 entries)".into());
        }
        let n = offsets.len() - 1;
        if offsets[0] != 0 {
            return Err(format!("offsets[0] = {} (expected 0)", offsets[0]));
        }
        if let Some(v) = offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!(
                "offsets not monotone at node {v}: {} > {}",
                offsets[v],
                offsets[v + 1]
            ));
        }
        let arcs = 2 * num_edges;
        if *offsets.last().unwrap() as usize != arcs {
            return Err(format!(
                "offsets end at {} but {num_edges} edges need {arcs} arc slots",
                offsets.last().unwrap()
            ));
        }
        if neighbors.len() != arcs || edge_ids.len() != arcs {
            return Err(format!(
                "array lengths {} / {} do not match {arcs} arcs",
                neighbors.len(),
                edge_ids.len()
            ));
        }
        if let Some(&bad) = neighbors.iter().find(|&&v| v as usize >= n) {
            return Err(format!("neighbor id {bad} out of range for {n} nodes"));
        }
        if let Some(&bad) = edge_ids.iter().find(|&&e| e as usize >= num_edges) {
            return Err(format!("edge id {bad} out of range for {num_edges} edges"));
        }
        Ok(Self {
            offsets,
            neighbors,
            edge_ids,
            num_edges,
        })
    }

    /// Sorts each adjacency list by `(neighbor, edge id)` in parallel —
    /// restores determinism after the atomic fill.
    fn sort_adjacency(&mut self) {
        let n = self.num_nodes();
        let offsets = &self.offsets;
        // Zip the two arrays per node; sort tiny runs.
        let mut zipped: Vec<(NodeId, EdgeId)> = self
            .neighbors
            .iter()
            .copied()
            .zip(self.edge_ids.iter().copied())
            .collect();
        // Carve the zipped array into per-node runs (offsets are monotone,
        // so successive split_at_mut calls partition it disjointly), then
        // sort every run in parallel.
        let mut runs: Vec<&mut [(NodeId, EdgeId)]> = Vec::with_capacity(n);
        let mut rest: &mut [(NodeId, EdgeId)] = &mut zipped;
        let mut prev = 0usize;
        for v in 0..n {
            let e = offsets[v + 1] as usize;
            let (run, tail) = rest.split_at_mut(e - prev);
            runs.push(run);
            rest = tail;
            prev = e;
        }
        runs.into_par_iter().for_each(|run| run.sort_unstable());
        for (i, (nb, ei)) in zipped.into_iter().enumerate() {
            self.neighbors[i] = nb;
            self.edge_ids[i] = ei;
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v` (counting multi-edges and both endpoints of loops).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbor node ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Undirected edge ids incident to `v`, parallel to [`Csr::neighbors`].
    #[inline]
    pub fn edge_ids(&self, v: NodeId) -> &[EdgeId] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.edge_ids[s..e]
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Average undirected degree `2m / n` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.num_nodes() as f64
    }

    /// `(neighbor, edge id)` pairs incident to `v`.
    pub fn incident(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_ids(v).iter().copied())
    }

    /// The raw offsets array (`num_nodes + 1` boundaries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw neighbor array (length `2 * num_edges`).
    pub fn raw_neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// The raw edge-id array, parallel to [`Csr::raw_neighbors`].
    pub fn raw_edge_ids(&self) -> &[EdgeId] {
        &self.edge_ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> EdgeList {
        // 0-1, 1-2, 2-0 triangle; 2-3 tail.
        EdgeList::new(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn degrees_and_neighbors() {
        let csr = Csr::from_edge_list(&triangle_plus_tail());
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.degree(2), 3);
        assert_eq!(csr.neighbors(2), &[0, 1, 3]);
        assert_eq!(csr.neighbors(3), &[2]);
    }

    #[test]
    fn edge_ids_match_source_order() {
        let csr = Csr::from_edge_list(&triangle_plus_tail());
        // Edge 3 is (2,3).
        assert_eq!(csr.edge_ids(3), &[3]);
        let incident2: Vec<(u32, u32)> = csr.incident(2).collect();
        assert!(incident2.contains(&(0, 2))); // edge 2 = (2,0)
        assert!(incident2.contains(&(1, 1))); // edge 1 = (1,2)
        assert!(incident2.contains(&(3, 3))); // edge 3 = (2,3)
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edge_list(&EdgeList::empty(3));
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.degree(0), 0);
        assert!(csr.neighbors(1).is_empty());
    }

    #[test]
    fn multi_edges_kept_with_distinct_ids() {
        let el = EdgeList::new(2, vec![(0, 1), (0, 1)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.edge_ids(0), &[0, 1]);
    }

    #[test]
    fn self_loop_counts_twice_in_degree() {
        let el = EdgeList::new(2, vec![(0, 0), (0, 1)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.neighbors(1), &[0]);
    }

    #[test]
    fn larger_random_graph_is_consistent() {
        // Deterministic pseudo-random pairs.
        let n = 1000usize;
        let mut edges = Vec::new();
        let mut state = 12345u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 33) % n as u64) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((state >> 33) % n as u64) as u32;
            edges.push((u, v));
        }
        let el = EdgeList::new(n, edges.clone());
        let csr = Csr::from_edge_list(&el);
        // Sum of degrees = 2m.
        let total: usize = (0..n as u32).map(|v| csr.degree(v)).sum();
        assert_eq!(total, 2 * edges.len());
        // Every edge appears in both endpoint lists with its id.
        for (e, &(u, v)) in edges.iter().enumerate() {
            assert!(csr.incident(u).any(|(nb, id)| nb == v && id == e as u32));
            assert!(csr.incident(v).any(|(nb, id)| nb == u && id == e as u32));
        }
    }

    #[test]
    fn neighbors_sorted_for_determinism() {
        let el = EdgeList::new(5, vec![(0, 4), (0, 2), (0, 3), (0, 1)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn device_builder_matches_rayon_builder() {
        let device = Device::new();
        // Deterministic pseudo-random multigraph with loops.
        let n = 500usize;
        let mut edges = Vec::new();
        let mut state = 99u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 33) % n as u64) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((state >> 33) % n as u64) as u32;
            edges.push((u, v));
        }
        let el = EdgeList::new(n, edges);
        assert_eq!(
            Csr::from_edge_list_on(&device, &el),
            Csr::from_edge_list(&el)
        );
        // Degenerate shapes.
        let empty = EdgeList::empty(3);
        assert_eq!(
            Csr::from_edge_list_on(&device, &empty),
            Csr::from_edge_list(&empty)
        );
        let nothing = EdgeList::empty(0);
        assert_eq!(
            Csr::from_edge_list_on(&device, &nothing),
            Csr::from_edge_list(&nothing)
        );
    }

    #[test]
    fn raw_parts_round_trip_and_validation() {
        let csr = Csr::from_edge_list(&triangle_plus_tail());
        let rebuilt = Csr::from_raw_parts(
            csr.offsets().to_vec(),
            csr.raw_neighbors().to_vec(),
            csr.raw_edge_ids().to_vec(),
            csr.num_edges(),
        )
        .unwrap();
        assert_eq!(rebuilt, csr);

        // Each invariant violation is caught.
        assert!(Csr::from_raw_parts(vec![], vec![], vec![], 0)
            .unwrap_err()
            .contains("empty"));
        assert!(Csr::from_raw_parts(vec![1, 2], vec![0, 0], vec![0, 0], 1)
            .unwrap_err()
            .contains("offsets[0]"));
        assert!(Csr::from_raw_parts(vec![0, 2, 1], vec![0], vec![0], 1)
            .unwrap_err()
            .contains("monotone"));
        assert!(Csr::from_raw_parts(vec![0, 1], vec![0, 0], vec![0, 0], 1)
            .unwrap_err()
            .contains("arc slots"));
        assert!(Csr::from_raw_parts(vec![0, 2], vec![0], vec![0, 0], 1)
            .unwrap_err()
            .contains("lengths"));
        assert!(Csr::from_raw_parts(vec![0, 2], vec![0, 9], vec![0, 0], 1)
            .unwrap_err()
            .contains("neighbor id 9"));
        assert!(Csr::from_raw_parts(vec![0, 2], vec![0, 0], vec![0, 7], 1)
            .unwrap_err()
            .contains("edge id 7"));
    }

    #[test]
    fn degree_statistics() {
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.max_degree(), 3);
        assert!((csr.avg_degree() - 1.5).abs() < 1e-9);
        let empty = Csr::from_edge_list(&EdgeList::empty(0));
        assert_eq!(empty.max_degree(), 0);
        assert_eq!(empty.avg_degree(), 0.0);
    }
}
