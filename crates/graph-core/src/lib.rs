//! # graph-core — shared graph and tree data structures
//!
//! Plain-old-data graph representations used by every crate in the
//! `euler-meets-gpu` workspace:
//!
//! * [`EdgeList`] — an unordered collection of undirected edges, the paper's
//!   "very unstructured input" (§2.1);
//! * [`Csr`] — compressed sparse row adjacency with stable edge identifiers;
//! * [`Tree`] — a rooted tree as a parent array, the input format of the LCA
//!   experiments (§3.2: "the input is given to the algorithms as an array of
//!   parents");
//! * [`AtomicBitSet`] / [`BitSet`] — concurrent and plain bitmaps used for
//!   visited marking and bridge flags.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod csr;
pub mod edge_list;
pub mod ids;
pub mod tree;

pub use bitset::{AtomicBitSet, BitSet};
pub use csr::Csr;
pub use edge_list::EdgeList;
pub use ids::{EdgeId, NodeId, INVALID_NODE};
pub use tree::Tree;
