//! Property tests: arbitrary graphs survive a write → detect → parse round
//! trip in every format.

use graph_core::EdgeList;
use graph_io::{detect_format, parse_as, Format};
use proptest::prelude::*;

/// Canonical multiset of undirected edges (self-loops included).
fn canonical(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut c: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    c.sort_unstable();
    c
}

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..150)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snap_round_trip(graph in arb_graph()) {
        let mut buf = Vec::new();
        graph_io::snap::write(&mut buf, &graph).unwrap();
        let text = String::from_utf8(buf).unwrap();
        prop_assert_eq!(detect_format(&text), Some(Format::Snap));
        let parsed = parse_as(&text, Format::Snap).unwrap();
        // SNAP interns ids in first-appearance order; isolated trailing
        // nodes are dropped, so compare edges via the id mapping.
        let mapped: Vec<(u32, u32)> = parsed
            .graph
            .edges()
            .iter()
            .map(|&(u, v)| {
                (
                    parsed.original_ids[u as usize] as u32,
                    parsed.original_ids[v as usize] as u32,
                )
            })
            .collect();
        prop_assert_eq!(canonical(&mapped), canonical(graph.edges()));
    }

    #[test]
    fn dimacs_round_trip(graph in arb_graph()) {
        let mut buf = Vec::new();
        graph_io::dimacs::write(&mut buf, &graph).unwrap();
        let text = String::from_utf8(buf).unwrap();
        prop_assert_eq!(detect_format(&text), Some(Format::Dimacs));
        let parsed = parse_as(&text, Format::Dimacs).unwrap();
        prop_assert_eq!(parsed.graph.num_nodes(), graph.num_nodes());
        prop_assert_eq!(canonical(parsed.graph.edges()), canonical(graph.edges()));
    }

    #[test]
    fn metis_round_trip(graph in arb_graph()) {
        let mut buf = Vec::new();
        graph_io::metis::write(&mut buf, &graph).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_as(&text, Format::Metis).unwrap();
        prop_assert_eq!(parsed.graph.num_nodes(), graph.num_nodes());
        prop_assert_eq!(canonical(parsed.graph.edges()), canonical(graph.edges()));
    }

    #[test]
    fn detection_never_misparses_own_output(graph in arb_graph()) {
        // Whatever detect_format claims about our own METIS output, the
        // resulting parse must not silently corrupt the graph: either it
        // detects METIS and round-trips, or parsing under the wrong guess
        // errors out (never returns a *different* graph silently).
        let mut buf = Vec::new();
        graph_io::metis::write(&mut buf, &graph).unwrap();
        let text = String::from_utf8(buf).unwrap();
        if let Some(fmt) = detect_format(&text) {
            if let Ok(parsed) = parse_as(&text, fmt) {
                if fmt == Format::Metis {
                    prop_assert_eq!(
                        canonical(parsed.graph.edges()),
                        canonical(graph.edges())
                    );
                }
            }
        }
    }
}
