//! Property tests for PR 4's ingestion pipeline: the chunked parallel
//! parsers are pinned bit-identical to the sequential oracles — including
//! CRLF line endings, inputs without a trailing newline, and
//! comment-heavy files — and `emgbin` round-trips [`ParsedGraph`] and CSR
//! exactly.

use graph_core::{Csr, EdgeList};
use graph_io::{binary, dimacs, metis, snap, ParseError, ParsedGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..150)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

/// The three text formats as (name, writer, sequential parse).
type Writer = fn(&mut Vec<u8>, &EdgeList) -> std::io::Result<()>;
type Parser = fn(&str) -> Result<ParsedGraph, ParseError>;

fn formats() -> [(&'static str, Writer, Parser); 3] {
    [
        ("snap", snap::write, snap::parse),
        ("dimacs", dimacs::write, dimacs::parse),
        ("metis", metis::write, metis::parse),
    ]
}

/// Asserts the chunked parse equals the sequential parse of `text` at
/// several awkward chunk counts (bit-identical edges, node count and id
/// mapping — or the identical error).
fn assert_chunked_matches(name: &str, text: &str, seq: &Result<ParsedGraph, ParseError>) {
    for chunks in [1, 2, 3, 5, 13] {
        let par = (match name {
            "snap" => snap::parse_chunks,
            "dimacs" => dimacs::parse_chunks,
            _ => metis::parse_chunks,
        })(text, chunks);
        match (seq, &par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(p.graph.num_nodes(), s.graph.num_nodes(), "{name}/{chunks}");
                assert_eq!(p.graph.edges(), s.graph.edges(), "{name}/{chunks}");
                assert_eq!(p.original_ids, s.original_ids, "{name}/{chunks}");
            }
            (Err(se), Err(pe)) => assert_eq!(pe, se, "{name}/{chunks}"),
            _ => panic!("{name}/{chunks}: seq {seq:?} vs chunked {par:?}"),
        }
    }
}

/// Rewrites `text` with a comment line (format-appropriate marker)
/// injected after every line — stresses positional bookkeeping.
fn comment_heavy(text: &str, marker: &str) -> String {
    let mut out = String::with_capacity(text.len() * 2);
    out.push_str(marker);
    out.push('\n');
    for line in text.lines() {
        out.push_str(line);
        out.push('\n');
        out.push_str(marker);
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunked_parse_is_bit_identical(graph in arb_graph()) {
        for (name, write, parse) in formats() {
            let mut buf = Vec::new();
            write(&mut buf, &graph).unwrap();
            let text = String::from_utf8(buf).unwrap();
            let seq = parse(&text);
            assert_chunked_matches(name, &text, &seq);
        }
    }

    #[test]
    fn chunked_parse_handles_crlf_and_missing_trailing_newline(graph in arb_graph()) {
        for (name, write, parse) in formats() {
            let mut buf = Vec::new();
            write(&mut buf, &graph).unwrap();
            let text = String::from_utf8(buf).unwrap();

            // CRLF line endings parse to the same graph as LF, sequential
            // and chunked alike.
            let crlf = text.replace('\n', "\r\n");
            let seq_lf = parse(&text).unwrap();
            let seq_crlf = parse(&crlf).unwrap();
            prop_assert_eq!(seq_crlf.graph.edges(), seq_lf.graph.edges(), "{} crlf", name);
            assert_chunked_matches(name, &crlf, &Ok(seq_crlf));

            // Dropping the trailing newline: sequential and chunked stay
            // identical. (METIS may legitimately reject the trimmed text —
            // an empty final vertex line disappears with its newline — but
            // if the sequential parse accepts it, the graph is unchanged.)
            let trimmed = text.strip_suffix('\n').unwrap_or(&text).to_string();
            let seq_trimmed = parse(&trimmed);
            if let Ok(t) = &seq_trimmed {
                prop_assert_eq!(t.graph.edges(), seq_lf.graph.edges(), "{} no-nl", name);
            }
            assert_chunked_matches(name, &trimmed, &seq_trimmed);
        }
    }

    #[test]
    fn chunked_parse_handles_comment_heavy_inputs(graph in arb_graph()) {
        for (name, write, parse) in formats() {
            let marker = match name {
                "snap" => "# noise",
                "dimacs" => "c noise",
                _ => "% noise",
            };
            let mut buf = Vec::new();
            write(&mut buf, &graph).unwrap();
            let plain = String::from_utf8(buf).unwrap();
            let noisy = comment_heavy(&plain, marker);
            let seq_plain = parse(&plain).unwrap();
            let seq_noisy = parse(&noisy).unwrap();
            prop_assert_eq!(
                seq_noisy.graph.edges(),
                seq_plain.graph.edges(),
                "{} comments changed the graph",
                name
            );
            assert_chunked_matches(name, &noisy, &Ok(seq_noisy));
        }
    }

    #[test]
    fn emgbin_round_trips_parsed_graph(graph in arb_graph(), id_seed in any::<u64>()) {
        // Arbitrary (not necessarily dense or unique) original ids.
        let n = graph.num_nodes();
        let original_ids: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(id_seed | 1).wrapping_add(id_seed >> 7))
            .collect();
        let parsed = ParsedGraph { graph, original_ids };

        let bytes = binary::to_bytes(&parsed, None);
        let (back, csr) = binary::read(&bytes).unwrap();
        prop_assert_eq!(back.graph.num_nodes(), parsed.graph.num_nodes());
        prop_assert_eq!(back.graph.edges(), parsed.graph.edges());
        prop_assert_eq!(&back.original_ids, &parsed.original_ids);
        prop_assert!(csr.is_none());

        // With the CSR section: both halves reload exactly.
        let csr = Csr::from_edge_list(&parsed.graph);
        let bytes = binary::to_bytes(&parsed, Some(&csr));
        let (back, loaded) = binary::read(&bytes).unwrap();
        prop_assert_eq!(back.graph.edges(), parsed.graph.edges());
        prop_assert_eq!(loaded.expect("embedded CSR"), csr);
    }

    #[test]
    fn emgbin_detects_any_single_bit_corruption(
        graph in arb_graph(),
        pos_seed in any::<usize>(),
        bit in 0usize..8,
    ) {
        let parsed = ParsedGraph::dense(graph);
        let mut bytes = binary::to_bytes(&parsed, None);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1u8 << bit;
        // Every byte is covered: magic/version/flags explicitly, the rest
        // of the header and the payload by the checksum (which guards the
        // node/edge counts *before* any count-proportional allocation),
        // and the checksum field by itself.
        prop_assert!(
            binary::read(&bytes).is_err(),
            "corruption at byte {} went undetected",
            pos
        );
    }
}
