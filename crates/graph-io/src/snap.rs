//! SNAP edge lists: one `u v` pair per line, `#` comments.
//!
//! The format of the Stanford Network Analysis Project downloads the paper
//! uses (`cit-Patents.txt`, `soc-LiveJournal1.txt`, `socfb-A-anon`, ...).
//! Node ids in the files are arbitrary 64-bit integers with gaps; the
//! parser compacts them to dense `0..n` in first-appearance order and
//! keeps the inverse mapping. Directed duplicates (`u v` and `v u`) are
//! preserved — the bridge pipeline's `EdgeList::simplified` handles
//! dedup when asked.

use crate::{ParseError, ParsedGraph};
use graph_core::EdgeList;
use std::collections::HashMap;
use std::io::Write;

/// Parses SNAP edge-list text.
///
/// # Errors
/// [`ParseError`] with a line number on malformed lines (wrong token
/// count, non-integer tokens).
pub fn parse(text: &str) -> Result<ParsedGraph, ParseError> {
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    let mut intern = |id: u64, original_ids: &mut Vec<u64>| -> u32 {
        *remap.entry(id).or_insert_with(|| {
            original_ids.push(id);
            (original_ids.len() - 1) as u32
        })
    };

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(ParseError::at(
                    lineno + 1,
                    format!("expected `u v`, got {line:?}"),
                ))
            }
        };
        // A third column (weight/timestamp) is tolerated and ignored, as in
        // SNAP's temporal datasets; more is malformed.
        if it.clone().count() > 1 {
            return Err(ParseError::at(lineno + 1, "too many columns"));
        }
        let u: u64 = a
            .parse()
            .map_err(|_| ParseError::at(lineno + 1, format!("bad node id {a:?}")))?;
        let v: u64 = b
            .parse()
            .map_err(|_| ParseError::at(lineno + 1, format!("bad node id {b:?}")))?;
        let u = intern(u, &mut original_ids);
        let v = intern(v, &mut original_ids);
        edges.push((u, v));
    }
    let graph = EdgeList::new(original_ids.len(), edges);
    Ok(ParsedGraph {
        graph,
        original_ids,
    })
}

/// Writes `graph` as SNAP edge-list text (dense 0-based ids).
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(w: &mut W, graph: &EdgeList) -> std::io::Result<()> {
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for &(u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_gaps() {
        let text = "# SNAP header\n% also a comment\n\n100 200\n200\t300\n100 300\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_nodes(), 3);
        assert_eq!(p.graph.num_edges(), 3);
        assert_eq!(p.original_ids, vec![100, 200, 300]);
        assert_eq!(p.graph.edges()[0], (0, 1));
        assert_eq!(p.graph.edges()[2], (0, 2));
    }

    #[test]
    fn tolerates_weight_column() {
        let p = parse("1 2 99\n2 3 42\n").unwrap();
        assert_eq!(p.graph.num_edges(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse("1\n").unwrap_err().line, 1);
        assert_eq!(parse("1 2\nx y\n").unwrap_err().line, 2);
        assert_eq!(parse("1 2 3 4\n").unwrap_err().line, 1);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let p = parse("# only comments\n").unwrap();
        assert_eq!(p.graph.num_nodes(), 0);
        assert_eq!(p.graph.num_edges(), 0);
    }

    #[test]
    fn round_trip() {
        let g = EdgeList::new(4, vec![(0, 1), (1, 2), (3, 0), (2, 2)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        // First-appearance order preserves dense ids here.
        assert_eq!(p.graph.edges(), g.edges());
        assert_eq!(p.graph.num_nodes(), 4);
    }

    #[test]
    fn self_loops_survive() {
        let p = parse("5 5\n").unwrap();
        assert_eq!(p.graph.num_edges(), 1);
        assert_eq!(p.graph.edges()[0], (0, 0));
    }
}
