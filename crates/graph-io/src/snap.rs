//! SNAP edge lists: one `u v` pair per line, `#` comments.
//!
//! The format of the Stanford Network Analysis Project downloads the paper
//! uses (`cit-Patents.txt`, `soc-LiveJournal1.txt`, `socfb-A-anon`, ...).
//! Node ids in the files are arbitrary 64-bit integers with gaps; the
//! parser compacts them to dense `0..n` in first-appearance order and
//! keeps the inverse mapping. Directed duplicates (`u v` and `v u`) are
//! preserved — the bridge pipeline's `EdgeList::simplified` handles
//! dedup when asked.
//!
//! Parsing splits into two stages: tokenizing lines into raw `(u64, u64)`
//! pairs (the bulk of the work — [`parse_chunks`] runs it chunk-parallel)
//! and interning the raw ids into dense `0..n` in first-appearance order
//! (inherently sequential, but cheap next to tokenizing; a direct-map
//! fast path covers the common dense-ish id universes).

use crate::chunk::{self, Chunk};
use crate::{ParseError, ParsedGraph};
use graph_core::EdgeList;
use std::collections::HashMap;
use std::io::Write;

/// Tokenizes one chunk's lines into raw `(u, v)` pairs.
fn tokenize_chunk(c: &Chunk<'_>) -> Result<Vec<(u64, u64)>, ParseError> {
    let mut pairs = Vec::new();
    for (lineno, line) in c.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(ParseError::at(
                    lineno,
                    format!("expected `u v`, got {line:?}"),
                ))
            }
        };
        // A third column (weight/timestamp) is tolerated and ignored, as in
        // SNAP's temporal datasets; more is malformed.
        if it.clone().count() > 1 {
            return Err(ParseError::at(lineno, "too many columns"));
        }
        let u: u64 = a
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("bad node id {a:?}")))?;
        let v: u64 = b
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("bad node id {b:?}")))?;
        pairs.push((u, v));
    }
    Ok(pairs)
}

/// Compacts raw file ids to dense `0..n` in first-appearance order.
///
/// When the id universe is dense-ish (max id within a small factor of the
/// pair count, the shape of most published edge lists), a direct-map table
/// replaces the hash map — same numbering, a fraction of the cost.
fn intern_pairs(pairs: &[(u64, u64)]) -> (Vec<(u32, u32)>, Vec<u64>) {
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
    let max_id = pairs.iter().map(|&(u, v)| u.max(v)).max().unwrap_or(0);
    let dense_budget = (pairs.len() as u128 * 8).max(1 << 16);
    if (max_id as u128) < dense_budget {
        // u32::MAX marks "unseen": dense ids stay below 2 * pairs.len(),
        // far under the sentinel for any graph that fits a u32 CSR.
        let mut remap = vec![u32::MAX; max_id as usize + 1];
        let mut intern = |id: u64, original_ids: &mut Vec<u64>| -> u32 {
            let slot = &mut remap[id as usize];
            if *slot == u32::MAX {
                original_ids.push(id);
                *slot = (original_ids.len() - 1) as u32;
            }
            *slot
        };
        for &(u, v) in pairs {
            let u = intern(u, &mut original_ids);
            let v = intern(v, &mut original_ids);
            edges.push((u, v));
        }
    } else {
        let mut remap: HashMap<u64, u32> = HashMap::new();
        let mut intern = |id: u64, original_ids: &mut Vec<u64>| -> u32 {
            *remap.entry(id).or_insert_with(|| {
                original_ids.push(id);
                (original_ids.len() - 1) as u32
            })
        };
        for &(u, v) in pairs {
            let u = intern(u, &mut original_ids);
            let v = intern(v, &mut original_ids);
            edges.push((u, v));
        }
    }
    (edges, original_ids)
}

fn build(pairs: Vec<(u64, u64)>) -> ParsedGraph {
    let (edges, original_ids) = intern_pairs(&pairs);
    ParsedGraph {
        graph: EdgeList::new(original_ids.len(), edges),
        original_ids,
    }
}

/// Parses SNAP edge-list text sequentially (the oracle the chunked path is
/// pinned against).
///
/// # Errors
/// [`ParseError`] with a line number on malformed lines (wrong token
/// count, non-integer tokens).
pub fn parse(text: &str) -> Result<ParsedGraph, ParseError> {
    let whole = Chunk {
        text,
        first_line: 1,
    };
    Ok(build(tokenize_chunk(&whole)?))
}

/// Parses SNAP text with chunk-parallel tokenizing; bit-identical to
/// [`parse`]. Small inputs fall back to the sequential path.
///
/// # Errors
/// Same contract as [`parse`].
pub fn parse_chunked(text: &str) -> Result<ParsedGraph, ParseError> {
    if text.len() < chunk::PARALLEL_THRESHOLD_BYTES {
        return parse(text);
    }
    parse_chunks(text, chunk::default_chunk_count(text.len()))
}

/// Chunked parse with an explicit chunk count (tests pin equivalence at
/// awkward counts).
///
/// # Errors
/// Same contract as [`parse`].
pub fn parse_chunks(text: &str, chunks: usize) -> Result<ParsedGraph, ParseError> {
    let chunks = chunk::split_line_chunks(text, chunks);
    let per_chunk = chunk::parse_chunks_with(&chunks, tokenize_chunk)?;
    Ok(build(chunk::merge_in_order(per_chunk)))
}

/// Writes `graph` as SNAP edge-list text (dense 0-based ids).
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(w: &mut W, graph: &EdgeList) -> std::io::Result<()> {
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for &(u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_gaps() {
        let text = "# SNAP header\n% also a comment\n\n100 200\n200\t300\n100 300\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_nodes(), 3);
        assert_eq!(p.graph.num_edges(), 3);
        assert_eq!(p.original_ids, vec![100, 200, 300]);
        assert_eq!(p.graph.edges()[0], (0, 1));
        assert_eq!(p.graph.edges()[2], (0, 2));
    }

    #[test]
    fn tolerates_weight_column() {
        let p = parse("1 2 99\n2 3 42\n").unwrap();
        assert_eq!(p.graph.num_edges(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse("1\n").unwrap_err().line, 1);
        assert_eq!(parse("1 2\nx y\n").unwrap_err().line, 2);
        assert_eq!(parse("1 2 3 4\n").unwrap_err().line, 1);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let p = parse("# only comments\n").unwrap();
        assert_eq!(p.graph.num_nodes(), 0);
        assert_eq!(p.graph.num_edges(), 0);
    }

    #[test]
    fn round_trip() {
        let g = EdgeList::new(4, vec![(0, 1), (1, 2), (3, 0), (2, 2)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        // First-appearance order preserves dense ids here.
        assert_eq!(p.graph.edges(), g.edges());
        assert_eq!(p.graph.num_nodes(), 4);
    }

    #[test]
    fn self_loops_survive() {
        let p = parse("5 5\n").unwrap();
        assert_eq!(p.graph.num_edges(), 1);
        assert_eq!(p.graph.edges()[0], (0, 0));
    }

    #[test]
    fn sparse_universe_uses_hash_path() {
        // Ids far above 8 × pair count force the HashMap branch; the dense
        // numbering must be identical either way.
        let p = parse("8000000000 9000000000\n9000000000 8500000000\n").unwrap();
        assert_eq!(p.original_ids, vec![8000000000, 9000000000, 8500000000]);
        assert_eq!(p.graph.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn chunked_matches_sequential_at_every_count() {
        let text = "# c\n10 20\n20 30\n% mid comment\n30 10\n10 40\n\n40 20\n";
        let seq = parse(text).unwrap();
        for chunks in 1..8 {
            let par = parse_chunks(text, chunks).unwrap();
            assert_eq!(par.graph.edges(), seq.graph.edges(), "chunks {chunks}");
            assert_eq!(par.original_ids, seq.original_ids, "chunks {chunks}");
        }
    }

    #[test]
    fn chunked_reports_first_error_line() {
        let text = "1 2\n1 2\nboom\n3 4\nalso bad\n";
        for chunks in 1..6 {
            let err = parse_chunks(text, chunks).unwrap_err();
            assert_eq!(err.line, 3, "chunks {chunks}: {err}");
        }
    }
}
