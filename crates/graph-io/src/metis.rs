//! METIS/Chaco adjacency format (the DIMACS-10 challenge distribution the
//! paper's `great-britain-osm` and `kron_g500` graphs ship in).
//!
//! Header `n m [fmt [ncon]]`, then one line per vertex (1-based) listing
//! its neighbors. `%` starts a comment line. Each undirected edge appears
//! in both endpoint lists; `m` counts undirected edges. Supported `fmt`
//! codes: `0` (plain), `1` (edge weights — parsed and discarded), `10`/`11`
//! (vertex weights — skipped per the `ncon` count).
//!
//! A vertex's id is its *position* among the non-comment lines, so the
//! chunked path ([`parse_chunks`]) runs two parallel passes: one counting
//! each chunk's non-comment lines (a tiny prefix sum then fixes every
//! chunk's starting vertex id), one parsing the adjacency lists. Self-loop
//! pairing is chunk-local because both mentions of a loop sit on the same
//! line.

use crate::chunk::{self, Chunk};
use crate::{ParseError, ParsedGraph};
use graph_core::EdgeList;
use std::io::Write;

/// The parsed header line and its position.
#[derive(Debug, Clone, Copy)]
struct Header {
    n: usize,
    m: usize,
    has_vweights: bool,
    has_eweights: bool,
    ncon: usize,
    /// 1-based line number of the header line.
    line: usize,
}

/// Finds and parses the first non-comment line.
fn scan_header(text: &str) -> Result<Header, ParseError> {
    let (idx, header) = text
        .lines()
        .enumerate()
        .find(|(_, l)| !l.trim_start().starts_with('%'))
        .ok_or_else(|| ParseError::file("empty input"))?;
    let lineno = idx + 1;
    let mut ht = header.split_whitespace();
    let n: usize = ht
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::at(lineno, "bad node count"))?;
    let m: usize = ht
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::at(lineno, "bad edge count"))?;
    let fmt = ht.next().unwrap_or("0");
    let (has_vweights, has_eweights) = match fmt {
        "0" | "00" => (false, false),
        "1" | "01" => (false, true),
        "10" => (true, false),
        "11" => (true, true),
        other => {
            return Err(ParseError::at(
                lineno,
                format!("unsupported fmt code {other:?}"),
            ))
        }
    };
    let ncon: usize = ht.next().and_then(|t| t.parse().ok()).unwrap_or(1);
    Ok(Header {
        n,
        m,
        has_vweights,
        has_eweights,
        ncon,
        line: lineno,
    })
}

/// One chunk's share of the adjacency lists.
struct ChunkLists {
    edges: Vec<(u32, u32)>,
    endpoints: usize,
    /// Non-comment lines after the header in this chunk (vertex lines,
    /// including blank ones — isolated vertices).
    relevant: usize,
}

/// Counts the chunk's vertex lines (phase A of the chunked parse).
fn count_vertex_lines(c: &Chunk<'_>, header: &Header) -> usize {
    c.lines()
        .filter(|(lineno, l)| *lineno > header.line && !l.trim_start().starts_with('%'))
        .count()
}

/// Parses the chunk's adjacency lists given the chunk's first vertex id
/// (phase B). `start_vertex` counts vertex lines in all earlier chunks.
fn parse_vertex_chunk(
    c: &Chunk<'_>,
    header: &Header,
    start_vertex: usize,
) -> Result<ChunkLists, ParseError> {
    let n = header.n;
    let mut out = ChunkLists {
        edges: Vec::new(),
        endpoints: 0,
        relevant: 0,
    };
    for (lineno, line) in c.lines() {
        if lineno <= header.line || line.trim_start().starts_with('%') {
            continue;
        }
        let vertex = start_vertex + out.relevant;
        out.relevant += 1;
        if vertex >= n {
            if line.trim().is_empty() {
                continue;
            }
            return Err(ParseError::at(lineno, "more vertex lines than nodes"));
        }
        let mut toks = line.split_whitespace().peekable();
        if header.has_vweights {
            for _ in 0..header.ncon {
                toks.next()
                    .ok_or_else(|| ParseError::at(lineno, "missing vertex weight"))?;
            }
        }
        // Self-loops appear as *two* self-mentions (see `write`): pair them
        // up. Both mentions of a loop at `u` sit on vertex `u`'s own line,
        // so the parity counter is line-local.
        let mut self_mentions = 0u32;
        while let Some(tok) = toks.next() {
            let w: usize = tok
                .parse()
                .map_err(|_| ParseError::at(lineno, format!("bad neighbor id {tok:?}")))?;
            if w == 0 || w > n {
                return Err(ParseError::at(
                    lineno,
                    format!("neighbor id {w} outside 1..={n}"),
                ));
            }
            if header.has_eweights {
                toks.next()
                    .ok_or_else(|| ParseError::at(lineno, "missing edge weight"))?;
            }
            out.endpoints += 1;
            // Keep each undirected edge once (from its smaller endpoint).
            let u = vertex as u32;
            let v = (w - 1) as u32;
            if u == v {
                self_mentions += 1;
                if self_mentions.is_multiple_of(2) {
                    out.edges.push((u, v));
                }
            } else if u < v {
                out.edges.push((u, v));
            }
        }
    }
    Ok(out)
}

fn build(header: &Header, pieces: Vec<ChunkLists>) -> Result<ParsedGraph, ParseError> {
    let n = header.n;
    let relevant: usize = pieces.iter().map(|p| p.relevant).sum();
    let vertices = relevant.min(n);
    if vertices != n {
        return Err(ParseError::file(format!(
            "expected {n} vertex lines, found {vertices}"
        )));
    }
    let endpoints: usize = pieces.iter().map(|p| p.endpoints).sum();
    if endpoints != 2 * header.m {
        return Err(ParseError::file(format!(
            "header declared {} edges but lists contain {endpoints} endpoints (expected {})",
            header.m,
            2 * header.m
        )));
    }
    let edges = chunk::merge_in_order(pieces.into_iter().map(|p| p.edges).collect());
    let graph = EdgeList::new(n, edges);
    Ok(ParsedGraph {
        graph,
        original_ids: (1..=n as u64).collect(),
    })
}

/// Parses METIS adjacency text sequentially (the oracle the chunked path
/// is pinned against).
///
/// # Errors
/// [`ParseError`] on malformed headers, bad ids, or when the per-line edge
/// endpoints do not sum to `2m`.
pub fn parse(text: &str) -> Result<ParsedGraph, ParseError> {
    let header = scan_header(text)?;
    let whole = Chunk {
        text,
        first_line: 1,
    };
    let lists = parse_vertex_chunk(&whole, &header, 0)?;
    build(&header, vec![lists])
}

/// Parses METIS text with chunk-parallel adjacency parsing; bit-identical
/// to [`parse`]. Small inputs fall back to the sequential path.
///
/// # Errors
/// Same contract as [`parse`].
pub fn parse_chunked(text: &str) -> Result<ParsedGraph, ParseError> {
    if text.len() < chunk::PARALLEL_THRESHOLD_BYTES {
        return parse(text);
    }
    parse_chunks(text, chunk::default_chunk_count(text.len()))
}

/// Chunked parse with an explicit chunk count (tests pin equivalence at
/// awkward counts).
///
/// # Errors
/// Same contract as [`parse`].
pub fn parse_chunks(text: &str, chunks: usize) -> Result<ParsedGraph, ParseError> {
    let header = scan_header(text)?;
    let chunks = chunk::split_line_chunks(text, chunks);
    // Phase A: per-chunk vertex-line counts -> per-chunk starting vertex.
    let counts = chunk::parse_chunks_with(&chunks, |c| Ok(count_vertex_lines(c, &header)))?;
    let mut starts = Vec::with_capacity(chunks.len());
    let mut acc = 0usize;
    for c in &counts {
        starts.push(acc);
        acc += c;
    }
    // Phase B: parse each chunk knowing its first vertex id. The zip of
    // (chunk, start) keeps `parse_chunks_with` shape by indexing starts
    // off the chunk's position.
    let indexed: Vec<(Chunk<'_>, usize)> = chunks.into_iter().zip(starts).collect();
    let pieces = {
        use rayon::prelude::*;
        let results: Vec<Result<ChunkLists, ParseError>> = indexed
            .par_iter()
            .map(|(c, start)| parse_vertex_chunk(c, &header, *start))
            .collect();
        results.into_iter().collect::<Result<Vec<_>, _>>()?
    };
    build(&header, pieces)
}

/// Writes `graph` in METIS adjacency format.
///
/// METIS lists every edge at both endpoints; a self-loop is therefore
/// written as **two** self-mentions, which [`parse`] pairs back into one
/// loop — round-trips are exact.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(w: &mut W, graph: &EdgeList) -> std::io::Result<()> {
    let n = graph.num_nodes();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut m = 0usize;
    for &(u, v) in graph.edges() {
        adj[u as usize].push(v + 1);
        adj[v as usize].push(u + 1);
        m += 1;
    }
    writeln!(w, "{n} {m}")?;
    for list in &adj {
        let strs: Vec<String> = list.iter().map(|x| x.to_string()).collect();
        writeln!(w, "{}", strs.join(" "))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_adjacency() {
        // Triangle + pendant: 0-1, 1-2, 2-0, 2-3.
        let text = "% comment\n4 4\n2 3\n1 3\n1 2 4\n3\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_nodes(), 4);
        assert_eq!(p.graph.num_edges(), 4);
        let mut es: Vec<(u32, u32)> = p.graph.edges().to_vec();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn parses_edge_weights() {
        let text = "3 2 1\n2 7\n1 7 3 9\n2 9\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_edges(), 2);
    }

    #[test]
    fn parses_vertex_weights() {
        let text = "3 2 10\n5 2\n6 1 3\n7 2\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_edges(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("x y\n").is_err());
        // endpoint count mismatch with header
        assert!(parse("3 5\n2\n1\n\n").is_err());
        // neighbor out of range
        assert!(parse("2 1\n9\n1\n").is_err());
        // too many vertex lines
        assert!(parse("1 0\n\n\n1\n").is_err());
    }

    #[test]
    fn round_trip() {
        let g = EdgeList::new(5, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let mut got: Vec<(u32, u32)> = p.graph.edges().to_vec();
        got.sort_unstable();
        let mut expect: Vec<(u32, u32)> = g.edges().to_vec();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn self_loops_round_trip_as_mention_pairs() {
        let g = EdgeList::new(3, vec![(0, 0), (0, 1), (2, 2), (2, 2)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let mut got: Vec<(u32, u32)> = p.graph.edges().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (0, 1), (2, 2), (2, 2)]);
    }

    #[test]
    fn isolated_vertices_keep_empty_lines() {
        let g = EdgeList::new(3, vec![(0, 2)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(p.graph.num_nodes(), 3);
        assert_eq!(p.graph.num_edges(), 1);
    }

    #[test]
    fn chunked_matches_sequential_at_every_count() {
        // Comments interleaved between vertex lines stress the positional
        // vertex numbering across chunk boundaries.
        let text = "% head\n6 7\n2 3\n% interleaved\n1 3\n1 2 4\n3 5 6\n% more\n4 6\n4 5\n";
        let seq = parse(text).unwrap();
        for chunks in 1..12 {
            let par = parse_chunks(text, chunks).unwrap();
            assert_eq!(par.graph.edges(), seq.graph.edges(), "chunks {chunks}");
            assert_eq!(par.graph.num_nodes(), seq.graph.num_nodes());
        }
    }

    #[test]
    fn chunked_errors_match_sequential() {
        // Bad neighbor id on vertex line 3 (global line 4).
        let text = "3 3\n2 3\n1 9\n1 2\n";
        let seq = parse(text).unwrap_err();
        for chunks in 1..6 {
            let par = parse_chunks(text, chunks).unwrap_err();
            assert_eq!(par, seq, "chunks {chunks}");
        }
        // Too few vertex lines is a whole-file error either way.
        let text = "4 1\n2\n1\n";
        let seq = parse(text).unwrap_err();
        for chunks in 1..4 {
            assert_eq!(parse_chunks(text, chunks).unwrap_err(), seq);
        }
    }
}
