//! METIS/Chaco adjacency format (the DIMACS-10 challenge distribution the
//! paper's `great-britain-osm` and `kron_g500` graphs ship in).
//!
//! Header `n m [fmt [ncon]]`, then one line per vertex (1-based) listing
//! its neighbors. `%` starts a comment line. Each undirected edge appears
//! in both endpoint lists; `m` counts undirected edges. Supported `fmt`
//! codes: `0` (plain), `1` (edge weights — parsed and discarded), `10`/`11`
//! (vertex weights — skipped per the `ncon` count).

use crate::{ParseError, ParsedGraph};
use graph_core::EdgeList;
use std::io::Write;

/// Parses METIS adjacency text.
///
/// # Errors
/// [`ParseError`] on malformed headers, bad ids, or when the per-line edge
/// endpoints do not sum to `2m`.
pub fn parse(text: &str) -> Result<ParsedGraph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim_start().starts_with('%'));
    let (header_line, header) = lines
        .next()
        .ok_or_else(|| ParseError::file("empty input"))?;
    let mut ht = header.split_whitespace();
    let n: usize = ht
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::at(header_line + 1, "bad node count"))?;
    let m: usize = ht
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::at(header_line + 1, "bad edge count"))?;
    let fmt = ht.next().unwrap_or("0");
    let (has_vweights, has_eweights) = match fmt {
        "0" | "00" => (false, false),
        "1" | "01" => (false, true),
        "10" => (true, false),
        "11" => (true, true),
        other => {
            return Err(ParseError::at(
                header_line + 1,
                format!("unsupported fmt code {other:?}"),
            ))
        }
    };
    let ncon: usize = ht.next().and_then(|t| t.parse().ok()).unwrap_or(1);

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    let mut endpoints = 0usize;
    let mut vertex = 0usize;
    // Self-loops appear as *two* self-mentions (see `write`): pair them up.
    let mut self_mentions: Vec<u32> = Vec::new();
    for (i, line) in lines {
        if vertex >= n {
            if line.trim().is_empty() {
                continue;
            }
            return Err(ParseError::at(i + 1, "more vertex lines than nodes"));
        }
        let mut toks = line.split_whitespace().peekable();
        if has_vweights {
            for _ in 0..ncon {
                toks.next()
                    .ok_or_else(|| ParseError::at(i + 1, "missing vertex weight"))?;
            }
        }
        while let Some(tok) = toks.next() {
            let w: usize = tok
                .parse()
                .map_err(|_| ParseError::at(i + 1, format!("bad neighbor id {tok:?}")))?;
            if w == 0 || w > n {
                return Err(ParseError::at(
                    i + 1,
                    format!("neighbor id {w} outside 1..={n}"),
                ));
            }
            if has_eweights {
                toks.next()
                    .ok_or_else(|| ParseError::at(i + 1, "missing edge weight"))?;
            }
            endpoints += 1;
            // Keep each undirected edge once (from its smaller endpoint).
            let u = vertex as u32;
            let v = (w - 1) as u32;
            if u == v {
                if self_mentions.len() <= u as usize {
                    self_mentions.resize(u as usize + 1, 0);
                }
                self_mentions[u as usize] += 1;
                if self_mentions[u as usize].is_multiple_of(2) {
                    edges.push((u, v));
                }
            } else if u < v {
                edges.push((u, v));
            }
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(ParseError::file(format!(
            "expected {n} vertex lines, found {vertex}"
        )));
    }
    if endpoints != 2 * m {
        return Err(ParseError::file(format!(
            "header declared {m} edges but lists contain {endpoints} endpoints (expected {})",
            2 * m
        )));
    }
    let graph = EdgeList::new(n, edges);
    Ok(ParsedGraph {
        graph,
        original_ids: (1..=n as u64).collect(),
    })
}

/// Writes `graph` in METIS adjacency format.
///
/// METIS lists every edge at both endpoints; a self-loop is therefore
/// written as **two** self-mentions, which [`parse`] pairs back into one
/// loop — round-trips are exact.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(w: &mut W, graph: &EdgeList) -> std::io::Result<()> {
    let n = graph.num_nodes();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut m = 0usize;
    for &(u, v) in graph.edges() {
        adj[u as usize].push(v + 1);
        adj[v as usize].push(u + 1);
        m += 1;
    }
    writeln!(w, "{n} {m}")?;
    for list in &adj {
        let strs: Vec<String> = list.iter().map(|x| x.to_string()).collect();
        writeln!(w, "{}", strs.join(" "))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_adjacency() {
        // Triangle + pendant: 0-1, 1-2, 2-0, 2-3.
        let text = "% comment\n4 4\n2 3\n1 3\n1 2 4\n3\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_nodes(), 4);
        assert_eq!(p.graph.num_edges(), 4);
        let mut es: Vec<(u32, u32)> = p.graph.edges().to_vec();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn parses_edge_weights() {
        let text = "3 2 1\n2 7\n1 7 3 9\n2 9\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_edges(), 2);
    }

    #[test]
    fn parses_vertex_weights() {
        let text = "3 2 10\n5 2\n6 1 3\n7 2\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_edges(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("x y\n").is_err());
        // endpoint count mismatch with header
        assert!(parse("3 5\n2\n1\n\n").is_err());
        // neighbor out of range
        assert!(parse("2 1\n9\n1\n").is_err());
        // too many vertex lines
        assert!(parse("1 0\n\n\n1\n").is_err());
    }

    #[test]
    fn round_trip() {
        let g = EdgeList::new(5, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let mut got: Vec<(u32, u32)> = p.graph.edges().to_vec();
        got.sort_unstable();
        let mut expect: Vec<(u32, u32)> = g.edges().to_vec();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn self_loops_round_trip_as_mention_pairs() {
        let g = EdgeList::new(3, vec![(0, 0), (0, 1), (2, 2), (2, 2)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let mut got: Vec<(u32, u32)> = p.graph.edges().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (0, 1), (2, 2), (2, 2)]);
    }

    #[test]
    fn isolated_vertices_keep_empty_lines() {
        let g = EdgeList::new(3, vec![(0, 2)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(p.graph.num_nodes(), 3);
        assert_eq!(p.graph.num_edges(), 1);
    }
}
