//! Format auto-detection and the one-call file reader.

use crate::{binary, dimacs, metis, snap, IoError, ParseError, ParsedGraph};
use graph_core::Csr;
use std::path::Path;

/// The supported on-disk graph formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// DIMACS `.gr` / `p edge` (1-based, `c`/`p`/`a`/`e` lines).
    Dimacs,
    /// SNAP whitespace edge list (`#` comments).
    Snap,
    /// METIS adjacency lists (header + one line per vertex).
    Metis,
}

/// Guesses the format from file content (not the extension — SNAP and
/// METIS both ship as `.txt`/`.graph`).
///
/// Heuristics: a `c`/`p` line means DIMACS; a `#` comment or a line with
/// exactly two (or three) integer columns repeated means SNAP; a first
/// non-comment line with two/three integers followed by *variable-length*
/// integer rows means METIS. DIMACS is unambiguous; the SNAP/METIS split
/// keys on the header-vs-edge interpretation of the first line.
pub fn detect_format(text: &str) -> Option<Format> {
    let mut non_comment = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('%') && !l.starts_with('#'));
    let Some(first) = non_comment.next() else {
        // Comment-only file (an edgeless graph): the comment marker is the
        // only signature left.
        if text.lines().any(|l| l.trim_start().starts_with('#')) {
            return Some(Format::Snap);
        }
        return None;
    };
    if first.starts_with("c ") || first.starts_with("p ") || first == "c" {
        return Some(Format::Dimacs);
    }
    let cols = first.split_whitespace().count();
    let all_int = first.split_whitespace().all(|t| t.parse::<u64>().is_ok());
    if !all_int {
        return None;
    }
    // `#` comments are SNAP's signature; METIS uses `%`.
    if text.lines().any(|l| l.trim_start().starts_with('#')) {
        return Some(Format::Snap);
    }
    if text.lines().any(|l| l.trim_start().starts_with('%')) {
        return Some(Format::Metis);
    }
    // No comments: a METIS file has exactly n+1 lines with a 2-3 token
    // header; a SNAP file has uniform 2-3 column rows. Distinguish by
    // checking whether line count matches the header's node count.
    if (2..=4).contains(&cols) {
        if let Some(n) = first
            .split_whitespace()
            .next()
            .and_then(|t| t.parse::<usize>().ok())
        {
            // Count every line (blank ones are isolated vertices) except
            // the header.
            let body_lines = text.lines().count().saturating_sub(1);
            if body_lines == n {
                return Some(Format::Metis);
            }
        }
        return Some(Format::Snap);
    }
    Some(Format::Metis)
}

/// Parses `text` as `format`, splitting large inputs into line-aligned
/// chunks parsed in parallel on the rayon pool (bit-identical to the
/// sequential `parse` of each format module).
///
/// # Errors
/// Propagates the format parser's [`ParseError`].
pub fn parse_as(text: &str, format: Format) -> Result<ParsedGraph, ParseError> {
    match format {
        Format::Dimacs => dimacs::parse_chunked(text),
        Format::Snap => snap::parse_chunked(text),
        Format::Metis => metis::parse_chunked(text),
    }
}

/// Decodes raw file bytes: `emgbin` by magic, otherwise UTF-8 text with
/// content-based format detection and chunk-parallel parsing. Returns the
/// graph plus the CSR adjacency when the binary cache embedded one.
///
/// # Errors
/// [`ParseError`] when the bytes are not UTF-8 (and not `emgbin`), the
/// text format cannot be detected, or parsing fails. `context` names the
/// input in the error message.
pub fn parse_bytes(bytes: &[u8], context: &str) -> Result<(ParsedGraph, Option<Csr>), ParseError> {
    if binary::is_emgbin(bytes) {
        return binary::read(bytes);
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ParseError::file(format!("{context} is neither emgbin nor UTF-8 text")))?;
    let format = detect_format(text)
        .ok_or_else(|| ParseError::file(format!("cannot detect graph format of {context}")))?;
    Ok((parse_as(text, format)?, None))
}

/// Reads a graph file — `emgbin` or auto-detected text — returning the CSR
/// adjacency too when the binary cache embedded one.
///
/// # Errors
/// [`IoError::Io`] on filesystem failures, [`IoError::Parse`] (with line
/// numbers for text formats) on malformed content.
pub fn read_edge_list_with_csr(
    path: impl AsRef<Path>,
) -> Result<(ParsedGraph, Option<Csr>), IoError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    Ok(parse_bytes(&bytes, &path.display().to_string())?)
}

/// Reads a graph file, auto-detecting `emgbin` (by magic) or the text
/// format (by content).
///
/// # Errors
/// [`IoError::Io`] on filesystem failures, [`IoError::Parse`] on
/// undetectable or malformed content.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<ParsedGraph, IoError> {
    read_edge_list_with_csr(path).map(|(parsed, _)| parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_dimacs() {
        assert_eq!(
            detect_format("c hi\np sp 2 1\na 1 2 1\n"),
            Some(Format::Dimacs)
        );
        assert_eq!(detect_format("p edge 2 1\ne 1 2\n"), Some(Format::Dimacs));
    }

    #[test]
    fn detects_snap_by_hash_comment() {
        assert_eq!(detect_format("# SNAP\n1 2\n2 3\n"), Some(Format::Snap));
    }

    #[test]
    fn detects_metis_by_percent_comment() {
        assert_eq!(
            detect_format("% METIS\n3 2\n2\n1 3\n2\n"),
            Some(Format::Metis)
        );
    }

    #[test]
    fn detects_metis_by_line_count() {
        // Header "3 2" + exactly 3 vertex lines.
        assert_eq!(detect_format("3 2\n2\n1 3\n2\n"), Some(Format::Metis));
    }

    #[test]
    fn bare_pairs_default_to_snap() {
        assert_eq!(detect_format("1 2\n2 3\n3 4\n9 1\n"), Some(Format::Snap));
    }

    #[test]
    fn garbage_is_unknown() {
        assert_eq!(detect_format("hello world\n"), None);
        assert_eq!(detect_format(""), None);
    }

    #[test]
    fn read_edge_list_round_trip() {
        let dir = std::env::temp_dir().join("graph_io_detect_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "# test\n0 1\n1 2\n").unwrap();
        let p = read_edge_list(&path).unwrap();
        assert_eq!(p.graph.num_edges(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_edge_list_handles_emgbin() {
        let dir = std::env::temp_dir().join("graph_io_detect_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.emgbin");
        let parsed = crate::snap::parse("5 6\n6 7\n").unwrap();
        let csr = Csr::from_edge_list(&parsed.graph);
        binary::write_file(&path, &parsed, Some(&csr)).unwrap();
        let (p, loaded_csr) = read_edge_list_with_csr(&path).unwrap();
        assert_eq!(p.graph.edges(), parsed.graph.edges());
        assert_eq!(p.original_ids, parsed.original_ids);
        assert_eq!(loaded_csr.expect("embedded CSR"), csr);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_edge_list_reports_structured_errors() {
        assert!(matches!(
            read_edge_list("/nonexistent/x.txt").unwrap_err(),
            IoError::Io(_)
        ));
        let dir = std::env::temp_dir().join("graph_io_detect_test_err");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "hello world\n").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        assert!(matches!(&err, IoError::Parse(p) if p.message.contains("cannot detect")));
        // Parse errors keep their structured line numbers through IoError.
        let path = dir.join("badline.txt");
        std::fs::write(&path, "# snap\n1 2\n1 2 3 4\n").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        assert!(matches!(&err, IoError::Parse(p) if p.line == 3), "{err}");
    }
}
