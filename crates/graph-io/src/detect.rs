//! Format auto-detection and the one-call file reader.

use crate::{dimacs, metis, snap, ParseError, ParsedGraph};
use std::path::Path;

/// The supported on-disk graph formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// DIMACS `.gr` / `p edge` (1-based, `c`/`p`/`a`/`e` lines).
    Dimacs,
    /// SNAP whitespace edge list (`#` comments).
    Snap,
    /// METIS adjacency lists (header + one line per vertex).
    Metis,
}

/// Guesses the format from file content (not the extension — SNAP and
/// METIS both ship as `.txt`/`.graph`).
///
/// Heuristics: a `c`/`p` line means DIMACS; a `#` comment or a line with
/// exactly two (or three) integer columns repeated means SNAP; a first
/// non-comment line with two/three integers followed by *variable-length*
/// integer rows means METIS. DIMACS is unambiguous; the SNAP/METIS split
/// keys on the header-vs-edge interpretation of the first line.
pub fn detect_format(text: &str) -> Option<Format> {
    let mut non_comment = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('%') && !l.starts_with('#'));
    let Some(first) = non_comment.next() else {
        // Comment-only file (an edgeless graph): the comment marker is the
        // only signature left.
        if text.lines().any(|l| l.trim_start().starts_with('#')) {
            return Some(Format::Snap);
        }
        return None;
    };
    if first.starts_with("c ") || first.starts_with("p ") || first == "c" {
        return Some(Format::Dimacs);
    }
    let cols = first.split_whitespace().count();
    let all_int = first.split_whitespace().all(|t| t.parse::<u64>().is_ok());
    if !all_int {
        return None;
    }
    // `#` comments are SNAP's signature; METIS uses `%`.
    if text.lines().any(|l| l.trim_start().starts_with('#')) {
        return Some(Format::Snap);
    }
    if text.lines().any(|l| l.trim_start().starts_with('%')) {
        return Some(Format::Metis);
    }
    // No comments: a METIS file has exactly n+1 lines with a 2-3 token
    // header; a SNAP file has uniform 2-3 column rows. Distinguish by
    // checking whether line count matches the header's node count.
    if (2..=4).contains(&cols) {
        if let Some(n) = first
            .split_whitespace()
            .next()
            .and_then(|t| t.parse::<usize>().ok())
        {
            // Count every line (blank ones are isolated vertices) except
            // the header.
            let body_lines = text.lines().count().saturating_sub(1);
            if body_lines == n {
                return Some(Format::Metis);
            }
        }
        return Some(Format::Snap);
    }
    Some(Format::Metis)
}

/// Parses `text` as `format`.
///
/// # Errors
/// Propagates the format parser's [`ParseError`].
pub fn parse_as(text: &str, format: Format) -> Result<ParsedGraph, ParseError> {
    match format {
        Format::Dimacs => dimacs::parse(text),
        Format::Snap => snap::parse(text),
        Format::Metis => metis::parse(text),
    }
}

/// Reads a graph file, auto-detecting the format from its content.
///
/// # Errors
/// I/O errors from reading, `InvalidData` when the format cannot be
/// detected or parsing fails.
pub fn read_edge_list(path: impl AsRef<Path>) -> std::io::Result<ParsedGraph> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let format = detect_format(&text).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("cannot detect graph format of {}", path.as_ref().display()),
        )
    })?;
    parse_as(&text, format).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_dimacs() {
        assert_eq!(
            detect_format("c hi\np sp 2 1\na 1 2 1\n"),
            Some(Format::Dimacs)
        );
        assert_eq!(detect_format("p edge 2 1\ne 1 2\n"), Some(Format::Dimacs));
    }

    #[test]
    fn detects_snap_by_hash_comment() {
        assert_eq!(detect_format("# SNAP\n1 2\n2 3\n"), Some(Format::Snap));
    }

    #[test]
    fn detects_metis_by_percent_comment() {
        assert_eq!(
            detect_format("% METIS\n3 2\n2\n1 3\n2\n"),
            Some(Format::Metis)
        );
    }

    #[test]
    fn detects_metis_by_line_count() {
        // Header "3 2" + exactly 3 vertex lines.
        assert_eq!(detect_format("3 2\n2\n1 3\n2\n"), Some(Format::Metis));
    }

    #[test]
    fn bare_pairs_default_to_snap() {
        assert_eq!(detect_format("1 2\n2 3\n3 4\n9 1\n"), Some(Format::Snap));
    }

    #[test]
    fn garbage_is_unknown() {
        assert_eq!(detect_format("hello world\n"), None);
        assert_eq!(detect_format(""), None);
    }

    #[test]
    fn read_edge_list_round_trip() {
        let dir = std::env::temp_dir().join("graph_io_detect_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "# test\n0 1\n1 2\n").unwrap();
        let p = read_edge_list(&path).unwrap();
        assert_eq!(p.graph.num_edges(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
