//! `emgbin` — the workspace's binary graph cache format.
//!
//! Text parsing is the slowest stage of a repeated experiment run, however
//! parallel: every byte of a SNAP/DIMACS/METIS file must be tokenized and
//! integer-parsed again on every load. `emgbin` stores the already-parsed
//! [`ParsedGraph`] (and optionally its CSR adjacency) as little-endian
//! arrays behind a versioned, checksummed header, so a reload is a bounds
//! check plus `memcpy`-speed decoding. `emg convert graph.txt graph.emgbin`
//! writes the cache; every reader in the workspace auto-detects it by
//! magic.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  0: magic       b"EMGB"
//!         4: version     u32  (currently 1)
//!         8: flags       u32  (bit 0: original_ids section present,
//!                              bit 1: CSR section present)
//!        12: reserved    u32  (zero)
//!        16: num_nodes   u64
//!        24: num_edges   u64
//!        32: checksum    u64  (FNV-1a over header bytes 0..32 and the
//!                              payload, u64-word-wise)
//!        40: payload:
//!            src          [u32; m]
//!            dst          [u32; m]
//!            original_ids [u64; n]            (if flags bit 0)
//!            offsets      [u32; n + 1]        (if flags bit 1)
//!            neighbors    [u32; 2m]           (if flags bit 1)
//!            edge_ids     [u32; 2m]           (if flags bit 1)
//! ```
//!
//! The `original_ids` section is omitted when the mapping is the identity
//! (`0..n`), the common case for generated graphs.

use crate::{ParseError, ParsedGraph};
use graph_core::{Csr, EdgeList};
use std::io::Write;
use std::path::Path;

/// The four magic bytes every `emgbin` file starts with.
pub const MAGIC: [u8; 4] = *b"EMGB";
/// The current format version.
pub const VERSION: u32 = 1;

const FLAG_ORIGINAL_IDS: u32 = 1 << 0;
const FLAG_CSR: u32 = 1 << 1;
const HEADER_LEN: usize = 40;

/// Whether `bytes` starts with the `emgbin` magic.
pub fn is_emgbin(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

/// FNV-1a over the header prefix (everything before the checksum field)
/// and the payload, folded one little-endian u64 word at a time (the tail
/// is zero-padded) — word-wise rather than byte-wise so the checksum runs
/// at memory speed instead of dominating the reload. Covering the header
/// means a corrupted node/edge count is caught *before* any
/// count-proportional allocation.
fn checksum(header_prefix: &[u8], payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    debug_assert_eq!(header_prefix.len() % 8, 0);
    let mut hash = OFFSET;
    for part in [header_prefix, payload] {
        let mut chunks = part.chunks_exact(8);
        for c in &mut chunks {
            hash ^= u64::from_le_bytes(c.try_into().unwrap());
            hash = hash.wrapping_mul(PRIME);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            hash ^= u64::from_le_bytes(tail);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

fn push_u32s(buf: &mut Vec<u8>, values: impl Iterator<Item = u32>) {
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serializes `parsed` (and optionally its CSR adjacency) to `emgbin`
/// bytes.
pub fn to_bytes(parsed: &ParsedGraph, csr: Option<&Csr>) -> Vec<u8> {
    let n = parsed.graph.num_nodes();
    let m = parsed.graph.num_edges();
    let identity_ids = parsed
        .original_ids
        .iter()
        .enumerate()
        .all(|(i, &v)| v == i as u64);

    let mut payload = Vec::with_capacity(8 * m + if identity_ids { 0 } else { 8 * n });
    push_u32s(&mut payload, parsed.graph.edges().iter().map(|&(u, _)| u));
    push_u32s(&mut payload, parsed.graph.edges().iter().map(|&(_, v)| v));
    let mut flags = 0u32;
    if !identity_ids {
        flags |= FLAG_ORIGINAL_IDS;
        for &id in &parsed.original_ids {
            payload.extend_from_slice(&id.to_le_bytes());
        }
    }
    if let Some(csr) = csr {
        flags |= FLAG_CSR;
        push_u32s(&mut payload, csr.offsets().iter().copied());
        push_u32s(&mut payload, csr.raw_neighbors().iter().copied());
        push_u32s(&mut payload, csr.raw_edge_ids().iter().copied());
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    let digest = checksum(&out, &payload);
    out.extend_from_slice(&digest.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes `parsed` (and optionally its CSR) as `emgbin`.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(w: &mut W, parsed: &ParsedGraph, csr: Option<&Csr>) -> std::io::Result<()> {
    w.write_all(&to_bytes(parsed, csr))
}

/// Writes `parsed` (and optionally its CSR) to a file.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_file(
    path: impl AsRef<Path>,
    parsed: &ParsedGraph,
    csr: Option<&Csr>,
) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(parsed, csr))
}

/// A cursor over the payload that slices fixed-size sections with bounds
/// reporting.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn section(&mut self, count: usize, width: usize, what: &str) -> Result<&'a [u8], ParseError> {
        let len = count.saturating_mul(width);
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                ParseError::file(format!(
                    "emgbin truncated: {what} needs {len} bytes at offset {}, file has {}",
                    self.pos,
                    self.bytes.len()
                ))
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32s(&mut self, count: usize, what: &str) -> Result<Vec<u32>, ParseError> {
        let raw = self.section(count, 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u64s(&mut self, count: usize, what: &str) -> Result<Vec<u64>, ParseError> {
        let raw = self.section(count, 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Decodes `emgbin` bytes back into the graph and (when the writer
/// embedded one) its CSR adjacency.
///
/// # Errors
/// [`ParseError`] (whole-file) on bad magic/version, truncation, checksum
/// mismatch, or out-of-range endpoints — a corrupt cache must never yield
/// a silently different graph.
pub fn read(bytes: &[u8]) -> Result<(ParsedGraph, Option<Csr>), ParseError> {
    if !is_emgbin(bytes) {
        return Err(ParseError::file("not an emgbin file (bad magic)"));
    }
    if bytes.len() < HEADER_LEN {
        return Err(ParseError::file(format!(
            "emgbin truncated: header needs {HEADER_LEN} bytes, file has {}",
            bytes.len()
        )));
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let quad = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let version = word(4);
    if version != VERSION {
        return Err(ParseError::file(format!(
            "emgbin version {version} unsupported (expected {VERSION})"
        )));
    }
    let flags = word(8);
    if flags & !(FLAG_ORIGINAL_IDS | FLAG_CSR) != 0 {
        return Err(ParseError::file(format!(
            "emgbin has unknown flag bits {flags:#x}"
        )));
    }
    let n = usize::try_from(quad(16))
        .map_err(|_| ParseError::file("emgbin node count exceeds this platform's usize"))?;
    let m = usize::try_from(quad(24))
        .map_err(|_| ParseError::file("emgbin edge count exceeds this platform's usize"))?;
    let expected_checksum = quad(32);
    let payload = &bytes[HEADER_LEN..];
    let actual = checksum(&bytes[..32], payload);
    if actual != expected_checksum {
        return Err(ParseError::file(format!(
            "emgbin checksum mismatch: header says {expected_checksum:#018x}, payload hashes to {actual:#018x}"
        )));
    }

    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let src = r.u32s(m, "edge sources")?;
    let dst = r.u32s(m, "edge targets")?;
    for (&u, &v) in src.iter().zip(&dst) {
        if u as usize >= n || v as usize >= n {
            return Err(ParseError::file(format!(
                "emgbin edge ({u}, {v}) out of range for {n} nodes"
            )));
        }
    }
    let edges: Vec<(u32, u32)> = src.into_iter().zip(dst).collect();
    let original_ids = if flags & FLAG_ORIGINAL_IDS != 0 {
        let ids = r.u64s(n, "original ids")?;
        if ids.len() != n {
            return Err(ParseError::file("emgbin original id count mismatch"));
        }
        ids
    } else {
        (0..n as u64).collect()
    };
    let csr = if flags & FLAG_CSR != 0 {
        let offsets = r.u32s(n + 1, "CSR offsets")?;
        let neighbors = r.u32s(2 * m, "CSR neighbors")?;
        let edge_ids = r.u32s(2 * m, "CSR edge ids")?;
        Some(
            Csr::from_raw_parts(offsets, neighbors, edge_ids, m)
                .map_err(|e| ParseError::file(format!("emgbin CSR section invalid: {e}")))?,
        )
    } else {
        None
    };
    if r.pos != payload.len() {
        return Err(ParseError::file(format!(
            "emgbin has {} trailing bytes after the last section",
            payload.len() - r.pos
        )));
    }
    let parsed = ParsedGraph {
        graph: EdgeList::new(n, edges),
        original_ids,
    };
    Ok((parsed, csr))
}

/// Reads an `emgbin` file.
///
/// # Errors
/// [`crate::IoError`] on filesystem failures or corrupt content.
pub fn read_file(path: impl AsRef<Path>) -> Result<(ParsedGraph, Option<Csr>), crate::IoError> {
    let bytes = std::fs::read(path)?;
    Ok(read(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParsedGraph {
        ParsedGraph {
            graph: EdgeList::new(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]),
            original_ids: vec![10, 20, 30, 40],
        }
    }

    #[test]
    fn round_trips_graph_and_ids() {
        let p = sample();
        let bytes = to_bytes(&p, None);
        assert!(is_emgbin(&bytes));
        let (q, csr) = read(&bytes).unwrap();
        assert_eq!(q.graph.edges(), p.graph.edges());
        assert_eq!(q.graph.num_nodes(), 4);
        assert_eq!(q.original_ids, p.original_ids);
        assert!(csr.is_none());
    }

    #[test]
    fn identity_ids_are_elided_but_restored() {
        let p = ParsedGraph::dense(EdgeList::new(3, vec![(0, 1), (1, 2)]));
        let with_ids = to_bytes(&sample(), None);
        let bytes = to_bytes(&p, None);
        // 2 edges * 8 bytes payload, no id section.
        assert_eq!(bytes.len(), HEADER_LEN + 16);
        assert!(bytes.len() < with_ids.len());
        let (q, _) = read(&bytes).unwrap();
        assert_eq!(q.original_ids, vec![0, 1, 2]);
    }

    #[test]
    fn round_trips_embedded_csr() {
        let p = sample();
        let csr = Csr::from_edge_list(&p.graph);
        let bytes = to_bytes(&p, Some(&csr));
        let (q, loaded) = read(&bytes).unwrap();
        assert_eq!(q.graph.edges(), p.graph.edges());
        assert_eq!(loaded.expect("CSR embedded"), csr);
    }

    #[test]
    fn rejects_corruption() {
        let p = sample();
        let good = to_bytes(&p, None);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(read(&bad).unwrap_err().message.contains("magic"));
        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(read(&bad).unwrap_err().message.contains("version"));
        // Flipped payload byte -> checksum mismatch.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        assert!(read(&bad).unwrap_err().message.contains("checksum"));
        // Truncation.
        let bad = &good[..good.len() - 3];
        assert!(read(bad).is_err());
        // Trailing garbage changes the checksum; with the checksum patched
        // it is still rejected as trailing bytes.
        let mut bad = good.clone();
        bad.extend_from_slice(&[0; 8]);
        let fixed = checksum(&bad[..32], &bad[HEADER_LEN..]);
        bad[32..40].copy_from_slice(&fixed.to_le_bytes());
        assert!(read(&bad).unwrap_err().message.contains("trailing"));
    }

    #[test]
    fn rejects_out_of_range_edges_without_panicking() {
        // Hand-craft a file whose edge endpoint exceeds num_nodes.
        let p = ParsedGraph::dense(EdgeList::new(5, vec![(0, 4)]));
        let mut bytes = to_bytes(&p, None);
        bytes[16..24].copy_from_slice(&2u64.to_le_bytes()); // shrink n to 2
        let fixed = checksum(&bytes[..32], &bytes[HEADER_LEN..]);
        bytes[32..40].copy_from_slice(&fixed.to_le_bytes());
        // original_ids were elided (identity over 5 nodes) so the payload
        // still parses structurally; the endpoint check must fire.
        assert!(read(&bytes).unwrap_err().message.contains("out of range"));
    }

    #[test]
    fn empty_graph_round_trips() {
        let p = ParsedGraph::dense(EdgeList::empty(0));
        let (q, csr) = read(&to_bytes(&p, None)).unwrap();
        assert_eq!(q.graph.num_nodes(), 0);
        assert_eq!(q.graph.num_edges(), 0);
        assert!(csr.is_none());
    }
}
