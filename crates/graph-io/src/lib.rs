//! # graph-io — reading and writing the paper's dataset formats
//!
//! The bridge-finding evaluation (paper §4.2, Table 1) uses graphs
//! downloaded from public repositories: the DIMACS shortest-path challenge
//! road networks (`USA-road-d.*`, `.gr` files), SNAP edge lists
//! (`cit-Patents`, `soc-LiveJournal1`, ...) and DIMACS-10 / network
//! repository graphs in METIS adjacency format. The benchmark suite
//! regenerates those workloads synthetically (no network access), but a
//! library a downstream user would actually adopt must also ingest the
//! real files — this crate provides the parsers and writers:
//!
//! * [`snap`] — whitespace-separated edge lists with `#` comments;
//!   arbitrary (sparse) node ids are compacted to dense `0..n`;
//! * [`dimacs`] — the `.gr` shortest-path format (`p sp n m` / `a u v w`)
//!   and the older `p edge` / `e u v` clique format, both 1-based;
//! * [`metis`] — METIS/Chaco adjacency lists (1-based, optionally
//!   weighted).
//!
//! Each format has a sequential `parse` (the oracle) and a chunked
//! `parse_chunks` path that splits the input at line boundaries
//! ([`chunk`]) and tokenizes the chunks in parallel on the rayon pool —
//! bit-identical results, pinned by proptests. [`binary`] adds `emgbin`,
//! a checksummed binary cache of the parsed graph (optionally with its
//! CSR adjacency) so repeated experiment runs skip text parsing entirely.
//!
//! [`read_edge_list`] auto-detects `emgbin` by magic and the text format
//! from content; every text parser reports malformed input with 1-based
//! line numbers, surfaced through the unified [`IoError`].
//!
//! ```
//! let text = "# tiny graph\n0\t1\n1\t2\n2\t0\n";
//! let parsed = graph_io::snap::parse(text).unwrap();
//! assert_eq!(parsed.graph.num_nodes(), 3);
//! assert_eq!(parsed.graph.num_edges(), 3);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod chunk;
pub mod detect;
pub mod dimacs;
pub mod error;
pub mod metis;
pub mod snap;

pub use detect::{
    detect_format, parse_as, parse_bytes, read_edge_list, read_edge_list_with_csr, Format,
};
pub use error::{IoError, ParseError};

use graph_core::EdgeList;

/// A parsed graph plus the mapping back to the file's original node ids.
#[derive(Debug, Clone)]
pub struct ParsedGraph {
    /// The graph with dense node ids `0..n`.
    pub graph: EdgeList,
    /// `original_ids[v]` = the node id used in the input file for `v`.
    /// Identity for formats with dense ids already (DIMACS/METIS map
    /// 1-based to 0-based, so `original_ids[v] = v + 1`).
    pub original_ids: Vec<u64>,
}

impl ParsedGraph {
    /// Wraps a graph whose file ids were already dense and 0-based.
    pub fn dense(graph: EdgeList) -> Self {
        let n = graph.num_nodes() as u64;
        ParsedGraph {
            graph,
            original_ids: (0..n).collect(),
        }
    }
}
