//! Line-aligned chunking of input text for parallel parsing.
//!
//! Every text parser in this crate has two paths: a sequential oracle
//! (`parse`) and a chunked path (`parse_chunks`) that splits the input at
//! line boundaries, tokenizes the chunks on the rayon pool, and merges the
//! per-chunk results in source order. The merged result is bit-identical to
//! the sequential parse — node ids, edge order and error line numbers all
//! match — which the `parallel_equivalence` proptests pin.

use crate::ParseError;
use rayon::prelude::*;

/// A line-aligned slice of the input together with its global position.
#[derive(Debug, Clone, Copy)]
pub struct Chunk<'a> {
    /// The chunk text. Always starts at the beginning of a line; every
    /// chunk except possibly the last ends just after a `'\n'`.
    pub text: &'a str,
    /// 1-based global line number of the chunk's first line.
    pub first_line: usize,
}

impl Chunk<'_> {
    /// Iterates the chunk's lines as `(global 1-based line number, line)`.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        let first = self.first_line;
        self.text
            .lines()
            .enumerate()
            .map(move |(i, l)| (first + i, l))
    }
}

/// Inputs smaller than this are parsed sequentially: below ~64 KiB the
/// chunk bookkeeping and merge copy cost more than the parallel tokenizing
/// saves.
pub const PARALLEL_THRESHOLD_BYTES: usize = 1 << 16;

/// Picks a chunk count for an input of `len` bytes: a few chunks per pool
/// worker (so an unlucky comment-dense chunk does not serialize the tail),
/// but never chunks smaller than [`PARALLEL_THRESHOLD_BYTES`].
pub fn default_chunk_count(len: usize) -> usize {
    let workers = rayon::current_num_threads().max(1);
    let max_by_size = len.div_ceil(PARALLEL_THRESHOLD_BYTES).max(1);
    (workers * 4).min(max_by_size)
}

/// Splits `text` into at most `target` chunks, each ending at a line
/// boundary. Returns at least one chunk (possibly empty for empty input).
pub fn split_line_chunks(text: &str, target: usize) -> Vec<Chunk<'_>> {
    let target = target.max(1);
    let bytes = text.as_bytes();
    let n = bytes.len();
    if n == 0 {
        return vec![Chunk {
            text,
            first_line: 1,
        }];
    }
    let approx = n.div_ceil(target);
    let mut chunks = Vec::with_capacity(target);
    let mut start = 0usize;
    let mut first_line = 1usize;
    while start < n {
        let mut end = usize::min(start + approx, n);
        if end < n {
            // Advance to just past the next newline so no line straddles
            // two chunks. All formats are ASCII, so the byte after a
            // `'\n'` is a char boundary.
            end = match bytes[end..].iter().position(|&b| b == b'\n') {
                Some(i) => end + i + 1,
                None => n,
            };
        }
        let piece = &text[start..end];
        chunks.push(Chunk {
            text: piece,
            first_line,
        });
        first_line += piece.bytes().filter(|&b| b == b'\n').count();
        start = end;
    }
    chunks
}

/// Applies `f` to every chunk in parallel and returns the per-chunk results
/// in source order.
///
/// # Errors
/// Returns the error of the first failing chunk in source order. Chunk
/// parsers bail at their first offending line and chunks cover ascending
/// disjoint line ranges, so this is the error the sequential parse would
/// have reported.
pub fn parse_chunks_with<T, F>(chunks: &[Chunk<'_>], f: F) -> Result<Vec<T>, ParseError>
where
    T: Send,
    F: Fn(&Chunk<'_>) -> Result<T, ParseError> + Send + Sync,
{
    let results: Vec<Result<T, ParseError>> = chunks.par_iter().map(f).collect();
    results.into_iter().collect()
}

/// Concatenates per-chunk vectors in source order (one allocation).
pub fn merge_in_order<T>(pieces: Vec<Vec<T>>) -> Vec<T> {
    let total = pieces.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in pieces {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_text_and_align_to_lines() {
        let text = "alpha\nbeta\ngamma\ndelta\nepsilon\n";
        for target in 1..8 {
            let chunks = split_line_chunks(text, target);
            let glued: String = chunks.iter().map(|c| c.text).collect();
            assert_eq!(glued, text, "target {target}");
            for c in &chunks[..chunks.len() - 1] {
                assert!(
                    c.text.ends_with('\n'),
                    "chunk {:?} not line-aligned",
                    c.text
                );
            }
            // Line numbers are consistent with a global enumeration.
            let mut expected_line = 1;
            for c in &chunks {
                assert_eq!(c.first_line, expected_line);
                expected_line += c.text.lines().count();
            }
        }
    }

    #[test]
    fn no_trailing_newline_keeps_last_line() {
        let chunks = split_line_chunks("a\nb\nc", 2);
        let all: Vec<(usize, String)> = chunks
            .iter()
            .flat_map(|c| c.lines().map(|(n, l)| (n, l.to_string())))
            .collect();
        assert_eq!(
            all,
            vec![
                (1, "a".to_string()),
                (2, "b".to_string()),
                (3, "c".to_string())
            ]
        );
    }

    #[test]
    fn empty_input_is_one_empty_chunk() {
        let chunks = split_line_chunks("", 4);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].text, "");
        assert_eq!(chunks[0].first_line, 1);
    }

    #[test]
    fn oversized_target_degenerates_to_per_line_chunks() {
        let chunks = split_line_chunks("x\ny\n", 100);
        assert!(chunks.len() <= 2);
        let glued: String = chunks.iter().map(|c| c.text).collect();
        assert_eq!(glued, "x\ny\n");
    }

    #[test]
    fn first_error_in_source_order_wins() {
        let text = "ok\nbad5\nok\nbad2\n";
        let chunks = split_line_chunks(text, 4);
        let err = parse_chunks_with(&chunks, |c| {
            for (lineno, line) in c.lines() {
                if line.starts_with("bad") {
                    return Err(ParseError::at(lineno, line.to_string()));
                }
            }
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.line, 2, "{err}");
    }

    #[test]
    fn merge_preserves_order() {
        assert_eq!(
            merge_in_order(vec![vec![1, 2], vec![], vec![3]]),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn default_chunk_count_scales_down_for_small_inputs() {
        assert_eq!(default_chunk_count(10), 1);
        assert!(default_chunk_count(100 << 20) >= 1);
    }
}
