//! DIMACS graph formats.
//!
//! Two dialects, both 1-based:
//!
//! * the **shortest-path challenge** `.gr` format of the `USA-road-d.*`
//!   graphs the paper uses (`c` comments, one `p sp <n> <m>` line, `a <u>
//!   <v> <w>` arc lines) — road files list every undirected edge as two
//!   arcs, which the parser keeps (dedup via `EdgeList::simplified`);
//! * the older **edge** format (`p edge <n> <m>`, `e <u> <v>` lines).
//!
//! The `p` header is found by a cheap sequential prefix scan (it sits at
//! the top of every real file); with the node count known, the arc lines —
//! the other 99.9% of the bytes — parse chunk-parallel in
//! [`parse_chunks`].

use crate::chunk::{self, Chunk};
use crate::{ParseError, ParsedGraph};
use graph_core::EdgeList;
use std::io::Write;

fn parse_id(tok: &str, n: usize, lineno: usize) -> Result<u32, ParseError> {
    let id: usize = tok
        .parse()
        .map_err(|_| ParseError::at(lineno, format!("bad node id {tok:?}")))?;
    if id == 0 || id > n {
        return Err(ParseError::at(
            lineno,
            format!("node id {id} outside 1..={n}"),
        ));
    }
    Ok((id - 1) as u32)
}

/// The `p` line's contents and position.
struct Header {
    n: usize,
    declared_m: usize,
    /// 1-based line number of the `p` line.
    line: usize,
}

/// Scans the file prefix (comments and blanks) up to the `p` line.
fn scan_header(text: &str) -> Result<Header, ParseError> {
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next().unwrap() {
            "c" => continue,
            "p" => {
                let _kind = it
                    .next()
                    .ok_or_else(|| ParseError::at(lineno, "missing problem kind"))?;
                let n: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseError::at(lineno, "bad node count"))?;
                let declared_m = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseError::at(lineno, "bad edge count"))?;
                return Ok(Header {
                    n,
                    declared_m,
                    line: lineno,
                });
            }
            "a" | "e" => return Err(ParseError::at(lineno, "edge before `p` line")),
            other => {
                return Err(ParseError::at(
                    lineno,
                    format!("unknown line type {other:?}"),
                ));
            }
        }
    }
    Err(ParseError::file("missing `p` line"))
}

/// Parses one chunk's arc lines. Lines at or before the header line were
/// already validated by [`scan_header`] and are skipped.
fn parse_chunk_arcs(c: &Chunk<'_>, header: &Header) -> Result<Vec<(u32, u32)>, ParseError> {
    let mut edges = Vec::new();
    for (lineno, line) in c.lines() {
        if lineno <= header.line {
            continue;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next().unwrap() {
            "c" => continue,
            "p" => return Err(ParseError::at(lineno, "duplicate `p` line")),
            kind @ ("a" | "e") => {
                let u = it
                    .next()
                    .ok_or_else(|| ParseError::at(lineno, "missing tail"))
                    .and_then(|t| parse_id(t, header.n, lineno))?;
                let v = it
                    .next()
                    .ok_or_else(|| ParseError::at(lineno, "missing head"))
                    .and_then(|t| parse_id(t, header.n, lineno))?;
                // `a` lines carry a weight; `e` lines must not.
                if kind == "e" && it.next().is_some() {
                    return Err(ParseError::at(lineno, "unexpected token after edge"));
                }
                edges.push((u, v));
            }
            other => {
                return Err(ParseError::at(
                    lineno,
                    format!("unknown line type {other:?}"),
                ));
            }
        }
    }
    Ok(edges)
}

fn build(header: &Header, edges: Vec<(u32, u32)>) -> Result<ParsedGraph, ParseError> {
    if edges.len() != header.declared_m {
        return Err(ParseError::file(format!(
            "p line declared {} edges, found {}",
            header.declared_m,
            edges.len()
        )));
    }
    let graph = EdgeList::new(header.n, edges);
    Ok(ParsedGraph {
        graph,
        original_ids: (1..=header.n as u64).collect(),
    })
}

/// Parses DIMACS text (`p sp` arcs or `p edge` edges) sequentially (the
/// oracle the chunked path is pinned against).
///
/// # Errors
/// [`ParseError`] on a missing/duplicate `p` line, unknown line type,
/// out-of-range node ids, or an edge-count mismatch.
pub fn parse(text: &str) -> Result<ParsedGraph, ParseError> {
    let header = scan_header(text)?;
    let whole = Chunk {
        text,
        first_line: 1,
    };
    let edges = parse_chunk_arcs(&whole, &header)?;
    build(&header, edges)
}

/// Parses DIMACS text with chunk-parallel arc parsing; bit-identical to
/// [`parse`]. Small inputs fall back to the sequential path.
///
/// # Errors
/// Same contract as [`parse`].
pub fn parse_chunked(text: &str) -> Result<ParsedGraph, ParseError> {
    if text.len() < chunk::PARALLEL_THRESHOLD_BYTES {
        return parse(text);
    }
    parse_chunks(text, chunk::default_chunk_count(text.len()))
}

/// Chunked parse with an explicit chunk count (tests pin equivalence at
/// awkward counts).
///
/// # Errors
/// Same contract as [`parse`].
pub fn parse_chunks(text: &str, chunks: usize) -> Result<ParsedGraph, ParseError> {
    let header = scan_header(text)?;
    let chunks = chunk::split_line_chunks(text, chunks);
    let per_chunk = chunk::parse_chunks_with(&chunks, |c| parse_chunk_arcs(c, &header))?;
    build(&header, chunk::merge_in_order(per_chunk))
}

/// Writes `graph` in `.gr` shortest-path format (unit weights, one `a`
/// line per stored edge, 1-based).
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write<W: Write>(w: &mut W, graph: &EdgeList) -> std::io::Result<()> {
    writeln!(w, "c generated by euler-meets-gpu graph-io")?;
    writeln!(w, "p sp {} {}", graph.num_nodes(), graph.num_edges())?;
    for &(u, v) in graph.edges() {
        writeln!(w, "a {} {} 1", u + 1, v + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sp_format() {
        let text = "c USA-road style\np sp 4 5\na 1 2 803\na 2 1 803\na 2 3 4\na 3 4 9\na 4 1 1\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_nodes(), 4);
        assert_eq!(p.graph.num_edges(), 5);
        assert_eq!(p.graph.edges()[0], (0, 1));
        assert_eq!(p.original_ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn parses_edge_format() {
        let text = "p edge 3 2\ne 1 2\ne 2 3\n";
        let p = parse(text).unwrap();
        assert_eq!(p.graph.num_edges(), 2);
    }

    #[test]
    fn rejects_count_mismatch() {
        let e = parse("p sp 3 5\na 1 2 1\n").unwrap_err();
        assert!(e.message.contains("declared 5"));
    }

    #[test]
    fn rejects_out_of_range_ids() {
        assert!(parse("p sp 3 1\na 1 9 1\n").is_err());
        assert!(parse("p sp 3 1\na 0 1 1\n").is_err());
    }

    #[test]
    fn rejects_structure_errors() {
        assert_eq!(parse("a 1 2 1\n").unwrap_err().line, 1);
        assert_eq!(parse("p sp 2 0\np sp 2 0\n").unwrap_err().line, 2);
        assert_eq!(parse("p sp 2 1\nz 1 2\n").unwrap_err().line, 2);
        assert!(parse("c nothing\n")
            .unwrap_err()
            .message
            .contains("missing"));
    }

    #[test]
    fn round_trip() {
        let g = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let p = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(p.graph.edges(), g.edges());
        assert_eq!(p.graph.num_nodes(), 5);
    }

    #[test]
    fn chunked_matches_sequential_at_every_count() {
        let text =
            "c head\np sp 5 6\na 1 2 1\nc mid\na 2 3 1\na 3 4 1\na 4 5 1\na 5 1 1\na 2 5 9\n";
        let seq = parse(text).unwrap();
        for chunks in 1..10 {
            let par = parse_chunks(text, chunks).unwrap();
            assert_eq!(par.graph.edges(), seq.graph.edges(), "chunks {chunks}");
            assert_eq!(par.graph.num_nodes(), seq.graph.num_nodes());
        }
    }

    #[test]
    fn chunked_rejects_duplicate_p_and_bad_ids_with_line_numbers() {
        let text = "p sp 3 2\na 1 2 1\np sp 3 2\na 2 3 1\n";
        for chunks in 1..5 {
            assert_eq!(parse_chunks(text, chunks).unwrap_err().line, 3);
        }
        let text = "p sp 3 3\na 1 2 1\na 9 1 1\na 8 1 1\n";
        for chunks in 1..5 {
            assert_eq!(parse_chunks(text, chunks).unwrap_err().line, 3);
        }
    }
}
