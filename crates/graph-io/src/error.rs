//! Parse and read errors with file positions.

/// A parse failure, carrying the 1-based line number and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 = whole-file problem).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `line` (1-based).
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// Creates a whole-file error.
    pub fn file(message: impl Into<String>) -> Self {
        Self {
            line: 0,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for std::io::Error {
    fn from(e: ParseError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// The unified error of the one-call readers ([`crate::read_edge_list`]):
/// either the file could not be read, or its content failed to parse.
///
/// Earlier versions returned `std::io::Result`, which stringified the
/// [`ParseError`] and lost the structured line number; keeping the parse
/// variant intact lets callers (the `emg` CLI in particular) print
/// `file.txt: line 17: bad node id` style messages.
#[derive(Debug)]
pub enum IoError {
    /// The underlying filesystem read failed.
    Io(std::io::Error),
    /// The file content is malformed (line numbers preserved).
    Parse(ParseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "{e}"),
            IoError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<ParseError> for IoError {
    fn from(e: ParseError) -> Self {
        IoError::Parse(e)
    }
}

impl From<IoError> for std::io::Error {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Io(e) => e,
            IoError::Parse(p) => p.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::at(17, "bad token");
        assert_eq!(e.to_string(), "line 17: bad token");
        let f = ParseError::file("empty input");
        assert_eq!(f.to_string(), "empty input");
    }

    #[test]
    fn converts_to_io_error() {
        let e: std::io::Error = ParseError::at(2, "nope").into();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn io_error_keeps_line_numbers() {
        let e: IoError = ParseError::at(3, "bad edge").into();
        assert_eq!(e.to_string(), "line 3: bad edge");
        assert!(matches!(e, IoError::Parse(_)));
        let io: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, IoError::Io(_)));
        // And back down to std::io::Error for legacy call sites.
        let e: std::io::Error = IoError::Parse(ParseError::at(3, "bad")).into();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }
}
