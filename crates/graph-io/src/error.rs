//! Parse errors with file positions.

/// A parse failure, carrying the 1-based line number and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 = whole-file problem).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `line` (1-based).
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// Creates a whole-file error.
    pub fn file(message: impl Into<String>) -> Self {
        Self {
            line: 0,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for std::io::Error {
    fn from(e: ParseError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::at(17, "bad token");
        assert_eq!(e.to_string(), "line 17: bad token");
        let f = ParseError::file("empty input");
        assert_eq!(f.to_string(), "empty input");
    }

    #[test]
    fn converts_to_io_error() {
        let e: std::io::Error = ParseError::at(2, "nope").into();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }
}
