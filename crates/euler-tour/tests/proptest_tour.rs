//! Property tests: Euler tour invariants on arbitrary tree shapes, under a
//! deliberately hostile device configuration (tiny blocks, parallel paths
//! forced).

use euler_tour::{cpu, EulerTour, Ranker, TreeStats};
use gpu_sim::{Device, DeviceConfig};
use graph_core::ids::INVALID_NODE;
use graph_core::Tree;
use proptest::prelude::*;

fn small_device() -> Device {
    Device::with_config(DeviceConfig {
        threads: None,
        block_size: 32,
        seq_threshold: 8,
        ..Default::default()
    })
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (2..max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|v| (0..v as u32).boxed()).collect();
        parents.prop_map(move |ps| {
            let mut parent = vec![INVALID_NODE; n];
            for (v, p) in ps.into_iter().enumerate() {
                parent[v + 1] = p;
            }
            Tree::from_parent_array(parent, 0).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tour_is_a_closed_walk(tree in arb_tree(200)) {
        let device = small_device();
        let tour = EulerTour::build(&device, &tree).unwrap();
        let dcel = tour.dcel();
        let order = tour.order();
        // Consecutive edges chain head-to-tail; the walk starts and ends at
        // the root.
        prop_assert_eq!(dcel.tails[order[0] as usize], tree.root());
        for w in order.windows(2) {
            prop_assert_eq!(
                dcel.heads[w[0] as usize],
                dcel.tails[w[1] as usize]
            );
        }
        prop_assert_eq!(dcel.heads[*order.last().unwrap() as usize], tree.root());
    }

    #[test]
    fn every_edge_appears_twice(tree in arb_tree(150)) {
        let device = small_device();
        let tour = EulerTour::build(&device, &tree).unwrap();
        let order = tour.order();
        prop_assert_eq!(order.len(), 2 * (tree.num_nodes() - 1));
        let mut seen = vec![0u32; order.len()];
        for &e in order {
            seen[e as usize] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn all_rankers_build_identical_tours(tree in arb_tree(150)) {
        let device = small_device();
        let edges = tree.edges();
        let n = tree.num_nodes();
        let seq = EulerTour::build_from_edges_with_ranker(&device, n, &edges, 0, Ranker::Sequential).unwrap();
        let wyl = EulerTour::build_from_edges_with_ranker(&device, n, &edges, 0, Ranker::Wyllie).unwrap();
        let wj = EulerTour::build_from_edges_with_ranker(&device, n, &edges, 0, Ranker::WeiJaJa).unwrap();
        prop_assert_eq!(seq.rank(), wyl.rank());
        prop_assert_eq!(seq.rank(), wj.rank());
    }

    #[test]
    fn stats_match_oracle_and_validate(tree in arb_tree(200)) {
        let device = small_device();
        let tour = EulerTour::build(&device, &tree).unwrap();
        let stats = TreeStats::compute(&device, &tour);
        prop_assert!(stats.validate().is_ok());
        prop_assert_eq!(stats, cpu::sequential_stats(&tree));
    }

    #[test]
    fn subtree_intervals_partition_like_a_laminar_family(tree in arb_tree(150)) {
        let device = small_device();
        let tour = EulerTour::build(&device, &tree).unwrap();
        let stats = TreeStats::compute(&device, &tour);
        let n = tree.num_nodes();
        // Any two subtree intervals are nested or disjoint.
        for u in 0..n {
            for v in 0..n {
                let (us, ue) = (stats.preorder[u], stats.preorder[u] + stats.subtree_size[u]);
                let (vs, ve) = (stats.preorder[v], stats.preorder[v] + stats.subtree_size[v]);
                let nested = (us <= vs && ve <= ue) || (vs <= us && ue <= ve);
                let disjoint = ue <= vs || ve <= us;
                prop_assert!(nested || disjoint, "intervals of {} and {} cross", u, v);
            }
        }
    }
}
