//! Euler tours and tree statistics must be bit-identical across scan
//! engines: ranking, order inversion, and the preorder/size/level scans
//! all route through engine-dispatched prefix sums.

use euler_tour::{EulerTour, TreeStats};
use gpu_sim::{Device, DeviceConfig, ScanEngine};
use graph_core::ids::INVALID_NODE;
use graph_core::Tree;

fn dev(engine: ScanEngine) -> Device {
    Device::with_config(DeviceConfig {
        threads: Some(4),
        block_size: 64,
        seq_threshold: 16,
        scan_engine: engine,
        ..Default::default()
    })
}

/// Deterministic scraggly tree: node v hangs off a pseudo-random
/// predecessor, mixing deep chains with broad fans.
fn scraggly_tree(n: usize) -> Tree {
    let mut parent = vec![INVALID_NODE; n];
    let mut state = 0x243F6A8885A308D3u64;
    for (v, p) in parent.iter_mut().enumerate().skip(1) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *p = ((state >> 33) as usize % v) as u32;
    }
    Tree::from_parent_array(parent, 0).unwrap()
}

#[test]
fn tour_and_stats_are_engine_independent() {
    for n in [2usize, 65, 300, 1500] {
        let tree = scraggly_tree(n);
        let d_lb = dev(ScanEngine::Lookback);
        let d_tp = dev(ScanEngine::TwoPass);
        let lb = EulerTour::build(&d_lb, &tree).unwrap();
        let tp = EulerTour::build(&d_tp, &tree).unwrap();
        assert_eq!(lb.rank(), tp.rank(), "n={n}");
        assert_eq!(lb.order(), tp.order(), "n={n}");

        let s_lb = TreeStats::compute(&d_lb, &lb);
        let s_tp = TreeStats::compute(&d_tp, &tp);
        assert_eq!(s_lb.preorder, s_tp.preorder, "n={n}");
        assert_eq!(s_lb.subtree_size, s_tp.subtree_size, "n={n}");
        assert_eq!(s_lb.level, s_tp.level, "n={n}");
        assert_eq!(s_lb.parent, s_tp.parent, "n={n}");
        s_lb.validate().unwrap();
    }
}
