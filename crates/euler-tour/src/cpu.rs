//! Sequential (single-core) computation of the same tree statistics —
//! the CPU baseline of the paper's experiments and the test oracle for the
//! GPU pipeline.
//!
//! The traversal deliberately visits children in the *same order as the
//! DCEL-derived tour*: sorted neighbor lists, walked cyclically starting
//! just after the edge the traversal arrived on. This makes every array
//! (including preorder) bit-for-bit comparable with
//! [`crate::stats::TreeStats::compute`].

use crate::stats::TreeStats;
use graph_core::ids::{NodeId, INVALID_NODE};
use graph_core::Tree;

/// Computes preorder/size/level/parent with an iterative DFS.
///
/// O(n) time, O(n) space; uses an explicit stack so million-node paths do
/// not overflow the call stack.
pub fn sequential_stats(tree: &Tree) -> TreeStats {
    let n = tree.num_nodes();
    let root = tree.root();
    if n == 1 {
        return TreeStats {
            preorder: vec![1],
            subtree_size: vec![1],
            level: vec![0],
            parent: vec![INVALID_NODE],
        };
    }

    // Sorted adjacency (children and parent mixed), CSR layout.
    let (offsets, adj) = sorted_adjacency(tree);

    let mut preorder = vec![0u32; n];
    let mut subtree_size = vec![1u32; n];
    let mut level = vec![0u32; n];
    let parent: Vec<NodeId> = tree.parent_slice().to_vec();

    // Stack frame: (node, cyclic start position, neighbors to emit, emitted).
    let mut stack: Vec<(u32, u32, u32, u32)> = Vec::with_capacity(64);
    let mut next_pre = 1u32;

    let deg = |v: u32| offsets[v as usize + 1] - offsets[v as usize];
    let start_of = |v: u32, from: NodeId| -> u32 {
        let s = offsets[v as usize] as usize;
        let e = offsets[v as usize + 1] as usize;
        if from == INVALID_NODE {
            0
        } else {
            // Position just after the parent in the sorted list.
            let idx = adj[s..e]
                .binary_search(&from)
                .expect("parent must be adjacent");
            (idx as u32 + 1) % deg(v).max(1)
        }
    };

    preorder[root as usize] = next_pre;
    next_pre += 1;
    level[root as usize] = 0;
    stack.push((root, start_of(root, INVALID_NODE), deg(root), 0));

    while let Some(&mut (v, start, to_emit, ref mut emitted)) = stack.last_mut() {
        if *emitted == to_emit {
            stack.pop();
            if let Some(p) = tree.parent(v) {
                subtree_size[p as usize] += subtree_size[v as usize];
            }
            continue;
        }
        let d = deg(v);
        let pos = (start + *emitted) % d;
        *emitted += 1;
        let w = adj[(offsets[v as usize] + pos) as usize];
        preorder[w as usize] = next_pre;
        next_pre += 1;
        level[w as usize] = level[v as usize] + 1;
        let w_children = deg(w) - 1; // all neighbors minus the parent edge
        stack.push((w, start_of(w, v), w_children, 0));
    }

    TreeStats {
        preorder,
        subtree_size,
        level,
        parent,
    }
}

/// Builds a CSR adjacency over the tree edges with each neighbor list
/// sorted ascending.
fn sorted_adjacency(tree: &Tree) -> (Vec<u32>, Vec<u32>) {
    let n = tree.num_nodes();
    let mut degree = vec![0u32; n];
    for v in 0..n as u32 {
        if let Some(p) = tree.parent(v) {
            degree[v as usize] += 1;
            degree[p as usize] += 1;
        }
    }
    let mut offsets = vec![0u32; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let mut cursor = offsets.clone();
    let mut adj = vec![0u32; 2 * (n - 1)];
    for v in 0..n as u32 {
        if let Some(p) = tree.parent(v) {
            adj[cursor[v as usize] as usize] = p;
            cursor[v as usize] += 1;
            adj[cursor[p as usize] as usize] = v;
            cursor[p as usize] += 1;
        }
    }
    for v in 0..n {
        adj[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
    }
    (offsets, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TreeStats;
    use crate::tour::EulerTour;
    use gpu_sim::Device;

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parent = vec![INVALID_NODE; n];
        for (v, p) in parent.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        Tree::from_parent_array(parent, 0).unwrap()
    }

    #[test]
    fn matches_gpu_stats_exactly() {
        let device = Device::new();
        for (n, seed) in [(2usize, 1u64), (3, 2), (17, 3), (1000, 4), (4096, 5)] {
            let tree = random_tree(n, seed);
            let cpu = sequential_stats(&tree);
            let tour = EulerTour::build(&device, &tree).unwrap();
            let gpu = TreeStats::compute(&device, &tour);
            assert_eq!(cpu, gpu, "n={n} seed={seed}");
        }
    }

    #[test]
    fn paper_tree_matches() {
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 2, 0, 0, 0, 2], 0).unwrap();
        let s = sequential_stats(&tree);
        assert_eq!(s.preorder, vec![1, 3, 2, 5, 6, 4]);
        assert_eq!(s.subtree_size, vec![6, 1, 3, 1, 1, 1]);
        assert_eq!(s.level, vec![0, 2, 1, 1, 1, 2]);
    }

    #[test]
    fn deep_path_does_not_overflow() {
        let n = 500_000;
        let mut parent = vec![INVALID_NODE; n];
        for (v, p) in parent.iter_mut().enumerate().skip(1) {
            *p = v as u32 - 1;
        }
        let tree = Tree::from_parent_array(parent, 0).unwrap();
        let s = sequential_stats(&tree);
        assert_eq!(s.level[n - 1], n as u32 - 1);
        assert_eq!(s.preorder[n - 1], n as u32);
    }

    #[test]
    fn rerooted_tree_matches_gpu() {
        let device = Device::new();
        // Build a tree rooted at 5 instead of 0.
        let edges: Vec<(u32, u32)> = (1..100u32).map(|v| (v / 2, v)).collect();
        let tree = Tree::from_edges(100, &edges, 5).unwrap();
        let cpu = sequential_stats(&tree);
        let tour = EulerTour::build(&device, &tree).unwrap();
        let gpu = TreeStats::compute(&device, &tour);
        assert_eq!(cpu, gpu);
    }

    #[test]
    fn validates() {
        let s = sequential_stats(&random_tree(2000, 7));
        s.validate().unwrap();
    }
}
