//! Dynamic trees as Euler tours — link/cut forests with subtree aggregates.
//!
//! The paper's related work points at Euler tours beyond PRAM: "dynamic
//! problems \[28, 41, 57\]", reference \[57\] being Tarjan's *Dynamic trees as
//! search trees via Euler tours*. This module implements that data
//! structure: a forest under edge insertions (`link`) and deletions
//! (`cut`), with connectivity queries, component vertex counts and
//! value sums, and rooted subtree sums — all in O(log n) expected time.
//!
//! The representation is the same object the static pipeline builds in
//! [`crate::tour`]: an Euler circuit over directed arcs. Here the circuit
//! is kept in a balanced search tree (a treap ordered by implicit tour
//! position) instead of an array, so it can be split and concatenated:
//!
//! * every vertex `v` owns a permanent *loop node* `(v, v)`;
//! * every forest edge `{u, v}` owns two *arc nodes* `(u, v)` and `(v, u)`;
//! * `link` reroots both tours (a rotation of the circular sequence) and
//!   concatenates `tour(u) · (u,v) · tour(v) · (v,u)`;
//! * `cut` splits around the two arcs; the inner part is one new tree, the
//!   outer concatenation the other.
//!
//! Treap nodes carry subtree counts and value sums over loop nodes, which
//! is what makes the aggregate queries logarithmic.

use std::collections::HashMap;

/// Vertex identifier (same convention as the rest of the workspace).
pub type Vertex = u32;

const NIL: u32 = u32::MAX;

/// Errors from [`EulerTourForest`] mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestError {
    /// `link` endpoints are already in the same tree (would close a cycle).
    AlreadyConnected,
    /// `cut` edge is not currently in the forest.
    NoSuchEdge,
    /// A vertex id is out of range.
    VertexOutOfRange,
    /// `link`/`cut` endpoints are the same vertex.
    SelfLoop,
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::AlreadyConnected => write!(f, "endpoints already connected"),
            ForestError::NoSuchEdge => write!(f, "no such forest edge"),
            ForestError::VertexOutOfRange => write!(f, "vertex id out of range"),
            ForestError::SelfLoop => write!(f, "self-loops are not tree edges"),
        }
    }
}

impl std::error::Error for ForestError {}

/// One treap node: a loop `(v, v)` or an arc `(u, v)` of the Euler circuit.
#[derive(Debug, Clone)]
struct Node {
    left: u32,
    right: u32,
    parent: u32,
    /// Deterministic pseudo-random heap priority.
    priority: u64,
    /// Nodes in this treap subtree (for order statistics).
    count: u32,
    /// Loop value if this is a loop node, 0 for arcs.
    value: i64,
    /// Sum of loop values over this treap subtree.
    sum: i64,
    /// Loop nodes in this treap subtree (= vertices of the segment).
    loops: u32,
    /// 1 for loop nodes, 0 for arcs (own contribution to `loops`).
    is_loop: bool,
}

/// A dynamic forest of Euler-tour trees.
///
/// ```
/// use euler_tour::dynamic::EulerTourForest;
///
/// let mut f = EulerTourForest::new(5);
/// f.link(0, 1).unwrap();
/// f.link(1, 2).unwrap();
/// assert!(f.connected(0, 2));
/// assert_eq!(f.component_size(0), 3);
/// f.cut(0, 1).unwrap();
/// assert!(!f.connected(0, 2));
/// assert_eq!(f.component_size(0), 1);
/// ```
pub struct EulerTourForest {
    nodes: Vec<Node>,
    /// Loop node of each vertex is node id `v` (never freed).
    num_vertices: usize,
    /// Arc nodes of live edges: `(min, max) -> (arc min→max, arc max→min)`.
    edges: HashMap<(Vertex, Vertex), (u32, u32)>,
    /// Free list of recycled arc node slots.
    free: Vec<u32>,
    /// SplitMix64 state for priorities.
    rng: u64,
}

impl EulerTourForest {
    /// Creates a forest of `n` isolated vertices, all values zero.
    pub fn new(n: usize) -> Self {
        let mut forest = Self {
            nodes: Vec::with_capacity(2 * n),
            num_vertices: n,
            edges: HashMap::new(),
            free: Vec::new(),
            rng: 0x9E3779B97F4A7C15,
        };
        for _ in 0..n {
            let pr = forest.next_priority();
            forest.nodes.push(Node {
                left: NIL,
                right: NIL,
                parent: NIL,
                priority: pr,
                count: 1,
                value: 0,
                sum: 0,
                loops: 1,
                is_loop: true,
            });
        }
        forest
    }

    /// Number of vertices the forest was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently in the forest.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn next_priority(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    // ----- treap plumbing -------------------------------------------------

    fn pull(&mut self, x: u32) {
        let (l, r) = (self.nodes[x as usize].left, self.nodes[x as usize].right);
        let mut count = 1;
        let mut sum = self.nodes[x as usize].value;
        let mut loops = self.nodes[x as usize].is_loop as u32;
        for c in [l, r] {
            if c != NIL {
                count += self.nodes[c as usize].count;
                sum += self.nodes[c as usize].sum;
                loops += self.nodes[c as usize].loops;
                self.nodes[c as usize].parent = x;
            }
        }
        let n = &mut self.nodes[x as usize];
        n.count = count;
        n.sum = sum;
        n.loops = loops;
    }

    /// Treap root of the sequence containing `x`.
    fn tree_root(&self, mut x: u32) -> u32 {
        while self.nodes[x as usize].parent != NIL {
            x = self.nodes[x as usize].parent;
        }
        x
    }

    /// 0-based position of `x` in its sequence.
    fn position(&self, x: u32) -> usize {
        let mut pos = match self.nodes[x as usize].left {
            NIL => 0,
            l => self.nodes[l as usize].count as usize,
        };
        let mut cur = x;
        loop {
            let p = self.nodes[cur as usize].parent;
            if p == NIL {
                return pos;
            }
            if self.nodes[p as usize].right == cur {
                pos += 1;
                if self.nodes[p as usize].left != NIL {
                    pos += self.nodes[self.nodes[p as usize].left as usize].count as usize;
                }
            }
            cur = p;
        }
    }

    /// Merges two treaps (all of `a` before all of `b`). Either may be NIL.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            if b != NIL {
                self.nodes[b as usize].parent = NIL;
            }
            return b;
        }
        if b == NIL {
            self.nodes[a as usize].parent = NIL;
            return a;
        }
        if self.nodes[a as usize].priority >= self.nodes[b as usize].priority {
            let ar = self.nodes[a as usize].right;
            let nr = self.merge(ar, b);
            self.nodes[a as usize].right = nr;
            self.pull(a);
            self.nodes[a as usize].parent = NIL;
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let nl = self.merge(a, bl);
            self.nodes[b as usize].left = nl;
            self.pull(b);
            self.nodes[b as usize].parent = NIL;
            b
        }
    }

    /// Splits `t` into (first `k` nodes, rest).
    fn split(&mut self, t: u32, k: usize) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        let left = self.nodes[t as usize].left;
        let left_count = if left == NIL {
            0
        } else {
            self.nodes[left as usize].count as usize
        };
        if k <= left_count {
            let (a, b) = self.split(left, k);
            self.nodes[t as usize].left = b;
            self.pull(t);
            self.nodes[t as usize].parent = NIL;
            if a != NIL {
                self.nodes[a as usize].parent = NIL;
            }
            (a, t)
        } else {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split(right, k - left_count - 1);
            self.nodes[t as usize].right = a;
            self.pull(t);
            self.nodes[t as usize].parent = NIL;
            if b != NIL {
                self.nodes[b as usize].parent = NIL;
            }
            (t, b)
        }
    }

    fn alloc_arc(&mut self) -> u32 {
        let pr = self.next_priority();
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = Node {
                left: NIL,
                right: NIL,
                parent: NIL,
                priority: pr,
                count: 1,
                value: 0,
                sum: 0,
                loops: 0,
                is_loop: false,
            };
            id
        } else {
            self.nodes.push(Node {
                left: NIL,
                right: NIL,
                parent: NIL,
                priority: pr,
                count: 1,
                value: 0,
                sum: 0,
                loops: 0,
                is_loop: false,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Rotates the circular tour of `v`'s tree so it starts at loop `v`;
    /// returns the new treap root.
    fn reroot(&mut self, v: Vertex) -> u32 {
        let root = self.tree_root(v);
        let pos = self.position(v);
        if pos == 0 {
            return root;
        }
        let (a, b) = self.split(root, pos);
        self.merge(b, a)
    }

    fn check_vertex(&self, v: Vertex) -> Result<(), ForestError> {
        if (v as usize) < self.num_vertices {
            Ok(())
        } else {
            Err(ForestError::VertexOutOfRange)
        }
    }

    // ----- public operations ----------------------------------------------

    /// Whether `u` and `v` are in the same tree.
    ///
    /// # Panics
    /// Panics if a vertex id is out of range.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        assert!((u as usize) < self.num_vertices, "vertex out of range");
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        u == v || self.tree_root(u) == self.tree_root(v)
    }

    /// Adds edge `{u, v}`, joining two trees.
    ///
    /// # Errors
    /// [`ForestError::AlreadyConnected`] if it would close a cycle,
    /// [`ForestError::SelfLoop`] / [`ForestError::VertexOutOfRange`] on bad
    /// arguments.
    pub fn link(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(ForestError::SelfLoop);
        }
        if self.connected(u, v) {
            return Err(ForestError::AlreadyConnected);
        }
        let tu = self.reroot(u);
        let tv = self.reroot(v);
        let uv = self.alloc_arc();
        let vu = self.alloc_arc();
        let a = self.merge(tu, uv);
        let b = self.merge(a, tv);
        self.merge(b, vu);
        self.edges.insert(
            (u.min(v), u.max(v)),
            if u < v { (uv, vu) } else { (vu, uv) },
        );
        Ok(())
    }

    /// Removes edge `{u, v}`, splitting its tree in two.
    ///
    /// # Errors
    /// [`ForestError::NoSuchEdge`] if the edge is not in the forest.
    pub fn cut(&mut self, u: Vertex, v: Vertex) -> Result<(), ForestError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(ForestError::SelfLoop);
        }
        let key = (u.min(v), u.max(v));
        let (a1, a2) = self.edges.remove(&key).ok_or(ForestError::NoSuchEdge)?;
        let root = self.tree_root(a1);
        let (p1, p2) = (self.position(a1), self.position(a2));
        let (first, second, pa, pb) = if p1 < p2 {
            (a1, a2, p1, p2)
        } else {
            (a2, a1, p2, p1)
        };
        // [.. pa) | [pa] | (pa .. pb) | [pb] | (pb ..]
        let (x, rest) = self.split(root, pa);
        let (arc_a, rest) = self.split(rest, 1);
        let (inner, rest) = self.split(rest, pb - pa - 1);
        let (arc_b, z) = self.split(rest, 1);
        debug_assert_eq!(arc_a, first);
        debug_assert_eq!(arc_b, second);
        self.merge(x, z);
        if inner != NIL {
            self.nodes[inner as usize].parent = NIL;
        }
        self.free.push(a1);
        self.free.push(a2);
        Ok(())
    }

    /// Number of vertices in `v`'s tree.
    pub fn component_size(&self, v: Vertex) -> usize {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        self.nodes[self.tree_root(v) as usize].loops as usize
    }

    /// The value stored at vertex `v`.
    pub fn value(&self, v: Vertex) -> i64 {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        self.nodes[v as usize].value
    }

    /// Sets the value stored at vertex `v` (O(log n): updates sums upward).
    pub fn set_value(&mut self, v: Vertex, value: i64) {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        let delta = value - self.nodes[v as usize].value;
        self.nodes[v as usize].value = value;
        let mut x = v;
        while x != NIL {
            self.nodes[x as usize].sum += delta;
            x = self.nodes[x as usize].parent;
        }
    }

    /// Sum of values over `v`'s whole tree.
    pub fn component_sum(&self, v: Vertex) -> i64 {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        self.nodes[self.tree_root(v) as usize].sum
    }

    /// Sum of values over the subtree of `v` when its tree is rooted at the
    /// far side of edge `{parent, v}` — i.e. the component of `v` that
    /// cutting `{parent, v}` would produce, computed without mutating.
    ///
    /// # Errors
    /// [`ForestError::NoSuchEdge`] if `{parent, v}` is not a forest edge.
    pub fn subtree_sum(&mut self, v: Vertex, parent: Vertex) -> Result<i64, ForestError> {
        self.check_vertex(v)?;
        self.check_vertex(parent)?;
        if v == parent {
            return Err(ForestError::SelfLoop);
        }
        let key = (v.min(parent), v.max(parent));
        let &(a_small, a_big) = self.edges.get(&key).ok_or(ForestError::NoSuchEdge)?;
        // Arc parent→v opens the subtree segment, arc v→parent closes it.
        let (open, close) = if parent < v {
            (a_small, a_big)
        } else {
            (a_big, a_small)
        };
        // Rotate so the tour starts at the parent: the open arc is then
        // guaranteed to precede the close arc.
        self.reroot(parent);
        let (po, pc) = (self.position(open), self.position(close));
        debug_assert!(po < pc);
        let root = self.tree_root(open);
        let (head, rest) = self.split(root, po + 1);
        let (mid, tail) = self.split(rest, pc - po - 1);
        let sum = if mid == NIL {
            0
        } else {
            self.nodes[mid as usize].sum
        };
        let a = self.merge(head, mid);
        self.merge(a, tail);
        Ok(sum)
    }

    /// Vertices of `v`'s tree in tour order (O(size); for tests and debug).
    pub fn component_vertices(&self, v: Vertex) -> Vec<Vertex> {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        let mut out = Vec::new();
        let mut stack = vec![self.tree_root(v)];
        // Iterative in-order traversal collecting loop nodes.
        let mut cur = stack.pop().unwrap();
        let mut path = Vec::new();
        loop {
            while cur != NIL {
                path.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            match path.pop() {
                None => break,
                Some(x) => {
                    if self.nodes[x as usize].is_loop {
                        out.push(x);
                    }
                    cur = self.nodes[x as usize].right;
                }
            }
        }
        let _ = stack;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive oracle: adjacency sets + BFS.
    struct Oracle {
        adj: Vec<Vec<u32>>,
        values: Vec<i64>,
    }

    impl Oracle {
        fn new(n: usize) -> Self {
            Self {
                adj: vec![Vec::new(); n],
                values: vec![0; n],
            }
        }
        fn link(&mut self, u: u32, v: u32) {
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
        }
        fn cut(&mut self, u: u32, v: u32) {
            self.adj[u as usize].retain(|&w| w != v);
            self.adj[v as usize].retain(|&w| w != u);
        }
        fn component(&self, s: u32) -> Vec<u32> {
            let mut seen = vec![false; self.adj.len()];
            let mut stack = vec![s];
            seen[s as usize] = true;
            let mut out = vec![s];
            while let Some(x) = stack.pop() {
                for &w in &self.adj[x as usize] {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        out.push(w);
                        stack.push(w);
                    }
                }
            }
            out
        }
        fn connected(&self, u: u32, v: u32) -> bool {
            self.component(u).contains(&v)
        }
        fn component_sum(&self, v: u32) -> i64 {
            self.component(v)
                .iter()
                .map(|&x| self.values[x as usize])
                .sum()
        }
        fn subtree_sum(&mut self, v: u32, p: u32) -> i64 {
            self.cut(v, p);
            let s = self.component_sum(v);
            self.link(v, p);
            s
        }
    }

    #[test]
    fn fresh_forest_is_disconnected() {
        let f = EulerTourForest::new(4);
        assert!(!f.connected(0, 1));
        assert!(f.connected(2, 2));
        assert_eq!(f.component_size(3), 1);
        assert_eq!(f.num_edges(), 0);
    }

    #[test]
    fn link_connects_and_cut_disconnects() {
        let mut f = EulerTourForest::new(6);
        f.link(0, 1).unwrap();
        f.link(2, 3).unwrap();
        assert!(f.connected(0, 1));
        assert!(!f.connected(1, 2));
        f.link(1, 2).unwrap();
        assert!(f.connected(0, 3));
        assert_eq!(f.component_size(0), 4);
        f.cut(1, 2).unwrap();
        assert!(!f.connected(0, 3));
        assert_eq!(f.component_size(0), 2);
        assert_eq!(f.component_size(2), 2);
    }

    #[test]
    fn link_errors() {
        let mut f = EulerTourForest::new(3);
        assert_eq!(f.link(0, 0).unwrap_err(), ForestError::SelfLoop);
        assert_eq!(f.link(0, 7).unwrap_err(), ForestError::VertexOutOfRange);
        f.link(0, 1).unwrap();
        f.link(1, 2).unwrap();
        assert_eq!(f.link(0, 2).unwrap_err(), ForestError::AlreadyConnected);
    }

    #[test]
    fn cut_errors() {
        let mut f = EulerTourForest::new(3);
        f.link(0, 1).unwrap();
        assert_eq!(f.cut(1, 2).unwrap_err(), ForestError::NoSuchEdge);
        assert_eq!(f.cut(2, 2).unwrap_err(), ForestError::SelfLoop);
        f.cut(0, 1).unwrap();
        assert_eq!(f.cut(0, 1).unwrap_err(), ForestError::NoSuchEdge);
    }

    #[test]
    fn values_and_component_sums() {
        let mut f = EulerTourForest::new(5);
        for v in 0..5 {
            f.set_value(v, (v as i64 + 1) * 10);
        }
        f.link(0, 1).unwrap();
        f.link(1, 2).unwrap();
        assert_eq!(f.component_sum(2), 10 + 20 + 30);
        assert_eq!(f.component_sum(3), 40);
        f.set_value(1, -20);
        assert_eq!(f.component_sum(0), 10 - 20 + 30);
        assert_eq!(f.value(1), -20);
    }

    #[test]
    fn subtree_sums_on_a_path() {
        // 0 - 1 - 2 - 3, values 1, 2, 4, 8.
        let mut f = EulerTourForest::new(4);
        for v in 0..4u32 {
            f.set_value(v, 1 << v);
            if v > 0 {
                f.link(v - 1, v).unwrap();
            }
        }
        assert_eq!(f.subtree_sum(2, 1).unwrap(), 4 + 8);
        assert_eq!(f.subtree_sum(1, 2).unwrap(), 1 + 2);
        assert_eq!(f.subtree_sum(3, 2).unwrap(), 8);
        assert_eq!(f.subtree_sum(0, 1).unwrap(), 1);
        // Querying does not mutate: repeat.
        assert_eq!(f.subtree_sum(2, 1).unwrap(), 12);
        assert_eq!(f.subtree_sum(3, 0).unwrap_err(), ForestError::NoSuchEdge);
    }

    #[test]
    fn component_vertices_tracks_membership() {
        let mut f = EulerTourForest::new(6);
        f.link(0, 2).unwrap();
        f.link(2, 4).unwrap();
        let mut c = f.component_vertices(4);
        c.sort_unstable();
        assert_eq!(c, [0, 2, 4]);
        f.cut(2, 4).unwrap();
        assert_eq!(f.component_vertices(4), [4]);
    }

    #[test]
    fn star_center_cuts() {
        let n = 50;
        let mut f = EulerTourForest::new(n);
        for v in 1..n as u32 {
            f.link(0, v).unwrap();
        }
        assert_eq!(f.component_size(0), n);
        // Cut every other spoke.
        for v in (1..n as u32).step_by(2) {
            f.cut(0, v).unwrap();
        }
        assert_eq!(f.component_size(0), 1 + (n - 1) / 2);
        for v in (1..n as u32).step_by(2) {
            assert_eq!(f.component_size(v), 1);
        }
    }

    #[test]
    fn relink_after_cut_reuses_arcs() {
        let mut f = EulerTourForest::new(2);
        for _ in 0..100 {
            f.link(0, 1).unwrap();
            f.cut(0, 1).unwrap();
        }
        // Arena stays bounded: 2 loops + 2 recycled arcs.
        assert_eq!(f.nodes.len(), 4);
    }

    #[test]
    fn randomized_against_oracle() {
        let n = 60usize;
        let mut f = EulerTourForest::new(n);
        let mut o = Oracle::new(n);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut state = 2024u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for round in 0..3000 {
            let op = step() % 10;
            let u = (step() % n as u64) as u32;
            let v = (step() % n as u64) as u32;
            match op {
                0..=3 => {
                    // link if possible
                    if u != v && !f.connected(u, v) {
                        assert!(!o.connected(u, v), "round {round}");
                        f.link(u, v).unwrap();
                        o.link(u, v);
                        edges.push((u, v));
                    } else if u != v {
                        assert!(o.connected(u, v), "round {round}");
                        assert_eq!(f.link(u, v).unwrap_err(), ForestError::AlreadyConnected);
                    }
                }
                4..=5 => {
                    if !edges.is_empty() {
                        let i = (step() % edges.len() as u64) as usize;
                        let (a, b) = edges.swap_remove(i);
                        f.cut(a, b).unwrap();
                        o.cut(a, b);
                    }
                }
                6 => {
                    let val = (step() % 1000) as i64 - 500;
                    f.set_value(u, val);
                    o.values[u as usize] = val;
                }
                7 => {
                    assert_eq!(f.connected(u, v), o.connected(u, v), "round {round}");
                }
                8 => {
                    assert_eq!(f.component_size(u), o.component(u).len(), "round {round}");
                    assert_eq!(f.component_sum(u), o.component_sum(u), "round {round}");
                }
                _ => {
                    if !edges.is_empty() {
                        let i = (step() % edges.len() as u64) as usize;
                        let (a, b) = edges[i];
                        assert_eq!(
                            f.subtree_sum(a, b).unwrap(),
                            o.subtree_sum(a, b),
                            "round {round}"
                        );
                        assert_eq!(
                            f.subtree_sum(b, a).unwrap(),
                            o.subtree_sum(b, a),
                            "round {round}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn component_sums_partition_total() {
        // Invariant: sums over distinct components add up to the total.
        let n = 40usize;
        let mut f = EulerTourForest::new(n);
        let mut total = 0i64;
        let mut state = 7u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for v in 0..n as u32 {
            let val = (step() % 100) as i64;
            f.set_value(v, val);
            total += val;
        }
        for _ in 0..30 {
            let u = (step() % n as u64) as u32;
            let v = (step() % n as u64) as u32;
            if u != v && !f.connected(u, v) {
                f.link(u, v).unwrap();
            }
        }
        let mut seen = vec![false; n];
        let mut sum = 0i64;
        for v in 0..n as u32 {
            if !seen[v as usize] {
                for w in f.component_vertices(v) {
                    seen[w as usize] = true;
                }
                sum += f.component_sum(v);
            }
        }
        assert_eq!(sum, total);
    }
}
