//! Tree statistics as scans over the Euler tour array.
//!
//! With the tour in array form (one list ranking, §2.2), each statistic is
//! one scan plus one scatter kernel:
//!
//! * **preorder** — down-edges weigh 1, up-edges 0; the prefix sum at the
//!   down-edge into `v` is `preorder(v) - 1` (we use 1-based preorder, as
//!   Schieber–Vishkin require);
//! * **level** — down-edges weigh +1, up-edges −1; the prefix sum at the
//!   down-edge into `v` is `level(v)` (root = 0);
//! * **subtree size** — no scan needed: the tour enters `v` at position `p`
//!   and leaves at `q = rank(twin)`, and `size(v) = (q − p + 1) / 2`;
//! * **parent** — the tail of the down-edge into `v`.

use crate::dcel::twin;
use crate::tour::EulerTour;
use gpu_sim::Device;
use graph_core::ids::{NodeId, INVALID_NODE};

/// Per-node tree statistics produced by the Euler tour technique (or by the
/// sequential oracle in [`crate::cpu`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeStats {
    /// 1-based preorder number of each node (root = 1).
    pub preorder: Vec<u32>,
    /// Subtree size of each node (root = n).
    pub subtree_size: Vec<u32>,
    /// Distance from the root (root = 0).
    pub level: Vec<u32>,
    /// Parent of each node; `INVALID_NODE` for the root.
    pub parent: Vec<NodeId>,
}

impl TreeStats {
    /// Computes all statistics from a built tour with four kernels and two
    /// scans.
    pub fn compute(device: &Device, tour: &EulerTour) -> TreeStats {
        let n = tour.num_nodes();
        if n == 1 {
            return TreeStats {
                preorder: vec![1],
                subtree_size: vec![1],
                level: vec![0],
                parent: vec![INVALID_NODE],
            };
        }
        let h = tour.len();
        let order = tour.order();
        let rank = tour.rank();
        let dcel = tour.dcel();

        // Down flags by tour position (pooled).
        let down = {
            let _k = device.kernel_label("stats_down_flags");
            device.capture_read(order);
            device.capture_read(rank);
            device.alloc_pooled_map(h, |p| u8::from(tour.is_down(order[p])))
        };
        let down = &down;

        // Preorder: fused transform + inclusive scan of down flags — no
        // materialized weight array, scratch from the arena. The flags feed
        // the generator closure, so each scan declares the read.
        let mut pre_scan = device.alloc_pooled::<u64>(h);
        device.capture_read(&down[..]);
        device.map_scan_inclusive_into(h, |p| down[p] as u64, &mut pre_scan, 0u64, |a, b| a + b);

        // Level: fused transform + inclusive scan of ±1.
        let mut level_scan = device.alloc_pooled::<i64>(h);
        device.capture_read(&down[..]);
        device.map_scan_inclusive_into(
            h,
            |p| if down[p] == 1 { 1i64 } else { -1i64 },
            &mut level_scan,
            0i64,
            |a, b| a + b,
        );

        let mut preorder = vec![0u32; n];
        let mut subtree_size = vec![0u32; n];
        let mut level = vec![0u32; n];
        let mut parent = vec![INVALID_NODE; n];
        device.capture_fresh(&preorder[..]);
        device.capture_fresh(&subtree_size[..]);
        device.capture_fresh(&level[..]);
        device.capture_fresh(&parent[..]);
        preorder[tour.root() as usize] = 1;
        subtree_size[tour.root() as usize] = n as u32;
        level[tour.root() as usize] = 0;

        {
            let _k = device.kernel_label("tree_stats_scatter");
            // Closure-side inputs: flags, both scans, and the tour arrays.
            device.capture_read(&down[..]);
            device.capture_read(&pre_scan[..]);
            device.capture_read(&level_scan[..]);
            device.capture_read(order);
            device.capture_read(rank);
            // Each non-root node has exactly one down-edge, so targets are
            // distinct across virtual threads.
            let pre_shared = device.shared(&mut preorder);
            let size_shared = device.shared(&mut subtree_size);
            let level_shared = device.shared(&mut level);
            let parent_shared = device.shared(&mut parent);
            let down_ref = &down;
            let pre_scan_ref = &pre_scan;
            let level_scan_ref = &level_scan;
            device.for_each(h, |p| {
                if down_ref[p] == 1 {
                    let e = order[p];
                    let v = dcel.heads[e as usize] as usize;
                    let q = rank[twin(e) as usize];
                    pre_shared.write(v, pre_scan_ref[p] as u32 + 1);
                    size_shared.write(v, (q - p as u32).div_ceil(2));
                    level_shared.write(v, level_scan_ref[p] as u32);
                    parent_shared.write(v, dcel.tails[e as usize]);
                }
            });
        }

        TreeStats {
            preorder,
            subtree_size,
            level,
            parent,
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.preorder.len()
    }

    /// Whether `u` lies in the subtree rooted at `v` (every node lies in
    /// its own subtree). O(1): preorder-interval containment —
    /// `pre(v) ≤ pre(u) < pre(v) + size(v)`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn in_subtree(&self, u: NodeId, v: NodeId) -> bool {
        let pu = self.preorder[u as usize];
        let pv = self.preorder[v as usize];
        pu >= pv && pu - pv < self.subtree_size[v as usize]
    }

    /// Answers a batch of subtree-membership queries in one device
    /// launch: `out[i] = 1` iff `queries[i].0` lies in the subtree rooted
    /// at `queries[i].1`. One virtual thread per pair, each running the
    /// O(1) [`in_subtree`] kernel — the batch entry point the `emg serve`
    /// daemon's request coalescer dispatches.
    ///
    /// [`in_subtree`]: TreeStats::in_subtree
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len()` or a node id is out of
    /// range.
    pub fn in_subtree_batch_on(&self, device: &Device, queries: &[(u32, u32)], out: &mut [u8]) {
        assert_eq!(queries.len(), out.len(), "query/output length mismatch");
        let _k = device.kernel_label("stats_subtree_batch");
        // The pairs and both stats arrays feed the closure.
        device.capture_read(queries);
        device.capture_read(&self.preorder);
        device.capture_read(&self.subtree_size);
        device.map(out, |q| {
            let (u, v) = queries[q];
            u8::from(self.in_subtree(u, v))
        });
    }

    /// Validates internal consistency (preorder is a permutation of `1..=n`,
    /// subtree intervals nest, levels agree with parents). O(n).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        let mut seen = vec![false; n + 1];
        for &p in &self.preorder {
            if p == 0 || p as usize > n {
                return Err(format!("preorder {p} out of 1..={n}"));
            }
            if seen[p as usize] {
                return Err(format!("duplicate preorder {p}"));
            }
            seen[p as usize] = true;
        }
        for v in 0..n {
            match self.parent[v] {
                INVALID_NODE => {
                    if self.level[v] != 0 {
                        return Err(format!("root {v} has level {}", self.level[v]));
                    }
                    if self.subtree_size[v] as usize != n {
                        return Err(format!("root subtree size {}", self.subtree_size[v]));
                    }
                }
                p => {
                    let p = p as usize;
                    if self.level[v] != self.level[p] + 1 {
                        return Err(format!("level of {v} inconsistent with parent {p}"));
                    }
                    // Child interval nests within the parent interval.
                    let (cs, ce) = (self.preorder[v], self.preorder[v] + self.subtree_size[v]);
                    let (ps, pe) = (self.preorder[p], self.preorder[p] + self.subtree_size[p]);
                    if !(ps < cs && ce <= pe) {
                        return Err(format!(
                            "subtree interval of {v} [{cs},{ce}) escapes parent [{ps},{pe})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tour::EulerTour;

    fn paper_stats(device: &Device) -> TreeStats {
        let tour =
            EulerTour::build_from_edges(device, 6, &[(0, 2), (0, 3), (0, 4), (2, 1), (2, 5)], 0)
                .unwrap();
        TreeStats::compute(device, &tour)
    }

    #[test]
    fn paper_tree_preorder() {
        let device = Device::new();
        let s = paper_stats(&device);
        // Tour order: 0, 2, 1, 5, 3, 4 (children in ascending order).
        assert_eq!(s.preorder, vec![1, 3, 2, 5, 6, 4]);
    }

    #[test]
    fn paper_tree_sizes_levels_parents() {
        let device = Device::new();
        let s = paper_stats(&device);
        assert_eq!(s.subtree_size, vec![6, 1, 3, 1, 1, 1]);
        assert_eq!(s.level, vec![0, 2, 1, 1, 1, 2]);
        assert_eq!(s.parent, vec![INVALID_NODE, 2, 0, 0, 0, 2]);
    }

    #[test]
    fn stats_validate_on_random_trees() {
        let device = Device::new();
        let mut state = 99u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for n in [2usize, 3, 10, 257, 5000] {
            let edges: Vec<(u32, u32)> = (1..n as u64)
                .map(|v| ((step() % v) as u32, v as u32))
                .collect();
            let tour = EulerTour::build_from_edges(&device, n, &edges, 0).unwrap();
            let stats = TreeStats::compute(&device, &tour);
            stats.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn single_node_stats() {
        let device = Device::new();
        let tour = EulerTour::build_from_edges(&device, 1, &[], 0).unwrap();
        let s = TreeStats::compute(&device, &tour);
        assert_eq!(s.preorder, vec![1]);
        assert_eq!(s.subtree_size, vec![1]);
        assert_eq!(s.level, vec![0]);
        assert_eq!(s.parent, vec![INVALID_NODE]);
        s.validate().unwrap();
    }

    #[test]
    fn path_tree_stats() {
        let device = Device::new();
        let n = 1000;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        let tour = EulerTour::build_from_edges(&device, n, &edges, 0).unwrap();
        let s = TreeStats::compute(&device, &tour);
        for v in 0..n {
            assert_eq!(s.preorder[v], v as u32 + 1);
            assert_eq!(s.level[v], v as u32);
            assert_eq!(s.subtree_size[v], (n - v) as u32);
        }
    }

    #[test]
    fn star_tree_stats() {
        let device = Device::new();
        let n = 1000;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        let tour = EulerTour::build_from_edges(&device, n, &edges, 0).unwrap();
        let s = TreeStats::compute(&device, &tour);
        assert_eq!(s.subtree_size[0], n as u32);
        for v in 1..n {
            assert_eq!(s.level[v], 1);
            assert_eq!(s.subtree_size[v], 1);
            assert_eq!(s.parent[v], 0);
        }
        s.validate().unwrap();
    }

    #[test]
    fn validate_catches_corruption() {
        let device = Device::new();
        let mut s = paper_stats(&device);
        s.level[1] = 7;
        assert!(s.validate().is_err());
    }
}
