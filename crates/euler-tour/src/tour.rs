//! The [`EulerTour`] facade: DCEL → successor list → one list ranking →
//! tour array (§2.2's central optimization).

use crate::dcel::{twin, Dcel};
use crate::list::EulerList;
use crate::ranking::{rank, Ranker};
use gpu_sim::Device;
use graph_core::ids::NodeId;
use graph_core::Tree;

/// Errors from Euler tour construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TourError {
    /// Zero nodes.
    Empty,
    /// Root id out of `0..n`.
    RootOutOfRange(NodeId),
    /// The edge count is not `n - 1`.
    WrongEdgeCount {
        /// Edges supplied.
        got: usize,
        /// Edges required (`n - 1`).
        expected: usize,
    },
    /// The edges do not form a spanning tree (detected as a broken tour).
    NotASpanningTree,
}

impl std::fmt::Display for TourError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TourError::Empty => write!(f, "tree must have at least one node"),
            TourError::RootOutOfRange(r) => write!(f, "root {r} out of range"),
            TourError::WrongEdgeCount { got, expected } => {
                write!(f, "expected {expected} tree edges, got {got}")
            }
            TourError::NotASpanningTree => {
                write!(f, "edge set does not form a spanning tree")
            }
        }
    }
}

impl std::error::Error for TourError {}

/// An Euler tour of a rooted tree, in array form.
///
/// After construction every subtree is a contiguous interval of the tour
/// array, so node statistics reduce to scans (see [`crate::stats`]).
#[derive(Debug, Clone)]
pub struct EulerTour {
    num_nodes: usize,
    root: NodeId,
    dcel: Dcel,
    /// `rank[e]` = tour position of half-edge `e`.
    rank: Vec<u32>,
    /// `order[p]` = half-edge at tour position `p` (inverse of `rank`).
    order: Vec<u32>,
}

impl EulerTour {
    /// Builds the tour of a validated [`Tree`], rooted at the tree's root,
    /// using the default (Wei–JáJá) ranker.
    pub fn build(device: &Device, tree: &Tree) -> Result<Self, TourError> {
        Self::build_from_edges(device, tree.num_nodes(), &tree.edges(), tree.root())
    }

    /// Builds the tour of a validated [`Tree`] with an explicit ranker.
    pub fn build_with_ranker(
        device: &Device,
        tree: &Tree,
        ranker: Ranker,
    ) -> Result<Self, TourError> {
        Self::build_from_edges_with_ranker(
            device,
            tree.num_nodes(),
            &tree.edges(),
            tree.root(),
            ranker,
        )
    }

    /// Builds the tour from the paper's §2.1 input: an unordered collection
    /// of undirected edges plus a chosen root.
    pub fn build_from_edges(
        device: &Device,
        num_nodes: usize,
        edges: &[(NodeId, NodeId)],
        root: NodeId,
    ) -> Result<Self, TourError> {
        Self::build_from_edges_with_ranker(device, num_nodes, edges, root, Ranker::default())
    }

    /// Builds the tour from unordered undirected edges with an explicit
    /// list-ranking algorithm.
    pub fn build_from_edges_with_ranker(
        device: &Device,
        num_nodes: usize,
        edges: &[(NodeId, NodeId)],
        root: NodeId,
        ranker: Ranker,
    ) -> Result<Self, TourError> {
        if num_nodes == 0 {
            return Err(TourError::Empty);
        }
        if root as usize >= num_nodes {
            return Err(TourError::RootOutOfRange(root));
        }
        if edges.len() != num_nodes - 1 {
            return Err(TourError::WrongEdgeCount {
                got: edges.len(),
                expected: num_nodes - 1,
            });
        }
        if num_nodes == 1 {
            // Trivial tour: no half-edges.
            return Ok(Self {
                num_nodes,
                root,
                dcel: Dcel::build(device, 1, &[]),
                rank: Vec::new(),
                order: Vec::new(),
            });
        }
        for &(u, v) in edges {
            if (u as usize) >= num_nodes || (v as usize) >= num_nodes {
                return Err(TourError::NotASpanningTree);
            }
            if u == v {
                return Err(TourError::NotASpanningTree);
            }
        }

        let dcel = Dcel::build(device, num_nodes, edges);
        if dcel.first[root as usize] == graph_core::ids::INVALID_NODE {
            // Root isolated — certainly not spanning.
            return Err(TourError::NotASpanningTree);
        }
        let list = EulerList::build(device, &dcel, root);
        let rank_arr = rank(device, &list, ranker);

        // Permutation check: if the edges were not a spanning tree, the
        // successor structure decomposes into several cycles and the ranks
        // cannot form a permutation of 0..2(n-1). Count buffer from the
        // arena; min and max fused into one reduce launch.
        let h = rank_arr.len();
        let mut counts = device.alloc_filled(h, 0u32);
        {
            let _k = device.kernel_label("tour_permutation_check");
            let counts_view = device.atomic_u32(&mut counts).benign(
                "permutation check: colliding increments are the signal; fetch_add commutes",
            );
            let rank_ref = &rank_arr;
            device.for_each(h, |e| {
                let r = rank_ref[e] as usize;
                if r < h {
                    counts_view.fetch_add(r, 1);
                }
            });
        }
        let counts = &counts;
        // The reduce's generator closure reads the count buffer.
        device.capture_read(&counts[..]);
        let (min, max) = device.map_reduce(
            h,
            |i| (counts[i], counts[i]),
            (u32::MAX, 0u32),
            |a, b| (a.0.min(b.0), a.1.max(b.1)),
        );
        if min != 1 || max != 1 {
            return Err(TourError::NotASpanningTree);
        }

        // Invert the ranking into the tour array (a permutation scatter).
        let src = {
            let _k = device.kernel_label("tour_iota");
            device.alloc_pooled_map(h, |i| i as u32)
        };
        let mut order = vec![0u32; h];
        device.scatter(&mut order, &rank_arr, &src);

        Ok(Self {
            num_nodes,
            root,
            dcel,
            rank: rank_arr,
            order,
        })
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of half-edges on the tour (`2(n-1)`).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True only for the single-node tree.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The underlying DCEL.
    pub fn dcel(&self) -> &Dcel {
        &self.dcel
    }

    /// `rank[e]` = tour position of half-edge `e`.
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// `order[p]` = half-edge at tour position `p`.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Whether half-edge `e` points away from the root ("goes down").
    ///
    /// A half-edge goes down iff it appears before its twin on the tour
    /// (paper, footnote 4).
    #[inline]
    pub fn is_down(&self, e: u32) -> bool {
        self.rank[e as usize] < self.rank[twin(e) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::ids::INVALID_NODE;

    fn paper_tour(device: &Device) -> EulerTour {
        EulerTour::build_from_edges(device, 6, &[(0, 2), (0, 3), (0, 4), (2, 1), (2, 5)], 0)
            .unwrap()
    }

    #[test]
    fn rank_and_order_are_inverse() {
        let device = Device::new();
        let tour = paper_tour(&device);
        for p in 0..tour.len() {
            assert_eq!(tour.rank()[tour.order()[p] as usize] as usize, p);
        }
    }

    #[test]
    fn down_edges_match_direction() {
        let device = Device::new();
        let tour = paper_tour(&device);
        let dcel = tour.dcel();
        // Down half-edges of the paper tree point 0→{2,3,4} and 2→{1,5}.
        for e in 0..tour.len() as u32 {
            let (t, h) = (dcel.tails[e as usize], dcel.heads[e as usize]);
            let expected_down = matches!((t, h), (0, 2) | (0, 3) | (0, 4) | (2, 1) | (2, 5));
            assert_eq!(tour.is_down(e), expected_down, "half-edge ({t},{h})");
        }
    }

    #[test]
    fn single_node_tour_is_empty() {
        let device = Device::new();
        let tour = EulerTour::build_from_edges(&device, 1, &[], 0).unwrap();
        assert!(tour.is_empty());
        assert_eq!(tour.num_nodes(), 1);
    }

    #[test]
    fn error_on_zero_nodes() {
        let device = Device::new();
        assert_eq!(
            EulerTour::build_from_edges(&device, 0, &[], 0).unwrap_err(),
            TourError::Empty
        );
    }

    #[test]
    fn error_on_bad_root() {
        let device = Device::new();
        assert_eq!(
            EulerTour::build_from_edges(&device, 2, &[(0, 1)], 5).unwrap_err(),
            TourError::RootOutOfRange(5)
        );
    }

    #[test]
    fn error_on_wrong_edge_count() {
        let device = Device::new();
        assert!(matches!(
            EulerTour::build_from_edges(&device, 3, &[(0, 1)], 0).unwrap_err(),
            TourError::WrongEdgeCount {
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn error_on_cycle_plus_isolated() {
        // 4 nodes, 3 edges, but a triangle + isolated node (not spanning).
        let device = Device::new();
        let err =
            EulerTour::build_from_edges(&device, 4, &[(0, 1), (1, 2), (2, 0)], 0).unwrap_err();
        assert_eq!(err, TourError::NotASpanningTree);
    }

    #[test]
    fn error_on_self_loop() {
        let device = Device::new();
        let err = EulerTour::build_from_edges(&device, 2, &[(1, 1)], 0).unwrap_err();
        assert_eq!(err, TourError::NotASpanningTree);
    }

    #[test]
    fn error_on_disconnected_root() {
        // Root 3 isolated; edges form a path over 0,1,2 plus a duplicate.
        let device = Device::new();
        let err =
            EulerTour::build_from_edges(&device, 4, &[(0, 1), (1, 2), (0, 2)], 3).unwrap_err();
        assert_eq!(err, TourError::NotASpanningTree);
    }

    #[test]
    fn build_from_tree_uses_tree_root() {
        let device = Device::new();
        let tree = Tree::from_parent_array(vec![INVALID_NODE, 0, 1], 0).unwrap();
        let tour = EulerTour::build(&device, &tree).unwrap();
        assert_eq!(tour.root(), 0);
        assert_eq!(tour.len(), 4);
    }

    #[test]
    fn all_rankers_agree() {
        let device = Device::new();
        let n = 5000;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v / 3, v)).collect();
        let mut tours = Vec::new();
        for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::WeiJaJa] {
            tours.push(
                EulerTour::build_from_edges_with_ranker(&device, n, &edges, 0, ranker).unwrap(),
            );
        }
        assert_eq!(tours[0].rank(), tours[1].rank());
        assert_eq!(tours[0].rank(), tours[2].rank());
    }
}
