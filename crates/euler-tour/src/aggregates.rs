//! Generic subtree aggregation over the Euler tour — the §2 motivation:
//! "every subtree corresponds to an interval in the list; hence many node
//! statistics can be easily calculated as prefix sums or range queries."
//!
//! [`SubtreeAggregator`] materializes the tour-order position of every node
//! once, then answers whole-tree aggregations by one scan (+ one gather)
//! each:
//!
//! * [`SubtreeAggregator::subtree_sums`] — Σ of arbitrary per-node values
//!   over every subtree (one prefix sum over the tour);
//! * [`SubtreeAggregator::count_descendants_where`] — predicate counting;
//! * [`SubtreeAggregator::is_ancestor`] — O(1) ancestry tests from
//!   preorder intervals;
//! * [`SubtreeAggregator::root_path_sums`] — Σ of per-node values along
//!   every root path (the ±value trick the paper uses for levels).

use crate::stats::TreeStats;
use crate::tour::EulerTour;
use gpu_sim::Device;
use graph_core::ids::NodeId;

/// Precomputed tour positions enabling O(scan)-cost whole-tree aggregates.
#[derive(Debug, Clone)]
pub struct SubtreeAggregator {
    /// Tour position of the down-edge into each node (root: 0 sentinel —
    /// conceptually "before the tour").
    enter: Vec<u32>,
    /// Tour position of the up-edge out of each node (root: tour length).
    exit: Vec<u32>,
    /// 1-based preorder (for ancestry tests).
    preorder: Vec<u32>,
    /// Subtree sizes (for ancestry tests).
    subtree_size: Vec<u32>,
    root: NodeId,
    tour_len: usize,
}

impl SubtreeAggregator {
    /// Builds the position tables from a tour and its statistics.
    pub fn new(device: &Device, tour: &EulerTour, stats: &TreeStats) -> Self {
        let n = tour.num_nodes();
        let h = tour.len();
        let mut enter = vec![0u32; n];
        let mut exit = vec![h as u32; n];
        if h > 0 {
            let _k = device.kernel_label("aggregates_enter_exit");
            // One down-edge per node, so each slot has one writer.
            let enter_shared = device.shared(&mut enter);
            let exit_shared = device.shared(&mut exit);
            let dcel = tour.dcel();
            let order = tour.order();
            let rank = tour.rank();
            device.for_each(h, |p| {
                let e = order[p];
                if tour.is_down(e) {
                    let v = dcel.heads[e as usize] as usize;
                    let q = rank[crate::dcel::twin(e) as usize];
                    enter_shared.write(v, p as u32);
                    exit_shared.write(v, q);
                }
            });
        }
        Self {
            enter,
            exit,
            preorder: stats.preorder.clone(),
            subtree_size: stats.subtree_size.clone(),
            root: tour.root(),
            tour_len: h,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.enter.len()
    }

    /// O(1): is `a` an ancestor of `b` (inclusive: every node is its own
    /// ancestor)? Uses the preorder-interval characterization.
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let pa = self.preorder[a as usize];
        let pb = self.preorder[b as usize];
        pb >= pa && pb < pa + self.subtree_size[a as usize]
    }

    /// Σ `values[u]` over every subtree: `out[v] = Σ_{u in subtree(v)}
    /// values[u]`. One scan over the tour.
    pub fn subtree_sums(&self, device: &Device, values: &[u64]) -> Vec<u64> {
        let n = self.num_nodes();
        assert_eq!(values.len(), n, "one value per node required");
        if self.tour_len == 0 {
            return vec![values[0]; 1];
        }
        // Weight each down-edge with the value of the node it enters; the
        // subtree sum of v is then (prefix at exit) − (prefix at enter) +
        // value(v)'s own down edge — handled by using inclusive prefixes of
        // down-edge weights: sum over positions [enter(v), exit(v)].
        // Weight and prefix arrays are scratch — pooled.
        let mut weights = device.alloc_filled(self.tour_len, 0u64);
        {
            let _k = device.kernel_label("subtree_sums_weights");
            // Enter positions are distinct per node.
            let enter = &self.enter;
            let root = self.root;
            let weights_shared = device.shared(&mut weights);
            device.for_each(n, |v| {
                if v as NodeId != root {
                    weights_shared.write(enter[v] as usize, values[v]);
                }
            });
        }
        let mut prefix = device.alloc_pooled::<u64>(self.tour_len);
        device.scan_inclusive_into(&weights, &mut prefix, 0u64, |a, b| a + b);
        let mut out = vec![0u64; n];
        let prefix_ref = &prefix;
        device.map(&mut out, |v| {
            if v as NodeId == self.root {
                // Every node's enter weight lies on the tour except the
                // root's, which has no down-edge.
                return *prefix_ref.last().unwrap() + values[v];
            }
            // Inclusive range sum [enter, exit]: v's own weight sits at the
            // enter position, descendants' weights strictly inside.
            let lo = self.enter[v] as usize;
            let hi = self.exit[v] as usize;
            let before = if lo == 0 { 0 } else { prefix_ref[lo - 1] };
            prefix_ref[hi] - before
        });
        out
    }

    /// Counts, for every node, the descendants (inclusive) satisfying
    /// `pred`.
    pub fn count_descendants_where(
        &self,
        device: &Device,
        pred: impl Fn(NodeId) -> bool + Sync,
    ) -> Vec<u64> {
        let n = self.num_nodes();
        let mut values = vec![0u64; n];
        {
            let _k = device.kernel_label("aggregates_pred_flags");
            device.map(&mut values, |v| u64::from(pred(v as NodeId)));
        }
        self.subtree_sums(device, &values)
    }

    /// Σ `values[u]` along the root path of every node (inclusive):
    /// `out[v] = Σ_{u ancestor of v} values[u]` — the paper's ±weight trick
    /// (down-edges add the entered node's value, up-edges subtract it).
    pub fn root_path_sums(&self, device: &Device, values: &[i64]) -> Vec<i64> {
        let n = self.num_nodes();
        assert_eq!(values.len(), n, "one value per node required");
        if self.tour_len == 0 {
            return vec![values[0]; 1];
        }
        let mut weights = device.alloc_filled(self.tour_len, 0i64);
        {
            let _k = device.kernel_label("root_path_sums_weights");
            // Enter/exit positions are distinct across nodes (each position
            // hosts exactly one half-edge).
            let weights_shared = device.shared(&mut weights);
            let enter = &self.enter;
            let exit = &self.exit;
            let root = self.root;
            device.for_each(n, |v| {
                if v as NodeId != root {
                    weights_shared.write(enter[v] as usize, values[v]);
                    weights_shared.write(exit[v] as usize, -values[v]);
                }
            });
        }
        let mut prefix = device.alloc_pooled::<i64>(self.tour_len);
        device.scan_inclusive_into(&weights, &mut prefix, 0i64, |a, b| a + b);
        let root_value = values[self.root as usize];
        let prefix_ref = &prefix;
        let mut out = vec![0i64; n];
        device.map(&mut out, |v| {
            if v as NodeId == self.root {
                root_value
            } else {
                prefix_ref[self.enter[v] as usize] + root_value
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::ids::INVALID_NODE;
    use graph_core::Tree;

    fn build(parents: Vec<u32>) -> (Device, EulerTour, TreeStats, SubtreeAggregator, Tree) {
        let device = Device::new();
        let tree = Tree::from_parent_array(parents, 0).unwrap();
        let tour = EulerTour::build(&device, &tree).unwrap();
        let stats = TreeStats::compute(&device, &tour);
        let agg = SubtreeAggregator::new(&device, &tour, &stats);
        (device, tour, stats, agg, tree)
    }

    fn paper_parents() -> Vec<u32> {
        vec![INVALID_NODE, 2, 0, 0, 0, 2]
    }

    #[test]
    fn subtree_sums_of_ones_are_sizes() {
        let (device, _, stats, agg, _) = build(paper_parents());
        let ones = vec![1u64; 6];
        let sums = agg.subtree_sums(&device, &ones);
        let sizes: Vec<u64> = stats.subtree_size.iter().map(|&s| s as u64).collect();
        assert_eq!(sums, sizes);
    }

    #[test]
    fn subtree_sums_of_arbitrary_values() {
        let (device, _, _, agg, tree) = build(paper_parents());
        let values: Vec<u64> = vec![10, 20, 30, 40, 50, 60];
        let sums = agg.subtree_sums(&device, &values);
        // Brute force per node.
        for v in 0..6u32 {
            let expect: u64 = (0..6u32)
                .filter(|&u| {
                    let mut cur = u;
                    loop {
                        if cur == v {
                            return true;
                        }
                        match tree.parent(cur) {
                            Some(p) => cur = p,
                            None => return false,
                        }
                    }
                })
                .map(|u| values[u as usize])
                .sum();
            assert_eq!(sums[v as usize], expect, "node {v}");
        }
    }

    #[test]
    fn root_path_sums_of_ones_are_depths_plus_one() {
        let (device, _, stats, agg, _) = build(paper_parents());
        let ones = vec![1i64; 6];
        let sums = agg.root_path_sums(&device, &ones);
        for (v, &s) in sums.iter().enumerate() {
            assert_eq!(s, stats.level[v] as i64 + 1, "node {v}");
        }
    }

    #[test]
    fn ancestry_tests() {
        let (_, _, _, agg, _) = build(paper_parents());
        assert!(agg.is_ancestor(0, 5));
        assert!(agg.is_ancestor(2, 1));
        assert!(agg.is_ancestor(2, 2));
        assert!(!agg.is_ancestor(1, 2));
        assert!(!agg.is_ancestor(3, 4));
    }

    #[test]
    fn count_descendants_with_predicate() {
        let (device, _, _, agg, _) = build(paper_parents());
        // Count even-id descendants.
        let counts = agg.count_descendants_where(&device, |v| v % 2 == 0);
        // Subtree of 0 = {0,1,2,3,4,5} → evens {0,2,4} = 3.
        assert_eq!(counts[0], 3);
        // Subtree of 2 = {2,1,5} → evens {2} = 1.
        assert_eq!(counts[2], 1);
        // Leaves.
        assert_eq!(counts[4], 1);
        assert_eq!(counts[5], 0);
    }

    #[test]
    fn single_node_tree() {
        let (device, _, _, agg, _) = build(vec![INVALID_NODE]);
        assert_eq!(agg.subtree_sums(&device, &[7]), vec![7]);
        assert_eq!(agg.root_path_sums(&device, &[9]), vec![9]);
        assert!(agg.is_ancestor(0, 0));
    }

    #[test]
    fn random_tree_matches_brute_force() {
        let n = 500usize;
        let mut state = 31u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut parents = vec![INVALID_NODE; n];
        for (v, p) in parents.iter_mut().enumerate().skip(1) {
            *p = (step() % v as u64) as u32;
        }
        let (device, _, _, agg, tree) = build(parents);
        let values: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
        let sums = agg.subtree_sums(&device, &values);

        // Brute-force subtree sums by upward accumulation.
        let mut expect = values.clone();
        // Process nodes in decreasing depth order.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(tree.depth_of(v)));
        for &v in &order {
            if let Some(p) = tree.parent(v) {
                expect[p as usize] += expect[v as usize];
            }
        }
        assert_eq!(sums, expect);

        // Path sums spot-check.
        let ivalues: Vec<i64> = (0..n as i64).collect();
        let paths = agg.root_path_sums(&device, &ivalues);
        for v in (0..n as u32).step_by(37) {
            let expect: i64 = tree
                .path_to_root(v)
                .iter()
                .map(|&u| ivalues[u as usize])
                .sum();
            assert_eq!(paths[v as usize], expect, "node {v}");
        }
    }
}
