//! DCEL-like intermediate representation (§2.1 of the paper).
//!
//! For each undirected tree edge `j = {u, v}` two directed half-edges are
//! materialized next to each other in array **A**: half-edge `2j = (u → v)`
//! and `2j + 1 = (v → u)`, so `twin(e) = e ^ 1` needs no storage. A
//! lexicographically sorted copy **B** of A yields the `next` pointers:
//! consecutive B entries share a tail node unless a group ends, in which
//! case `next` wraps to the group's first entry (array `first`). This is
//! exactly Figure 2 of the paper.

use gpu_sim::Device;
use graph_core::ids::{pack_edge, NodeId, INVALID_NODE};

/// Twin of a half-edge: the opposite direction of the same undirected edge.
#[inline]
pub fn twin(e: u32) -> u32 {
    e ^ 1
}

/// The DCEL-like representation: half-edges with `next` pointers forming,
/// per node, a cyclic list of outgoing half-edges.
#[derive(Debug, Clone)]
pub struct Dcel {
    /// Number of nodes of the underlying tree.
    pub num_nodes: usize,
    /// Tail (source) node of each half-edge; `tails[2j] = u` for edge `{u,v}`.
    pub tails: Vec<NodeId>,
    /// Head (target) node of each half-edge; `heads[2j] = v` for edge `{u,v}`.
    pub heads: Vec<NodeId>,
    /// `next[e]` = the half-edge after `e` in the cyclic outgoing list of
    /// `tails[e]`.
    pub next: Vec<u32>,
    /// `first[x]` = some half-edge leaving `x` (the lexicographically first),
    /// or `INVALID_NODE` for isolated nodes.
    pub first: Vec<u32>,
}

impl Dcel {
    /// Number of half-edges (`2 ×` undirected edges).
    pub fn num_half_edges(&self) -> usize {
        self.next.len()
    }

    /// Builds the DCEL from an unordered collection of undirected edges.
    ///
    /// Follows §2.1: create A (implicitly — `twin` is `xor 1` and the
    /// endpoints live in `tails`/`heads`), radix-sort a copy into B keeping
    /// cross-pointers, then derive `next` and `first`.
    pub fn build(device: &Device, num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let m = edges.len();
        let h = 2 * m;

        // Array A: half-edge endpoints.
        let mut tails = vec![0 as NodeId; h];
        let mut heads = vec![0 as NodeId; h];
        {
            let _k = device.kernel_label("dcel_tails");
            device.capture_read(edges);
            device.map(&mut tails, |e| {
                let (u, v) = edges[e / 2];
                if e % 2 == 0 {
                    u
                } else {
                    v
                }
            });
        }
        {
            let _k = device.kernel_label("dcel_heads");
            device.capture_read(edges);
            device.map(&mut heads, |e| {
                let (u, v) = edges[e / 2];
                if e % 2 == 0 {
                    v
                } else {
                    u
                }
            });
        }

        // Array B: lexicographically sorted copy, carrying half-edge ids as
        // the cross-pointers back into A. Both arrays are scratch — pooled.
        let mut keys = {
            let _k = device.kernel_label("dcel_pack_keys");
            device.capture_read(&tails);
            device.capture_read(&heads);
            device.alloc_pooled_map(h, |e| pack_edge(tails[e], heads[e]))
        };
        let mut sorted_he = {
            let _k = device.kernel_label("dcel_iota");
            device.alloc_pooled_map(h, |i| i as u32)
        };
        device.sort_pairs_u64_u32(&mut keys, &mut sorted_he);

        // first[x] = half-edge at the first B position of x's group. Group
        // boundaries come from the sorted keys themselves (consecutive B
        // entries share a tail iff their keys share high words) — no
        // indirection back into A.
        let mut first = vec![INVALID_NODE; num_nodes];
        device.capture_fresh(&first[..]);
        {
            let _k = device.kernel_label("dcel_group_first");
            device.capture_read(&keys[..]);
            device.capture_read(&sorted_he[..]);
            // One group-first position per node value.
            let first_shared = device.shared(&mut first);
            let sorted_ref = &sorted_he;
            let keys_ref = &keys;
            device.for_each(h, |i| {
                let he = sorted_ref[i];
                let x = (keys_ref[i] >> 32) as NodeId;
                let is_group_first = i == 0 || (keys_ref[i - 1] >> 32) as NodeId != x;
                if is_group_first {
                    first_shared.write(x as usize, he);
                }
            });
        }

        // next[e]: successor of e in its tail's cyclic outgoing list.
        let mut next = vec![0u32; h];
        device.capture_fresh(&next[..]);
        {
            let _k = device.kernel_label("dcel_next_links");
            device.capture_read(&keys[..]);
            device.capture_read(&sorted_he[..]);
            device.capture_read(&first);
            // Each B position i writes next[] at a distinct half-edge id
            // (sorted_he is a permutation).
            let next_shared = device.shared(&mut next);
            let sorted_ref = &sorted_he;
            let keys_ref = &keys;
            let first_ref = &first;
            device.for_each(h, |i| {
                let he = sorted_ref[i];
                let x = (keys_ref[i] >> 32) as NodeId;
                let nxt = if i + 1 < h && (keys_ref[i + 1] >> 32) as NodeId == x {
                    sorted_ref[i + 1]
                } else {
                    first_ref[x as usize]
                };
                next_shared.write(he as usize, nxt);
            });
        }

        Self {
            num_nodes,
            tails,
            heads,
            next,
            first,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 tree, edges given in Figure 2's A-array order:
    /// A = (0,2)(2,0) (0,3)(3,0) (0,4)(4,0) (2,1)(1,2) (2,5)(5,2).
    fn paper_edges() -> Vec<(u32, u32)> {
        vec![(0, 2), (0, 3), (0, 4), (2, 1), (2, 5)]
    }

    #[test]
    fn paper_figure2_twin_pointers() {
        // twin is xor 1 by construction: (0,2) at he 0, (2,0) at he 1, ...
        assert_eq!(twin(0), 1);
        assert_eq!(twin(1), 0);
        assert_eq!(twin(6), 7);
    }

    #[test]
    fn paper_figure2_next_pointers() {
        let device = Device::new();
        let dcel = Dcel::build(&device, 6, &paper_edges());
        assert_eq!(dcel.num_half_edges(), 10);

        // Figure 2's B order: (0,2) (0,3) (0,4) (1,2) (2,0) (2,1) (2,5)
        //                     (3,0) (4,0) (5,2)
        // Half-edge ids:  (0,2)=0 (2,0)=1 (0,3)=2 (3,0)=3 (0,4)=4 (4,0)=5
        //                 (2,1)=6 (1,2)=7 (2,5)=8 (5,2)=9
        // next chains per node (cyclic):
        //   node 0: 0 -> 2 -> 4 -> 0
        assert_eq!(dcel.next[0], 2);
        assert_eq!(dcel.next[2], 4);
        assert_eq!(dcel.next[4], 0);
        //   node 1: 7 -> 7
        assert_eq!(dcel.next[7], 7);
        //   node 2: 1 -> 6 -> 8 -> 1
        assert_eq!(dcel.next[1], 6);
        assert_eq!(dcel.next[6], 8);
        assert_eq!(dcel.next[8], 1);
        //   leaves 3, 4, 5 self-cycle
        assert_eq!(dcel.next[3], 3);
        assert_eq!(dcel.next[5], 5);
        assert_eq!(dcel.next[9], 9);
    }

    #[test]
    fn paper_figure1_succ_example() {
        // The paper: succ(6) = next(twin(6)) = next(1) = 7 — using the
        // paper's 1-based edge numbering of Figure 1, which labels the tour
        // positions, not our half-edge ids. In our id space: the half-edge
        // (2,1) has id 6, twin(6) = 7 = (1,2), next[7] = 7... we instead
        // verify the defining identity on all half-edges: succ stays within
        // bounds and visits edges leaving the head of the current edge.
        let device = Device::new();
        let dcel = Dcel::build(&device, 6, &paper_edges());
        for e in 0..dcel.num_half_edges() as u32 {
            let s = dcel.next[twin(e) as usize];
            assert_eq!(
                dcel.tails[s as usize], dcel.heads[e as usize],
                "succ must leave the node the edge arrived at"
            );
        }
    }

    #[test]
    fn first_points_to_lexicographic_minimum() {
        let device = Device::new();
        let dcel = Dcel::build(&device, 6, &paper_edges());
        // Node 0's smallest outgoing edge is (0,2) = he 0.
        assert_eq!(dcel.first[0], 0);
        // Node 2's smallest outgoing is (2,0) = he 1.
        assert_eq!(dcel.first[2], 1);
        // Leaf 5's only outgoing is (5,2) = he 9.
        assert_eq!(dcel.first[5], 9);
    }

    #[test]
    fn next_is_a_permutation_partitioned_by_tail() {
        let device = Device::new();
        // A larger random-ish tree: parent of i is i/2 (binary heap shape).
        let n = 2000usize;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v / 2, v)).collect();
        let dcel = Dcel::build(&device, n, &edges);
        let h = dcel.num_half_edges();
        let mut seen = vec![false; h];
        for e in 0..h {
            let nx = dcel.next[e] as usize;
            assert!(nx < h);
            assert!(!seen[nx], "next must be injective");
            seen[nx] = true;
            assert_eq!(
                dcel.tails[e], dcel.tails[nx],
                "next stays within a node's list"
            );
        }
    }

    #[test]
    fn isolated_nodes_have_invalid_first() {
        let device = Device::new();
        let dcel = Dcel::build(&device, 3, &[(0, 1)]);
        assert_eq!(dcel.first[2], INVALID_NODE);
        assert_ne!(dcel.first[0], INVALID_NODE);
    }

    #[test]
    fn empty_edge_set() {
        let device = Device::new();
        let dcel = Dcel::build(&device, 1, &[]);
        assert_eq!(dcel.num_half_edges(), 0);
        assert_eq!(dcel.first[0], INVALID_NODE);
    }
}
