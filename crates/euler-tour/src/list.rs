//! The Euler tour as a singly linked list: `succ(e) = next(twin(e))`.
//!
//! The list produced from a DCEL is cyclic; to run prefix computations it is
//! split at an arbitrary half-edge leaving the root (§2.1: "we choose the
//! root by choosing the list head").

use crate::dcel::{twin, Dcel};
use gpu_sim::Device;
use graph_core::ids::{NodeId, INVALID_NODE};

/// Sentinel terminating the split list.
pub const NIL: u32 = u32::MAX;

/// An Euler tour as a successor list over half-edge ids, split at the root.
#[derive(Debug, Clone)]
pub struct EulerList {
    /// `succ[e]` = next half-edge of the tour, `NIL` for the last one.
    pub succ: Vec<u32>,
    /// First half-edge of the tour (leaves the root).
    pub head: u32,
    /// Last half-edge of the tour (enters the root).
    pub tail: u32,
}

impl EulerList {
    /// Builds the tour list from a DCEL, rooted at `root`.
    ///
    /// # Panics
    /// Panics if `root` has no outgoing half-edge (isolated node) — callers
    /// handle the single-node tree before reaching this point.
    pub fn build(device: &Device, dcel: &Dcel, root: NodeId) -> Self {
        let h = dcel.num_half_edges();
        assert!(h > 0, "cannot build a tour over zero half-edges");
        let head = dcel.first[root as usize];
        assert!(
            head != INVALID_NODE,
            "root {root} has no outgoing half-edge"
        );

        // succ(e) = next(twin(e)), computed in one kernel; the predecessor
        // of the head is found on the fly and its succ set to NIL afterwards.
        let mut succ = vec![0u32; h];
        {
            let _k = device.kernel_label("tour_succ");
            device.capture_read(&dcel.next);
            device.map(&mut succ, |e| dcel.next[twin(e as u32) as usize]);
        }

        // Locate the tour's last edge: the unique e with succ[e] == head.
        let pred_of_head = {
            let mut found = device.alloc_filled(1, NIL);
            {
                let _k = device.kernel_label("tour_find_head_pred");
                // succ is a permutation — exactly one predecessor of head
                // exists, so slot 0 has one writer.
                let found_shared = device.shared(&mut found);
                let succ_ref = &succ;
                device.capture_read(&succ[..]);
                device.for_each(h, |e| {
                    if succ_ref[e] == head {
                        found_shared.write(0, e as u32);
                    }
                });
            }
            device.capture_host_read(&found[..]);
            found[0]
        };
        debug_assert_ne!(pred_of_head, NIL, "cyclic tour must contain the head");
        succ[pred_of_head as usize] = NIL;

        Self {
            succ,
            head,
            tail: pred_of_head,
        }
    }

    /// Number of half-edges on the tour.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the list is empty (never true for a built list).
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Walks the list sequentially, returning half-edges in tour order.
    /// O(n) — test/oracle helper.
    pub fn iter_order(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.len());
        let mut e = self.head;
        while e != NIL {
            order.push(e);
            e = self.succ[e as usize];
        }
        order
    }

    /// Validates that the list visits every half-edge exactly once.
    pub fn validate(&self) -> Result<(), String> {
        let order = self.iter_order();
        if order.len() != self.len() {
            return Err(format!(
                "tour visits {} of {} half-edges",
                order.len(),
                self.len()
            ));
        }
        if *order.last().unwrap() != self.tail {
            return Err("tour does not end at the recorded tail".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcel::Dcel;

    fn paper_dcel(device: &Device) -> Dcel {
        Dcel::build(device, 6, &[(0, 2), (0, 3), (0, 4), (2, 1), (2, 5)])
    }

    #[test]
    fn tour_visits_all_half_edges_once() {
        let device = Device::new();
        let dcel = paper_dcel(&device);
        let list = EulerList::build(&device, &dcel, 0);
        list.validate().unwrap();
        assert_eq!(list.len(), 10);
    }

    #[test]
    fn paper_tour_order_matches_figure1() {
        let device = Device::new();
        let dcel = paper_dcel(&device);
        let list = EulerList::build(&device, &dcel, 0);
        let order = list.iter_order();
        // Expected DFS traversal from root 0 starting at first[0] = (0,2):
        // (0,2) (2,0)?? — no: succ((0,2)) = next(twin(0,2)) = next((2,0)) =
        // (2,1); the tour dives into node 2's subtree first, exactly as
        // Figure 1: 0→2→1→2→5→2→0→3→0→4→0.
        let named: Vec<(u32, u32)> = order
            .iter()
            .map(|&e| (dcel.tails[e as usize], dcel.heads[e as usize]))
            .collect();
        assert_eq!(
            named,
            vec![
                (0, 2),
                (2, 1),
                (1, 2),
                (2, 5),
                (5, 2),
                (2, 0),
                (0, 3),
                (3, 0),
                (0, 4),
                (4, 0),
            ]
        );
    }

    #[test]
    fn rerooting_changes_head() {
        let device = Device::new();
        let dcel = paper_dcel(&device);
        let list = EulerList::build(&device, &dcel, 2);
        list.validate().unwrap();
        assert_eq!(dcel.tails[list.head as usize], 2);
        // Still a complete tour.
        assert_eq!(list.iter_order().len(), 10);
    }

    #[test]
    fn two_node_tree() {
        let device = Device::new();
        let dcel = Dcel::build(&device, 2, &[(0, 1)]);
        let list = EulerList::build(&device, &dcel, 0);
        assert_eq!(list.iter_order(), vec![0, 1]);
        assert_eq!(list.tail, 1);
    }

    #[test]
    fn path_tour_is_there_and_back() {
        let device = Device::new();
        let n = 100u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (v - 1, v)).collect();
        let dcel = Dcel::build(&device, n as usize, &edges);
        let list = EulerList::build(&device, &dcel, 0);
        let order = list.iter_order();
        assert_eq!(order.len(), 2 * (n as usize - 1));
        // First half goes down the path, second half returns.
        for (i, &e) in order.iter().enumerate() {
            let (t, h) = (dcel.tails[e as usize], dcel.heads[e as usize]);
            if i < n as usize - 1 {
                assert_eq!((t, h), (i as u32, i as u32 + 1));
            } else {
                let back = 2 * (n as usize - 1) - i;
                assert_eq!((t, h), (back as u32, back as u32 - 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no outgoing half-edge")]
    fn isolated_root_panics() {
        let device = Device::new();
        let dcel = Dcel::build(&device, 3, &[(0, 1)]);
        let _ = EulerList::build(&device, &dcel, 2);
    }
}
