//! # euler-tour — the Euler tour technique on a simulated GPU
//!
//! This crate is the paper's primary contribution (§2): representing a
//! rooted tree as a list of directed half-edges in depth-first order, so
//! that subtree statistics become prefix sums.
//!
//! The pipeline follows the paper exactly:
//!
//! 1. **DCEL construction** (§2.1, [`dcel`]): from an unordered collection
//!    of undirected edges, build `twin`/`next` pointers via one
//!    lexicographic sort of all half-edges.
//! 2. **Tour as a linked list** ([`list`]): `succ(e) = next(twin(e))`,
//!    split at an arbitrary edge leaving the chosen root.
//! 3. **One list ranking** (§2.2, [`ranking`]): convert the list into an
//!    *array* of edges in tour order. We provide the sequential baseline,
//!    Wyllie pointer jumping (O(n log n) work) and the GPU-optimized
//!    Wei–JáJá algorithm (O(n) work) the paper uses.
//! 4. **Array scans** ([`stats`]): preorder numbers, subtree sizes, node
//!    levels and parents via the fast scan primitive — the paper's key
//!    optimization ("perform all the following prefix sum calculations on
//!    the Euler tour by using a fast scan primitive on the array").
//!
//! Around the pipeline: [`aggregates`] generalizes the scans to arbitrary
//! subtree/root-path statistics, [`cpu`] is the sequential oracle, and
//! [`dynamic`] extends the same tour representation to *dynamic* trees —
//! link/cut forests with O(log n) connectivity and subtree aggregates
//! (the paper's reference \[57\]).
//!
//! ```
//! use euler_tour::{EulerTour, TreeStats};
//! use graph_core::Tree;
//! use gpu_sim::Device;
//!
//! let device = Device::new();
//! let tree = Tree::from_edges(5, &[(0, 1), (1, 2), (1, 3), (0, 4)], 0).unwrap();
//! let tour = EulerTour::build(&device, &tree).unwrap();
//! let stats = TreeStats::compute(&device, &tour);
//! assert_eq!(stats.preorder[0], 1);          // root is visited first
//! assert_eq!(stats.subtree_size[1] , 3);     // node 1 subtree = {1, 2, 3}
//! assert_eq!(stats.level[2], 2);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod cpu;
pub mod dcel;
pub mod dynamic;
pub mod list;
pub mod ranking;
pub mod stats;
pub mod tour;

pub use aggregates::SubtreeAggregator;
pub use dcel::{twin, Dcel};
pub use dynamic::{EulerTourForest, ForestError};
pub use list::EulerList;
pub use ranking::{
    default_sublist_target, list_prefix_sum, rank_into, rank_wei_jaja_into,
    rank_wei_jaja_with_sublists, rank_wyllie_into, Ranker,
};
pub use stats::TreeStats;
pub use tour::{EulerTour, TourError};
