//! List ranking: computing, for every element of a linked list, its distance
//! from the head.
//!
//! This is the one genuinely list-shaped computation the Euler tour
//! technique cannot avoid (§2.2). Three implementations:
//!
//! * [`rank_sequential`] — the obvious walk; oracle and single-core baseline.
//! * [`rank_wyllie`] — classical pointer jumping: O(log n) rounds but
//!   O(n log n) total work.
//! * [`rank_wei_jaja`] — the GPU-optimized algorithm of Wei and JáJá \[64\]
//!   (a Helman–JáJá descendant): split the list into many sublists at
//!   splitter elements, walk each sublist sequentially in parallel, rank the
//!   tiny list-of-sublists, broadcast. O(n) work, O(n/s + s) depth.
//!
//! The paper reports that on GPUs array scans are 7–8× faster than list
//! ranking, which motivates ranking **once** and scanning arrays thereafter;
//! `benches/list_ranking.rs` reproduces the comparison.

use crate::list::{EulerList, NIL};
use gpu_sim::Device;

/// Which list-ranking algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ranker {
    /// Sequential walk (single-core baseline).
    Sequential,
    /// Wyllie pointer jumping — O(n log n) work.
    Wyllie,
    /// Wei–JáJá sublist ranking — O(n) work (the paper's choice).
    #[default]
    WeiJaJa,
}

/// Ranks `list` with the chosen algorithm: `rank[e]` = position of
/// half-edge `e` on the tour, `0` for the head.
pub fn rank(device: &Device, list: &EulerList, ranker: Ranker) -> Vec<u32> {
    let mut out = vec![0u32; list.len()];
    rank_into(device, list, ranker, &mut out);
    out
}

/// [`rank`] into a caller buffer — with the round/scratch buffers drawn
/// from the device arena, repeated rankings allocate nothing at steady
/// state.
///
/// # Panics
/// Panics if `out.len() != list.len()`.
pub fn rank_into(device: &Device, list: &EulerList, ranker: Ranker, out: &mut [u32]) {
    assert_eq!(out.len(), list.len(), "rank: output length mismatch");
    match ranker {
        Ranker::Sequential => rank_sequential_into(list, out),
        Ranker::Wyllie => rank_wyllie_into(device, list, out),
        Ranker::WeiJaJa => rank_wei_jaja_into(device, list, out),
    }
}

/// Weighted prefix sums *directly on the successor list* — the naive PRAM
/// approach the paper's §2.2 optimization replaces.
///
/// Computes, for every half-edge `e`, the inclusive prefix sum of
/// `weights` from the list head to `e`, by weighted pointer jumping
/// (Wyllie scheme): O(n log n) work per statistic. The paper's pipeline
/// instead pays one list ranking and then uses O(n)-work array scans for
/// every statistic; `benches/euler.rs` quantifies the gap with exactly
/// this function as the strawman.
///
/// # Panics
/// Panics if `weights.len() != list.len()`.
pub fn list_prefix_sum(device: &Device, list: &EulerList, weights: &[i64]) -> Vec<i64> {
    let n = list.len();
    assert_eq!(weights.len(), n, "list_prefix_sum: weight length mismatch");
    if n == 0 {
        return Vec::new();
    }
    // sum[e] = total weight of the path e..tail (inclusive suffix sum),
    // computed by pointer jumping; prefix[e] = total − sum[e] + w[e].
    // Round buffers come from the device arena.
    let mut sum = device.alloc_copied(weights);
    let mut next = device.alloc_copied(&list.succ);
    let mut sum_new = device.alloc_pooled::<i64>(n);
    let mut next_new = device.alloc_pooled::<u32>(n);
    let max_rounds = (usize::BITS - (n - 1).leading_zeros()) as usize + 1;
    for _ in 0..max_rounds {
        {
            let _k = device.kernel_label("list_prefix_jump_sum");
            device.capture_read(&next[..]);
            device.capture_read(&sum[..]);
            device.map(&mut sum_new, |e| {
                let nx = next[e];
                if nx == NIL {
                    sum[e]
                } else {
                    sum[e] + sum[nx as usize]
                }
            });
        }
        {
            let _k = device.kernel_label("list_prefix_jump_next");
            device.capture_read(&next[..]);
            device.map(&mut next_new, |e| {
                let nx = next[e];
                if nx == NIL {
                    NIL
                } else {
                    next[nx as usize]
                }
            });
        }
        std::mem::swap(&mut sum, &mut sum_new);
        std::mem::swap(&mut next, &mut next_new);
        if device.reduce_min_u32(&next) == NIL {
            break;
        }
    }
    device.capture_host_read(&sum[..]);
    let total = sum[list.head as usize];
    let mut prefix = vec![0i64; n];
    {
        let _k = device.kernel_label("list_prefix_combine");
        device.capture_read(&sum[..]);
        device.capture_read(weights);
        device.map(&mut prefix, |e| total - sum[e] + weights[e]);
    }
    prefix
}

/// Sequential list ranking by walking the successor pointers.
pub fn rank_sequential(list: &EulerList) -> Vec<u32> {
    let mut rank = vec![0u32; list.len()];
    rank_sequential_into(list, &mut rank);
    rank
}

/// [`rank_sequential`] into a caller buffer.
///
/// # Panics
/// Panics if `out.len() != list.len()`.
pub fn rank_sequential_into(list: &EulerList, out: &mut [u32]) {
    assert_eq!(out.len(), list.len(), "rank: output length mismatch");
    let mut e = list.head;
    let mut r = 0u32;
    while e != NIL {
        out[e as usize] = r;
        r += 1;
        e = list.succ[e as usize];
    }
    // A broken list (non-spanning edge set) visits fewer than n elements;
    // callers detect that through the permutation check in `EulerTour`.
}

/// Wyllie's pointer-jumping list ranking.
///
/// Each element tracks its distance to the list end; every round doubles the
/// jump length. Double-buffered so rounds are bulk-synchronous kernels.
pub fn rank_wyllie(device: &Device, list: &EulerList) -> Vec<u32> {
    let mut rank = vec![0u32; list.len()];
    rank_wyllie_into(device, list, &mut rank);
    rank
}

/// [`rank_wyllie`] into a caller buffer; the four round buffers come from
/// the device arena, so repeated rankings allocate nothing at steady state.
///
/// # Panics
/// Panics if `out.len() != list.len()`.
pub fn rank_wyllie_into(device: &Device, list: &EulerList, out: &mut [u32]) {
    assert_eq!(out.len(), list.len(), "rank: output length mismatch");
    let n = list.len();
    if n == 0 {
        return;
    }
    // dist[e] = number of hops from e to the end of the list (tail = 0).
    let mut dist = {
        let _k = device.kernel_label("wyllie_init_dist");
        device.capture_read(&list.succ);
        device.alloc_pooled_map(n, |e| u32::from(list.succ[e] != NIL))
    };
    let mut next = device.alloc_copied(&list.succ);

    let mut dist_new = device.alloc_pooled::<u32>(n);
    let mut next_new = device.alloc_pooled::<u32>(n);
    // ⌈log₂ n⌉ + 1 rounds suffice for a valid list; the hard bound keeps the
    // loop finite on broken (non-spanning) inputs, which the caller then
    // rejects via its permutation check.
    let max_rounds = (usize::BITS - (n - 1).leading_zeros()) as usize + 1;
    for _round in 0..max_rounds {
        // One jump round: rank/next double-buffered to keep the kernel pure.
        {
            let _k = device.kernel_label("wyllie_jump_dist");
            device.capture_read(&next[..]);
            device.capture_read(&dist[..]);
            device.map(&mut dist_new, |e| {
                let nx = next[e];
                if nx == NIL {
                    dist[e]
                } else {
                    dist[e] + dist[nx as usize]
                }
            });
        }
        {
            let _k = device.kernel_label("wyllie_jump_next");
            device.capture_read(&next[..]);
            device.map(&mut next_new, |e| {
                let nx = next[e];
                if nx == NIL {
                    NIL
                } else {
                    next[nx as usize]
                }
            });
        }
        std::mem::swap(&mut dist, &mut dist_new);
        std::mem::swap(&mut next, &mut next_new);
        // Converged when every pointer reached the end; NIL == u32::MAX, so
        // the minimum equals NIL exactly when all entries are NIL.
        if device.reduce_min_u32(&next) == NIL {
            break;
        }
    }
    // rank from head = (n - 1) - dist_to_tail.
    let dist = &dist;
    {
        let _k = device.kernel_label("wyllie_final_rank");
        device.capture_read(&dist[..]);
        device.map(out, |e| (n as u32 - 1) - dist[e]);
    }
}

/// Default Wei–JáJá sublist-count target for a list of `n` elements.
///
/// Scales with the device rather than a fixed constant: the floor keeps
/// every pool worker (and every claimable grid block) supplied with
/// several sublists for load balance; the ceiling caps the sequential
/// phase-2 walk at a few thousand entries *per worker*, so narrow devices
/// are not charged the sequential cost sized for wide ones. The `n / 64`
/// sweet spot between the bounds matches the \[64\] guidance of keeping
/// sublists tens of elements long.
pub fn default_sublist_target(device: &Device, n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let workers = device.worker_threads().max(1);
    let blocks = device.grid_blocks(n).max(1);
    let floor = usize::max(workers * 8, blocks * 4);
    let ceil = usize::max(floor, (workers * 4096).min(1 << 16));
    (n / 64).clamp(floor, ceil).min(n)
}

/// Wei–JáJá GPU-optimized list ranking (Helman–JáJá sublist scheme).
pub fn rank_wei_jaja(device: &Device, list: &EulerList) -> Vec<u32> {
    let mut rank = vec![0u32; list.len()];
    rank_wei_jaja_into(device, list, &mut rank);
    rank
}

/// [`rank_wei_jaja`] into a caller buffer; all phase buffers come from the
/// device arena (zero allocation at steady state).
///
/// # Panics
/// Panics if `out.len() != list.len()`.
pub fn rank_wei_jaja_into(device: &Device, list: &EulerList, out: &mut [u32]) {
    assert_eq!(out.len(), list.len(), "rank: output length mismatch");
    let n = list.len();
    if n == 0 {
        return;
    }
    // Small lists gain nothing from the machinery.
    if n <= device.config().seq_threshold {
        rank_sequential_into(list, out);
        return;
    }
    let s_target = default_sublist_target(device, n);
    rank_wei_jaja_with_sublists_into(device, list, s_target, out)
}

/// [`rank_wei_jaja`] with an explicit sublist-count target — the tuning
/// knob of \[64\] (too few sublists starve workers, too many inflate the
/// sequential phase 2); `benches/list_ranking.rs` sweeps it.
pub fn rank_wei_jaja_with_sublists(device: &Device, list: &EulerList, s_target: usize) -> Vec<u32> {
    let mut rank = vec![0u32; list.len()];
    if !rank.is_empty() {
        rank_wei_jaja_with_sublists_into(device, list, s_target, &mut rank);
    }
    rank
}

/// [`rank_wei_jaja_with_sublists`] into a caller buffer.
///
/// # Panics
/// Panics if `out.len() != list.len()`.
pub fn rank_wei_jaja_with_sublists_into(
    device: &Device,
    list: &EulerList,
    s_target: usize,
    out: &mut [u32],
) {
    assert_eq!(out.len(), list.len(), "rank: output length mismatch");
    let n = list.len();
    if n == 0 {
        return;
    }
    let s_target = s_target.clamp(1, n);

    // Splitters: the head plus elements spread over the id space with a
    // multiplicative-hash stride (id order is uncorrelated with tour order,
    // which is what the randomized selection in [64] needs).
    let stride = (n / s_target).max(1);
    let mut is_splitter = device.alloc_filled(n, 0u8);
    is_splitter[list.head as usize] = 1;
    let mut splitters = device.alloc_pooled::<u32>(n.div_ceil(stride) + 1);
    splitters[0] = list.head;
    let mut s = 1usize;
    for k in (0..n).step_by(stride) {
        let e = ((k as u64).wrapping_mul(0x9E3779B97F4A7C15) % n as u64) as u32;
        if is_splitter[e as usize] == 0 {
            is_splitter[e as usize] = 1;
            splitters[s] = e;
            s += 1;
        }
    }
    splitters.truncate(s);

    // Phase 1 (parallel over sublists): walk from each splitter to the next
    // splitter (or the list end), recording local ranks and the sublist id.
    // On a valid list the walks partition 0..n, overwriting every entry —
    // the n-sized buffers need no initialization pass. Broken inputs are
    // detected after phase 2 and the output poisoned, so the unwritten
    // (pool-recycled) entries are never exposed.
    let mut local_rank = device.alloc_pooled::<u32>(n);
    let mut sublist_of = device.alloc_pooled::<u32>(n);
    let mut sublist_next = device.alloc_filled(s, NIL); // following sublist's splitter
    let mut sublist_len = device.alloc_filled(s, 0u32);
    {
        let _k = device.kernel_label("rank_sublist_walk");
        // Closure-side inputs: splitter ids/flags and the successor list.
        device.capture_read(&splitters[..]);
        device.capture_read(&is_splitter[..]);
        device.capture_read(&list.succ);
        // Sublists partition the list; each element belongs to exactly one
        // walking thread, and slot k of next/len belongs to thread k.
        let local_shared = device.shared(&mut local_rank);
        let sub_shared = device.shared(&mut sublist_of);
        let next_shared = device.shared(&mut sublist_next);
        let len_shared = device.shared(&mut sublist_len);
        let splitters_ref = &splitters;
        let is_splitter_ref = &is_splitter;
        device.for_each(s, |k| {
            let mut e = splitters_ref[k];
            let mut r = 0u32;
            loop {
                local_shared.write(e as usize, r);
                sub_shared.write(e as usize, k as u32);
                r += 1;
                let nx = list.succ[e as usize];
                if nx == NIL {
                    next_shared.write(k, NIL);
                    len_shared.write(k, r);
                    return;
                }
                if is_splitter_ref[nx as usize] == 1 {
                    next_shared.write(k, nx);
                    len_shared.write(k, r);
                    return;
                }
                e = nx;
            }
        });
    }

    // Phase 2 (sequential, s elements): accumulate sublist offsets in tour
    // order by hopping from the head's sublist through `sublist_next`.
    // Only splitter slots are ever read, and the loop below writes all of
    // them — the pooled buffer needs no initialization pass.
    device.capture_host_read(&sublist_next[..]);
    device.capture_host_read(&sublist_len[..]);
    let mut splitter_to_sublist = device.alloc_pooled::<u32>(n);
    for (k, &sp) in splitters.iter().enumerate() {
        splitter_to_sublist[sp as usize] = k as u32;
    }
    let mut offset = device.alloc_filled(s, 0u32);
    let mut cur = 0usize; // sublist of the head (splitters[0] == head)
    let mut acc = 0u32;
    let mut terminated = false;
    // The chain visits each sublist at most once on any input whose walk
    // structure is sound: `sublist_next` is a function, so a revisit
    // would cycle forever. Bounding the hops at `s` turns that malformed
    // case into deterministic rejection instead of a hang.
    for _ in 0..s {
        offset[cur] = acc;
        acc += sublist_len[cur];
        let nxt = sublist_next[cur];
        if nxt == NIL {
            terminated = true;
            break;
        }
        cur = splitter_to_sublist[nxt as usize] as usize;
    }
    // Validity check. On a valid list the chain terminates and the walks
    // it strings together are pairwise disjoint with total length n —
    // i.e. they covered every element exactly once (a terminating chain
    // visits distinct sublists; two chain walks sharing an element would
    // give two chain sublists the same successor, forcing a revisit and
    // hence non-termination; and full disjoint coverage leaves no
    // splitter outside the chain). Anything else means the successor
    // structure is broken (non-spanning input): poison the output
    // deterministically — every rank out of range — instead of exposing
    // whatever the pooled phase buffers held. `EulerTour`'s permutation
    // check then rejects reliably.
    if !terminated || acc as usize != n {
        device.fill(out, NIL);
        return;
    }

    // Phase 3 (parallel): final rank = sublist offset + local rank.
    let offset = &offset;
    let sublist_of = &sublist_of;
    let local_rank = &local_rank;
    {
        let _k = device.kernel_label("rank_combine");
        device.capture_read(&offset[..]);
        device.capture_read(&sublist_of[..]);
        device.capture_read(&local_rank[..]);
        device.map(out, |e| offset[sublist_of[e] as usize] + local_rank[e]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcel::Dcel;
    use crate::list::EulerList;

    /// Builds an Euler list for a deterministic pseudo-random tree.
    fn random_tree_list(device: &Device, n: usize, seed: u64) -> EulerList {
        let mut state = seed;
        let mut step = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let edges: Vec<(u32, u32)> = (1..n as u64)
            .map(|v| ((step() % v) as u32, v as u32))
            .collect();
        let dcel = Dcel::build(device, n, &edges);
        EulerList::build(device, &dcel, 0)
    }

    fn assert_ranks_match(list: &EulerList, rank: &[u32]) {
        let reference = rank_sequential(list);
        assert_eq!(rank, &reference[..]);
    }

    #[test]
    fn sequential_ranks_are_positions() {
        let device = Device::new();
        let list = random_tree_list(&device, 100, 7);
        let rank = rank_sequential(&list);
        let order = list.iter_order();
        for (pos, &e) in order.iter().enumerate() {
            assert_eq!(rank[e as usize] as usize, pos);
        }
    }

    #[test]
    fn wyllie_matches_sequential() {
        let device = Device::new();
        for n in [2usize, 3, 17, 1000, 20_000] {
            let list = random_tree_list(&device, n, n as u64);
            let rank = rank_wyllie(&device, &list);
            assert_ranks_match(&list, &rank);
        }
    }

    #[test]
    fn wei_jaja_matches_sequential() {
        let device = Device::new();
        for n in [2usize, 3, 17, 1000, 20_000, 100_000] {
            let list = random_tree_list(&device, n, 3 * n as u64 + 1);
            let rank = rank_wei_jaja(&device, &list);
            assert_ranks_match(&list, &rank);
        }
    }

    #[test]
    fn wei_jaja_on_path_tree() {
        // Path trees produce the most skewed tour structure.
        let device = Device::new();
        let n = 30_000usize;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        let dcel = Dcel::build(&device, n, &edges);
        let list = EulerList::build(&device, &dcel, 0);
        let rank = rank_wei_jaja(&device, &list);
        assert_ranks_match(&list, &rank);
    }

    #[test]
    fn wei_jaja_work_is_linear_wyllie_is_not() {
        // Compare device work counters: Wyllie performs Θ(n log n) work,
        // Wei–JáJá Θ(n). At n = 2^17 the gap must exceed 4×.
        let device = Device::new();
        let list = random_tree_list(&device, 1 << 16, 42);

        let before = device.metrics().snapshot();
        let _ = rank_wei_jaja(&device, &list);
        let wj = device.metrics().snapshot().since(&before);

        let before = device.metrics().snapshot();
        let _ = rank_wyllie(&device, &list);
        let wy = device.metrics().snapshot().since(&before);

        assert!(
            wy.work_items > 4 * wj.work_items,
            "Wyllie work {} should exceed 4x Wei-JaJa work {}",
            wy.work_items,
            wj.work_items
        );
    }

    #[test]
    fn wei_jaja_correct_for_extreme_sublist_counts() {
        let device = Device::new();
        let list = random_tree_list(&device, 4000, 5);
        let expected = rank_sequential(&list);
        for s in [1usize, 2, 17, 4000, usize::MAX] {
            let got = rank_wei_jaja_with_sublists(&device, &list, s);
            assert_eq!(got, expected, "s={s}");
        }
    }

    #[test]
    fn default_sublist_target_scales_with_workers() {
        use gpu_sim::DeviceConfig;
        let n = 1 << 20;
        let mut last_target = 0usize;
        for workers in [1usize, 2, 4, 8] {
            let device = Device::with_config(DeviceConfig {
                threads: Some(workers),
                ..Default::default()
            });
            let target = default_sublist_target(&device, n);
            // Floor: several sublists per worker and per grid block.
            assert!(
                target >= workers * 8,
                "workers={workers}: target {target} starves the pool"
            );
            assert!(target >= device.grid_blocks(n) * 4);
            // Ceiling: the sequential phase 2 stays proportional to the
            // device width (≤ 4096 entries per worker, ≤ 2^16 overall).
            assert!(
                target <= (workers * 4096).min(1 << 16).max(workers * 8),
                "workers={workers}: target {target} overloads phase 2"
            );
            assert!(target <= n);
            // Monotone: wider devices never get fewer sublists.
            assert!(
                target >= last_target,
                "target must not shrink as workers grow ({last_target} -> {target})"
            );
            last_target = target;

            // And the choice must still rank correctly at every width.
            let list = random_tree_list(&device, 50_000, 77);
            let got = rank_wei_jaja(&device, &list);
            assert_eq!(got, rank_sequential(&list), "workers={workers}");
        }
        // Degenerate sizes stay in range.
        let device = Device::new();
        assert_eq!(default_sublist_target(&device, 0), 1);
        for n in [1usize, 5, 100] {
            let t = default_sublist_target(&device, n);
            assert!((1..=n).contains(&t), "n={n} target {t}");
        }
    }

    #[test]
    fn into_variants_match_allocating() {
        let device = Device::new();
        let list = random_tree_list(&device, 30_000, 21);
        let expect = rank_sequential(&list);
        let mut out = vec![0u32; list.len()];
        rank_wyllie_into(&device, &list, &mut out);
        assert_eq!(out, expect);
        out.fill(0);
        rank_wei_jaja_into(&device, &list, &mut out);
        assert_eq!(out, expect);
        out.fill(0);
        rank_into(&device, &list, Ranker::WeiJaJa, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn steady_state_ranking_allocates_nothing() {
        let device = Device::new();
        let list = random_tree_list(&device, 60_000, 33);
        let mut out = vec![0u32; list.len()];
        rank_wyllie_into(&device, &list, &mut out);
        rank_wei_jaja_into(&device, &list, &mut out);
        let before = device.metrics().snapshot();
        for _ in 0..3 {
            rank_wyllie_into(&device, &list, &mut out);
            rank_wei_jaja_into(&device, &list, &mut out);
        }
        let d = device.metrics().snapshot().since(&before);
        assert_eq!(
            d.bytes_allocated, 0,
            "steady-state list ranking must draw all scratch from the pool"
        );
        assert!(d.bytes_reused > 0);
    }

    #[test]
    fn list_prefix_sum_matches_sequential_walk() {
        let device = Device::new();
        for (n, seed) in [(2usize, 1u64), (50, 2), (3000, 3)] {
            let list = random_tree_list(&device, n, seed);
            // Arbitrary signed weights keyed on the half-edge id.
            let weights: Vec<i64> = (0..list.len() as i64).map(|e| (e % 7) - 3).collect();
            let got = list_prefix_sum(&device, &list, &weights);
            // Oracle: walk the list accumulating.
            let mut acc = 0i64;
            let mut e = list.head;
            while e != NIL {
                acc += weights[e as usize];
                assert_eq!(got[e as usize], acc, "n={n} edge={e}");
                e = list.succ[e as usize];
            }
        }
    }

    #[test]
    fn list_prefix_sum_with_unit_weights_is_rank_plus_one() {
        let device = Device::new();
        let list = random_tree_list(&device, 500, 9);
        let ones = vec![1i64; list.len()];
        let prefix = list_prefix_sum(&device, &list, &ones);
        let rank = rank_sequential(&list);
        for e in 0..list.len() {
            assert_eq!(prefix[e], rank[e] as i64 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "weight length mismatch")]
    fn list_prefix_sum_rejects_bad_weights() {
        let device = Device::new();
        let list = random_tree_list(&device, 10, 4);
        list_prefix_sum(&device, &list, &[1i64; 3]);
    }

    #[test]
    fn ranker_enum_dispatches() {
        let device = Device::new();
        let list = random_tree_list(&device, 5000, 9);
        let reference = rank_sequential(&list);
        for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::WeiJaJa] {
            assert_eq!(rank(&device, &list, ranker), reference);
        }
    }

    #[test]
    fn default_ranker_is_wei_jaja() {
        assert_eq!(Ranker::default(), Ranker::WeiJaJa);
    }
}
