//! Kronecker / R-MAT graph generation (§4.2's `kron_g500-logn*` family,
//! after Leskovec et al. \[35\] and the Graph500 specification).
//!
//! Each of `edge_factor · 2^scale` edges picks its endpoints by descending
//! `scale` levels of a 2×2 probability matrix
//! `(A, B; C, D) = (0.57, 0.19; 0.19, 0.05)`. The result is a moderately
//! sparse multigraph with a small diameter and a heavy-tailed degree
//! distribution — the properties the bridge experiments depend on.
//! Generation is embarrassingly parallel across edges.

use graph_core::ids::NodeId;
use graph_core::EdgeList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Graph500 R-MAT parameters.
const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

/// Generates an R-MAT/Kronecker multigraph with `2^scale` nodes and
/// `edge_factor · 2^scale` edges (self-loops and duplicates included, as in
/// the reference generator; extract the LCC for experiments).
pub fn kronecker_graph(scale: u32, edge_factor: usize, seed: u64) -> EdgeList {
    assert!((1..=30).contains(&scale), "scale out of supported range");
    let n = 1usize << scale;
    let m = edge_factor * n;

    // Parallel chunks, each with its own deterministic stream.
    let chunk = 1 << 16;
    let chunks = m.div_ceil(chunk);
    let edges: Vec<(NodeId, NodeId)> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let count = usize::min(chunk, m - c * chunk);
            (0..count)
                .map(move |_| {
                    let mut u = 0u32;
                    let mut v = 0u32;
                    for _ in 0..scale {
                        let r: f64 = rng.gen();
                        let (bu, bv) = if r < A {
                            (0, 0)
                        } else if r < A + B {
                            (0, 1)
                        } else if r < A + B + C {
                            (1, 0)
                        } else {
                            (1, 1)
                        };
                        u = (u << 1) | bu;
                        v = (v << 1) | bv;
                    }
                    (u, v)
                })
                .collect::<Vec<_>>()
        })
        .collect();

    // Graph500 applies a random node permutation to hide the recursive
    // structure; do the same.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5CA1AB1E);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let edges = edges
        .into_iter()
        .map(|(u, v)| (perm[u as usize], perm[v as usize]))
        .collect();
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_parameters() {
        let g = kronecker_graph(10, 16, 1);
        assert_eq!(g.num_nodes(), 1024);
        assert_eq!(g.num_edges(), 16 * 1024);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = kronecker_graph(8, 8, 3);
        let b = kronecker_graph(8, 8, 3);
        let c = kronecker_graph(8, 8, 4);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = kronecker_graph(12, 16, 5);
        let n = g.num_nodes();
        let mut degree = vec![0u32; n];
        for &(u, v) in g.edges() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let max_deg = *degree.iter().max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(
            max_deg as f64 > 10.0 * avg,
            "max degree {max_deg} vs avg {avg:.1}: R-MAT should produce hubs"
        );
        // R-MAT with these params leaves a sizable fraction isolated.
        let isolated = degree.iter().filter(|&&d| d == 0).count();
        assert!(isolated > 0, "some nodes should be isolated at scale 12");
    }

    #[test]
    fn endpoints_in_range() {
        let g = kronecker_graph(6, 4, 7);
        assert!(g.edges().iter().all(|&(u, v)| u < 64 && v < 64));
    }
}
