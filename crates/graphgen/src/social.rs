//! Web-graph-like generator (§4.2's `web-wikipedia2009`: small diameter
//! but a very high bridge fraction — 1.4M bridges among 9M edges).
//!
//! A mixture of preferential attachment: with probability `leaf_prob` a new
//! node attaches by a *single* edge (those edges are bridges unless later
//! duplicated); otherwise it attaches with `m` edges (which close cycles
//! and stay 2-edge-connected). This reproduces the web graphs' signature —
//! dense cores with enormous pendant-tree fringes.

use graph_core::ids::NodeId;
use graph_core::EdgeList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a web-like graph over `n` nodes.
pub fn web_graph(n: usize, m: usize, leaf_prob: f64, seed: u64) -> EdgeList {
    assert!(n >= 1 && m >= 1);
    assert!((0.0..=1.0).contains(&leaf_prob));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * (1 + m) / 2);
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    pool.push(0);
    for i in 1..n {
        let attach = if rng.gen_bool(leaf_prob) { 1 } else { m.min(i) };
        for _ in 0..attach {
            let target = pool[rng.gen_range(0..pool.len())];
            edges.push((i as NodeId, target));
            pool.push(target);
            pool.push(i as NodeId);
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_by_construction() {
        // Every node attaches to an earlier node, so one component.
        let g = web_graph(5000, 3, 0.5, 3);
        let csr = graph_core::Csr::from_edge_list(&g);
        // Sequential BFS reach check.
        let mut seen = vec![false; 5000];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0u32);
        let mut reached = 1;
        while let Some(u) = queue.pop_front() {
            for &w in csr.neighbors(u) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    reached += 1;
                    queue.push_back(w);
                }
            }
        }
        assert_eq!(reached, 5000);
    }

    #[test]
    fn leaf_probability_controls_edge_count() {
        let dense = web_graph(10_000, 4, 0.0, 5);
        let sparse = web_graph(10_000, 4, 1.0, 5);
        assert!(dense.num_edges() > 3 * sparse.num_edges());
        assert_eq!(sparse.num_edges(), 9_999);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            web_graph(1000, 2, 0.4, 6).edges(),
            web_graph(1000, 2, 0.4, 6).edges()
        );
    }
}
