//! # graphgen — synthetic workloads matching the paper's datasets
//!
//! The paper evaluates on (§3.2, §4.2):
//!
//! * **random trees with the *grasp* parameter γ** — node `i`'s parent is
//!   uniform over the γ preceding nodes, interpolating between a path
//!   (γ = 1) and a shallow ln-n-depth tree (γ = ∞) — [`trees`];
//! * **scale-free Barabási–Albert trees** — [`ba`];
//! * **Kronecker / R-MAT graphs** with Graph500 parameters — [`kronecker`];
//! * **social/web-like graphs** via preferential attachment — [`social`];
//! * **road-like networks**: percolated grids with huge diameters —
//!   [`road`];
//!
//! plus the Table-1 statistics tooling (largest connected component,
//! diameter estimation) in [`stats`].
//!
//! All generators are deterministic functions of their seed.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod kronecker;
pub mod road;
pub mod social;
pub mod stats;
pub mod trees;

pub use ba::{ba_graph, ba_tree};
pub use kronecker::kronecker_graph;
pub use road::road_grid;
pub use social::web_graph;
pub use stats::{
    degree_skew, diameter_estimate, diameter_probe, largest_connected_component, GraphStats,
};
pub use trees::{average_depth, permute_labels, random_queries, random_tree};
