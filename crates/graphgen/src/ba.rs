//! Barabási–Albert preferential attachment (§3.2's scale-free trees and
//! the social-network-like multigraphs of §4.2).
//!
//! "The parent of node i is again selected from {1, …, i−1}, but with
//! probabilities proportional to the degrees" — implemented with the
//! endpoint-array trick: every edge contributes both endpoints to a pool,
//! and sampling uniformly from the pool is exactly degree-proportional
//! sampling. O(n) time and memory.

use graph_core::ids::{NodeId, INVALID_NODE};
use graph_core::{EdgeList, Tree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scale-free BA tree with permuted labels (very shallow on average).
pub fn ba_tree(n: usize, seed: u64) -> Tree {
    assert!(n >= 1, "tree needs at least one node");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parent = vec![INVALID_NODE; n];
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n);
    pool.push(0);
    #[allow(clippy::needless_range_loop)] // parent[i] depends on i itself
    for i in 1..n {
        let target = pool[rng.gen_range(0..pool.len())];
        parent[i] = target;
        pool.push(target);
        pool.push(i as NodeId);
    }
    let tree = Tree::from_parent_array(parent, 0).expect("BA attachment forms a tree");
    crate::trees::permute_labels(&tree, seed ^ 0xBA_BA_BA)
}

/// BA multigraph: each new node attaches with `m` degree-proportional
/// edges (duplicates possible, as in the original model). Models the
/// paper's social-network instances (socfb, LiveJournal, hollywood).
pub fn ba_graph(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 1 && m >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_mul(m));
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    pool.push(0);
    for i in 1..n {
        for _ in 0..m.min(i) {
            let target = pool[rng.gen_range(0..pool.len())];
            edges.push((i as NodeId, target));
            pool.push(target);
            pool.push(i as NodeId);
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::average_depth;

    #[test]
    fn ba_tree_is_very_shallow() {
        let n = 100_000;
        let tree = ba_tree(n, 5);
        let avg = average_depth(&tree);
        // BA trees are shallower than uniform random recursive trees
        // (expected depth ~ ln n / 2).
        assert!(avg < (n as f64).ln(), "avg depth {avg:.2} too large");
        assert!(avg > 1.0);
    }

    #[test]
    fn ba_tree_has_power_law_hubs() {
        let n = 50_000;
        let tree = ba_tree(n, 9);
        let mut degree = vec![0u32; n];
        for v in 0..n as u32 {
            if let Some(p) = tree.parent(v) {
                degree[p as usize] += 1;
                degree[v as usize] += 1;
            }
        }
        let max_deg = *degree.iter().max().unwrap() as f64;
        // Hubs grow like sqrt(n) in BA trees; uniform trees peak near log n.
        assert!(
            max_deg > 2.0 * (n as f64).ln(),
            "max degree {max_deg} lacks scale-free hubs"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            ba_tree(1000, 3).parent_slice(),
            ba_tree(1000, 3).parent_slice()
        );
        assert_eq!(ba_graph(500, 3, 4).edges(), ba_graph(500, 3, 4).edges());
    }

    #[test]
    fn ba_graph_edge_count() {
        let g = ba_graph(1000, 4, 6);
        // Node i adds min(i, 4) edges.
        let expect: usize = (1..1000).map(|i: usize| i.min(4)).sum();
        assert_eq!(g.num_edges(), expect);
    }

    #[test]
    fn ba_graph_m1_is_tree_shaped() {
        let g = ba_graph(2000, 1, 8);
        assert_eq!(g.num_edges(), 1999);
    }
}
