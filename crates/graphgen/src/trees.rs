//! Random tree generation with the paper's *grasp* parameter (§3.2).
//!
//! Node 1 is the root; the parent of node `i` is drawn uniformly from the
//! window `{max(i − γ, 1), …, i − 1}` (1-based). γ = 1 yields a path,
//! γ = ∞ the classic random recursive tree with expected average depth
//! `ln n`; finite γ gives expected average depth `n / (γ + 1) + O(1)`.
//! Finally all identifiers are mapped through a random permutation "so that
//! the tree structure is maintained but the identifiers do not leak any
//! information".

use graph_core::ids::{NodeId, INVALID_NODE};
use graph_core::Tree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates the paper's random tree: `grasp = None` means γ = ∞.
/// Labels are randomly permuted, as in the paper.
pub fn random_tree(n: usize, grasp: Option<u64>, seed: u64) -> Tree {
    assert!(n >= 1, "tree needs at least one node");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parent = vec![INVALID_NODE; n];
    #[allow(clippy::needless_range_loop)] // parent[i] depends on i itself
    for i in 1..n {
        let lo = match grasp {
            Some(g) => i.saturating_sub(g as usize),
            None => 0,
        };
        parent[i] = rng.gen_range(lo..i) as NodeId;
    }
    let tree = Tree::from_parent_array(parent, 0).expect("generated parents form a tree");
    permute_labels(&tree, seed ^ 0x5EED_CAFE)
}

/// Relabels the nodes of `tree` through a uniformly random permutation;
/// the shape is preserved, the identifiers shuffled.
pub fn permute_labels(tree: &Tree, seed: u64) -> Tree {
    let n = tree.num_nodes();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Fisher–Yates.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut parent = vec![INVALID_NODE; n];
    for v in 0..n {
        if let Some(p) = tree.parent(v as NodeId) {
            parent[perm[v] as usize] = perm[p as usize];
        }
    }
    Tree::from_parent_array(parent, perm[tree.root() as usize])
        .expect("permutation preserves tree structure")
}

/// Uniform random query pairs over `[0, n)²` (§3.2: "we sample queries
/// uniformly at random from \[n\] × \[n\]").
pub fn random_queries(n: usize, q: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..q)
        .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
        .collect()
}

/// Average node depth of a tree — the x-axis of Figure 5. O(n).
pub fn average_depth(tree: &Tree) -> f64 {
    let n = tree.num_nodes();
    let mut level = vec![u32::MAX; n];
    level[tree.root() as usize] = 0;
    let mut path = Vec::new();
    let mut total = 0u64;
    for start in 0..n {
        let mut v = start;
        while level[v] == u32::MAX {
            path.push(v);
            v = tree.parent(v as NodeId).expect("non-root has parent") as usize;
        }
        let mut d = level[v];
        while let Some(u) = path.pop() {
            d += 1;
            level[u] = d;
        }
        total += level[start] as u64;
    }
    total as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_tree(1000, Some(50), 7);
        let b = random_tree(1000, Some(50), 7);
        let c = random_tree(1000, Some(50), 8);
        assert_eq!(a.parent_slice(), b.parent_slice());
        assert_ne!(a.parent_slice(), c.parent_slice());
    }

    #[test]
    fn grasp_one_is_a_path() {
        let tree = random_tree(500, Some(1), 3);
        // A path has exactly two degree-1 nodes and the rest degree 2;
        // equivalently max depth = n-1.
        assert_eq!(average_depth(&tree), (0..500).sum::<usize>() as f64 / 500.0);
    }

    #[test]
    fn shallow_trees_have_log_depth() {
        let n = 100_000;
        let tree = random_tree(n, None, 11);
        let avg = average_depth(&tree);
        let ln_n = (n as f64).ln();
        assert!(
            (avg - ln_n).abs() < 0.35 * ln_n,
            "avg depth {avg:.2} should be near ln n = {ln_n:.2}"
        );
    }

    #[test]
    fn grasp_controls_depth() {
        let n = 50_000;
        let gamma = 100u64;
        let tree = random_tree(n, Some(gamma), 13);
        let avg = average_depth(&tree);
        let expect = n as f64 / (gamma as f64 + 1.0);
        assert!(
            avg > 0.5 * expect && avg < 2.0 * expect,
            "avg depth {avg:.1} should be near n/(γ+1) = {expect:.1}"
        );
    }

    #[test]
    fn permutation_preserves_shape() {
        let tree = random_tree(2000, None, 5);
        let permuted = permute_labels(&tree, 99);
        // Depth multiset must be identical.
        let mut d1: Vec<usize> = (0..2000).map(|v| tree.depth_of(v as u32)).collect();
        let mut d2: Vec<usize> = (0..2000).map(|v| permuted.depth_of(v as u32)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn queries_in_range_and_deterministic() {
        let q1 = random_queries(100, 1000, 4);
        let q2 = random_queries(100, 1000, 4);
        assert_eq!(q1, q2);
        assert!(q1.iter().all(|&(x, y)| x < 100 && y < 100));
    }

    #[test]
    fn single_node_tree() {
        let tree = random_tree(1, None, 1);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(average_depth(&tree), 0.0);
    }
}
