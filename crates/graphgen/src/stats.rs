//! Dataset statistics for regenerating Table 1: largest-connected-component
//! extraction and diameter estimation.
//!
//! The paper preprocesses every graph "to keep only its largest connected
//! component" and reports nodes/edges/bridges/diameter of the result.
//! Bridges come from `bridges::bridges_dfs` at the bench level (this crate
//! stays below the algorithm crates in the dependency order); diameter uses
//! the standard double-sweep BFS lower bound, which is exact on trees and
//! tight in practice on road networks.

use graph_core::ids::NodeId;
use graph_core::{Csr, EdgeList};

/// Basic statistics of a (connected) graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Double-sweep BFS diameter estimate (lower bound).
    pub diameter: u32,
}

/// Extracts the largest connected component, relabeling its nodes to
/// `0..k` (order-preserving). Self-loops and duplicate edges are removed
/// first, as in the paper's preprocessing. Returns the component and the
/// old→new node mapping (`u32::MAX` for dropped nodes).
pub fn largest_connected_component(graph: &EdgeList) -> (EdgeList, Vec<u32>) {
    let simple = graph.simplified();
    let n = simple.num_nodes();
    let csr = Csr::from_edge_list(&simple);

    // Sequential BFS labeling of components.
    let mut comp = vec![u32::MAX; n];
    let mut comp_size: Vec<usize> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        let c = comp_size.len() as u32;
        comp[s as usize] = c;
        let mut size = 1usize;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &w in csr.neighbors(u) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = c;
                    size += 1;
                    queue.push_back(w);
                }
            }
        }
        comp_size.push(size);
    }

    let largest = comp_size
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(c, _)| c as u32)
        .unwrap_or(0);

    // Order-preserving relabeling.
    let mut mapping = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if comp[v] == largest {
            mapping[v] = next;
            next += 1;
        }
    }
    let edges: Vec<(NodeId, NodeId)> = simple
        .edges()
        .iter()
        .filter(|&&(u, _)| comp[u as usize] == largest)
        .map(|&(u, v)| (mapping[u as usize], mapping[v as usize]))
        .collect();
    (EdgeList::new(next as usize, edges), mapping)
}

/// BFS eccentricity search: returns `(farthest node, distance)`.
fn bfs_farthest(csr: &Csr, start: NodeId) -> (NodeId, u32) {
    let n = csr.num_nodes();
    let mut level = vec![u32::MAX; n];
    level[start as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    let mut far = (start, 0);
    while let Some(u) = queue.pop_front() {
        let l = level[u as usize];
        if l > far.1 {
            far = (u, l);
        }
        for &w in csr.neighbors(u) {
            if level[w as usize] == u32::MAX {
                level[w as usize] = l + 1;
                queue.push_back(w);
            }
        }
    }
    far
}

/// Capped BFS eccentricity search from `start`: expands at most `cap`
/// levels and returns `(farthest node seen, its level)`. Visits only nodes
/// within distance `cap`, so the probe stays cheap on huge-diameter graphs.
fn bfs_farthest_capped(csr: &Csr, start: NodeId, cap: u32) -> (NodeId, u32) {
    let n = csr.num_nodes();
    let mut level = vec![u32::MAX; n];
    level[start as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    let mut far = (start, 0);
    while let Some(u) = queue.pop_front() {
        let l = level[u as usize];
        if l > far.1 {
            far = (u, l);
        }
        if l >= cap {
            continue;
        }
        for &w in csr.neighbors(u) {
            if level[w as usize] == u32::MAX {
                level[w as usize] = l + 1;
                queue.push_back(w);
            }
        }
    }
    far
}

/// Capped double-sweep diameter probe: a lower bound like
/// [`diameter_estimate`], but each sweep stops after `cap` levels, so the
/// result saturates at `cap`. The cheap shape statistic behind the adaptive
/// spanning-forest selector — "is the diameter small?" is answerable
/// without paying for a full BFS on road-network-scale diameters.
pub fn diameter_probe(csr: &Csr, start: NodeId, cap: u32) -> u32 {
    if csr.num_nodes() == 0 {
        return 0;
    }
    let (u, d1) = bfs_farthest_capped(csr, start, cap);
    if d1 >= cap {
        return cap;
    }
    let (_, d2) = bfs_farthest_capped(csr, u, cap);
    d1.max(d2)
}

/// Degree skew: maximum degree divided by average degree. `1.0` for regular
/// graphs, large for power-law degree distributions, `0.0` for graphs
/// without edges.
pub fn degree_skew(csr: &Csr) -> f64 {
    let avg = csr.avg_degree();
    if avg == 0.0 {
        return 0.0;
    }
    csr.max_degree() as f64 / avg
}

/// Double-sweep diameter estimate with `sweeps` refinement rounds.
/// Exact on trees; a lower bound in general.
pub fn diameter_estimate(csr: &Csr, sweeps: usize) -> u32 {
    if csr.num_nodes() == 0 {
        return 0;
    }
    let mut best = 0;
    let mut start = 0 as NodeId;
    for _ in 0..sweeps.max(1) {
        let (u, _) = bfs_farthest(csr, start);
        let (v, d) = bfs_farthest(csr, u);
        best = best.max(d);
        start = v;
    }
    best
}

/// Computes [`GraphStats`] for a (typically LCC) graph.
pub fn graph_stats(graph: &EdgeList) -> GraphStats {
    let csr = Csr::from_edge_list(graph);
    GraphStats {
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        diameter: diameter_estimate(&csr, 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcc_of_two_components() {
        let g = EdgeList::new(7, vec![(0, 1), (1, 2), (3, 4), (4, 5), (5, 3), (5, 6)]);
        let (lcc, mapping) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 4); // {3,4,5,6}
        assert_eq!(lcc.num_edges(), 4);
        assert_eq!(mapping[0], u32::MAX);
        assert_ne!(mapping[3], u32::MAX);
    }

    #[test]
    fn lcc_removes_loops_and_duplicates() {
        let g = EdgeList::new(3, vec![(0, 1), (1, 0), (1, 1), (1, 2)]);
        let (lcc, _) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 3);
        assert_eq!(lcc.num_edges(), 2);
    }

    #[test]
    fn lcc_of_connected_graph_is_identity_shape() {
        let g = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let (lcc, mapping) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 4);
        assert_eq!(mapping, vec![0, 1, 2, 3]);
    }

    #[test]
    fn diameter_probe_saturates_at_cap() {
        let n = 500;
        let g = EdgeList::new(n, (1..n as u32).map(|v| (v - 1, v)).collect());
        let csr = Csr::from_edge_list(&g);
        assert_eq!(diameter_probe(&csr, 0, 64), 64);
        assert_eq!(diameter_probe(&csr, 0, 1000), n as u32 - 1);
        assert_eq!(diameter_probe(&csr, 250, 64), 64);
    }

    #[test]
    fn diameter_probe_exact_below_cap() {
        let g = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(diameter_probe(&csr, 1, 64), 3);
        let empty = Csr::from_edge_list(&EdgeList::empty(0));
        assert_eq!(diameter_probe(&empty, 0, 64), 0);
    }

    #[test]
    fn degree_skew_flat_vs_star() {
        let cycle: Vec<(u32, u32)> = (0..8u32).map(|v| (v, (v + 1) % 8)).collect();
        let csr = Csr::from_edge_list(&EdgeList::new(8, cycle));
        assert!((degree_skew(&csr) - 1.0).abs() < 1e-9);
        let star: Vec<(u32, u32)> = (1..9u32).map(|v| (0, v)).collect();
        let csr = Csr::from_edge_list(&EdgeList::new(9, star));
        assert!(degree_skew(&csr) > 4.0);
        let empty = Csr::from_edge_list(&EdgeList::empty(3));
        assert_eq!(degree_skew(&empty), 0.0);
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let n = 500;
        let g = EdgeList::new(n, (1..n as u32).map(|v| (v - 1, v)).collect());
        let csr = Csr::from_edge_list(&g);
        assert_eq!(diameter_estimate(&csr, 1), n as u32 - 1);
    }

    #[test]
    fn diameter_of_cycle_close_to_half() {
        let n = 100;
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        edges.push((n as u32 - 1, 0));
        let csr = Csr::from_edge_list(&EdgeList::new(n, edges));
        assert_eq!(diameter_estimate(&csr, 2), 50);
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let g = crate::road::road_grid(20, 30, 1.0, 1);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(diameter_estimate(&csr, 2), 19 + 29);
    }

    #[test]
    fn stats_bundle() {
        let g = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.diameter, 2);
    }

    #[test]
    fn road_lcc_has_large_diameter() {
        let g = crate::road::road_grid(150, 150, crate::road::DEFAULT_KEEP_PROB, 4);
        let (lcc, _) = largest_connected_component(&g);
        let stats = graph_stats(&lcc);
        // Percolated grid diameters exceed the full grid's Manhattan
        // diameter because paths detour around missing edges.
        assert!(
            stats.diameter > 150,
            "diameter {} too small",
            stats.diameter
        );
        assert!(stats.nodes > 10_000, "LCC unexpectedly small");
    }

    #[test]
    fn kronecker_lcc_has_small_diameter() {
        let g = crate::kronecker::kronecker_graph(12, 16, 7);
        let (lcc, _) = largest_connected_component(&g);
        let stats = graph_stats(&lcc);
        assert!(stats.diameter < 15, "diameter {} too large", stats.diameter);
    }
}
