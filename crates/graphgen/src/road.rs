//! Road-network-like graphs (§4.2's `USA-road-d.*` / OSM family):
//! "extremely sparse and with significantly larger diameters".
//!
//! A width × height grid keeps each lattice edge with probability
//! `keep_prob` (bond percolation above threshold, so a giant component
//! survives) — giving average degree ≈ 4·keep_prob ≈ 2.5 at the default,
//! a Θ(√n) diameter and abundant bridges, the three properties that
//! separate road graphs from the social/Kronecker family in Figures 9–11.

use graph_core::ids::NodeId;
use graph_core::EdgeList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Default keep probability tuned for avg degree ≈ 2.5 (road-like).
pub const DEFAULT_KEEP_PROB: f64 = 0.62;

/// Generates a percolated grid; extract the LCC before running the
/// connected-only algorithms.
pub fn road_grid(width: usize, height: usize, keep_prob: f64, seed: u64) -> EdgeList {
    assert!(width >= 1 && height >= 1);
    assert!((0.0..=1.0).contains(&keep_prob));
    let n = width * height;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity((2.0 * n as f64 * keep_prob) as usize + 16);
    for y in 0..height {
        for x in 0..width {
            let v = (y * width + x) as NodeId;
            if x + 1 < width && rng.gen_bool(keep_prob) {
                edges.push((v, v + 1));
            }
            if y + 1 < height && rng.gen_bool(keep_prob) {
                edges.push((v, v + width as NodeId));
            }
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_at_probability_one() {
        let g = road_grid(10, 10, 1.0, 1);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 2 * 10 * 9);
    }

    #[test]
    fn empty_at_probability_zero() {
        let g = road_grid(5, 5, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn default_density_is_road_like() {
        let g = road_grid(300, 300, DEFAULT_KEEP_PROB, 9);
        let avg_degree = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (2.0..3.0).contains(&avg_degree),
            "avg degree {avg_degree:.2} should be road-like"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            road_grid(50, 50, 0.6, 2).edges(),
            road_grid(50, 50, 0.6, 2).edges()
        );
    }
}
