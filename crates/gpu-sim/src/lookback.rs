//! Single-pass decoupled-lookback scan (the Merrill/Garland CUB design).
//!
//! The classic three-phase blocked scan ([`crate::scan`]'s two-pass core)
//! reads the input twice: once in the block-reduce pass and once in the
//! downsweep. On bandwidth-bound hardware that doubles the dominant cost of
//! every prefix sum. The decoupled-lookback formulation does the whole scan
//! in **one** launch and ~1 read + 1 write per element: each block publishes
//! a descriptor and resolves its running prefix by *looking back* over its
//! predecessors' descriptors instead of waiting for a separate global pass.
//!
//! Per-block descriptor state machine:
//!
//! ```text
//! INVALID ──(aggregate published)──▶ AGGREGATE ──(prefix resolved)──▶ PREFIX
//!    └────────────(block 0 / no predecessors)─────────────────────────▶ PREFIX
//! ```
//!
//! Block `b` scans its tile into a per-block staging buffer (the simulated
//! shared memory), publishes its tile aggregate with `Release` ordering,
//! then walks descriptors `b-1, b-2, …` — spinning while a predecessor is
//! still `INVALID`, accumulating `AGGREGATE` values, and stopping at the
//! first `PREFIX`, which already folds in everything to its left. The block
//! then publishes its own inclusive `PREFIX` (unblocking successors early)
//! and writes its output tile, all inside the same launch.
//!
//! **Deadlock freedom** under the simulated grid: [`crate::Device`]
//! schedules blocks through an atomic claim counter, so block indices are
//! claimed in ascending order and every claimed block publishes its
//! aggregate *before* it first waits on anyone. A block spinning on
//! predecessor `j` therefore waits on a block that is either already
//! finished or currently running its (wait-free) tile phase; block 0 never
//! waits at all. On a single-worker pool the grid degenerates to an in-order
//! sequential loop and the spin never triggers. See DESIGN.md §10.
//!
//! Descriptor values use the classic message-passing pattern: the value
//! slot is plainly written *before* the `Release` status store, and only
//! read *after* an `Acquire` status load observes the flip — the
//! release/acquire pair carries the happens-before edge, so the plain
//! value accesses are data-race-free (this also admits padded pair types,
//! which [`SharedSlice`]'s chunk-atomic accessors reject).

use crate::arena::ArenaPod;
use crate::atomic::as_atomic_u32;
use crate::device::{Device, SharedSlice};
use std::sync::atomic::{AtomicU32, Ordering};

/// Selects the scan core backing every prefix-sum primitive (scans, fused
/// map-scans, segmented scans, `compact_indices`, radix-sort offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanEngine {
    /// Single-pass decoupled lookback: 1 launch, ~1 read + 1 write per
    /// element (the default).
    #[default]
    Lookback,
    /// The classic three-phase blocked core: 2 launches, ~2 reads + 1
    /// write per element. Kept as the A/B baseline and bit-identical
    /// oracle.
    TwoPass,
}

impl ScanEngine {
    /// Reads the engine from `EMG_SCAN_ENGINE` (`lookback` or `twopass` /
    /// `two_pass`, case-insensitive); [`ScanEngine::Lookback`] when unset.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo must not silently change
    /// which engine a benchmark measures.
    pub fn from_env() -> Self {
        crate::env::parse_env(crate::env::EMG_SCAN_ENGINE)
    }
}

impl std::str::FromStr for ScanEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "lookback" => Ok(Self::Lookback),
            "twopass" | "two_pass" | "two-pass" => Ok(Self::TwoPass),
            other => Err(format!("unknown scan engine {other:?}")),
        }
    }
}

const INVALID: u32 = 0;
const AGGREGATE: u32 = 1;
const PREFIX: u32 = 2;

/// The per-block descriptor array of one decoupled-lookback launch:
/// a status word per block plus the two published values (tile aggregate,
/// inclusive prefix). Values are published *before* the status word flips,
/// with `Release`/`Acquire` ordering carrying the happens-before edge.
pub(crate) struct Descriptors<'a, T> {
    status: &'a [AtomicU32],
    aggregate: SharedSlice<'a, T>,
    prefix: SharedSlice<'a, T>,
}

impl<'a, T: ArenaPod> Descriptors<'a, T> {
    /// Builds the descriptor array over caller scratch (one slot per
    /// block in each slice), resetting every status to `INVALID`.
    pub(crate) fn new(status: &'a mut [u32], aggregate: &'a mut [T], prefix: &'a mut [T]) -> Self {
        status.fill(INVALID);
        Self {
            status: as_atomic_u32(status),
            aggregate: SharedSlice::new(aggregate),
            prefix: SharedSlice::new(prefix),
        }
    }

    /// Publishes block `b`'s tile aggregate (`INVALID → AGGREGATE`).
    /// Blocks without predecessors skip straight to
    /// [`Descriptors::publish_prefix`].
    pub(crate) fn publish_aggregate(&self, b: usize, aggregate: T) {
        // SAFETY: slot b is written exactly once, by block b, before the
        // Release store below; readers access it only after an Acquire
        // load observes status[b] != INVALID, so the accesses are ordered
        // by happens-before and never concurrent. b < blocks by
        // construction of the grid.
        unsafe { self.aggregate.write_unchecked(b, aggregate) };
        self.status[b].store(AGGREGATE, Ordering::Release);
    }

    /// Publishes block `b`'s resolved inclusive prefix (`→ PREFIX`),
    /// letting successors stop their lookback here.
    pub(crate) fn publish_prefix(&self, b: usize, inclusive_prefix: T) {
        // SAFETY: as in `publish_aggregate` — single ordered writer,
        // readers gated on the Release store below via Acquire loads.
        unsafe { self.prefix.write_unchecked(b, inclusive_prefix) };
        self.status[b].store(PREFIX, Ordering::Release);
    }

    /// Resolves block `b`'s exclusive prefix by walking predecessor
    /// descriptors right-to-left: spin while `INVALID`, fold `AGGREGATE`
    /// values, stop at the first `PREFIX`. Termination: block 0 only ever
    /// publishes `PREFIX`, and the grid's ascending block-claim order
    /// guarantees every predecessor is (or will be) running.
    ///
    /// # Panics
    /// Panics if `b == 0` (no predecessors to look back over).
    pub(crate) fn lookback<F>(&self, b: usize, op: &F) -> T
    where
        F: Fn(T, T) -> T,
    {
        assert!(b > 0, "lookback: block 0 has no predecessors");
        let mut running: Option<T> = None;
        for j in (0..b).rev() {
            let mut st = self.status[j].load(Ordering::Acquire);
            while st == INVALID {
                std::hint::spin_loop();
                st = self.status[j].load(Ordering::Acquire);
            }
            // Predecessors sit to the *left* of everything accumulated so
            // far, so they fold in on the left (ops need not commute).
            let slot = if st == PREFIX {
                &self.prefix
            } else {
                &self.aggregate
            };
            // SAFETY: the Acquire load above observed the Release store
            // that block j issued *after* writing this slot, so the write
            // happens-before this read and the slot is never written
            // again under the status the loop matched on (AGGREGATE gates
            // the aggregate slot, PREFIX the prefix slot). j < b ≤ blocks.
            let value = unsafe { slot.read_unchecked(j) };
            running = Some(match running {
                None => value,
                Some(r) => op(value, r),
            });
            if st == PREFIX {
                break;
            }
        }
        running.expect("lookback: b > 0 visits at least one predecessor")
    }

    /// Reads block `b`'s published inclusive prefix (host side, after the
    /// launch barrier — every status is `PREFIX` by then).
    pub(crate) fn prefix_value(&self, b: usize) -> T {
        debug_assert_eq!(self.status[b].load(Ordering::Acquire), PREFIX);
        // SAFETY: called after the launch barrier joined every block, so
        // all descriptor writes happened-before this read; b < blocks.
        unsafe { self.prefix.read_unchecked(b) }
    }
}

impl Device {
    /// The single-pass decoupled-lookback scan core over a generated
    /// source. One kernel launch; each element is read once (the `gen`
    /// evaluation) and written once. Callers handle `n == 0` and the
    /// sequential small-`n` path; outputs are bit-identical to the
    /// two-pass core for associative `op` (both cores fold strictly left
    /// to right).
    pub(crate) fn scan_lookback<T, G, F>(
        &self,
        n: usize,
        gen: &G,
        out: &mut [T],
        identity: T,
        op: &F,
        inclusive: bool,
    ) -> T
    where
        T: ArenaPod,
        G: Fn(usize) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        debug_assert!(n > 0);
        debug_assert_eq!(out.len(), n);
        let chunk = self.grid_chunk_len(n);
        let blocks = n.div_ceil(chunk);

        // O(blocks) descriptor scratch plus an n-sized tile staging plane —
        // the simulated shared memory. Neither is data-plane traffic: the
        // descriptors are grid bookkeeping (pool-width-dependent size) and
        // the tiles model on-chip storage.
        let mut status_buf = self.alloc_pooled::<u32>(blocks);
        let mut value_buf = self.alloc_pooled::<T>(2 * blocks);
        let (agg_buf, pfx_buf) = value_buf.split_at_mut(blocks);
        let mut tiles = self.alloc_pooled::<T>(n);

        let bytes = (n * size_of::<T>()) as u64;
        self.metrics().record_launch(n as u64);
        let cap = self.cap_begin_launch(n as u64);
        self.metrics().record_traffic(bytes, bytes);

        let desc = Descriptors::new(&mut status_buf, agg_buf, pfx_buf);
        let out_shared = SharedSlice::new(out);
        let tiles_shared = SharedSlice::new(&mut tiles);
        self.schedule_blocks(blocks, |b| {
            let start = b * chunk;
            let end = usize::min(start + chunk, n);
            let len = end - start;
            // SAFETY: each block owns the disjoint index range
            // [start, end) of both the tile staging plane and the output,
            // so carving one exclusive sub-slice per block upholds the
            // SharedSlice contract.
            let (tile, out_tile) = unsafe {
                (
                    std::slice::from_raw_parts_mut(tiles_shared.as_ptr().add(start), len),
                    std::slice::from_raw_parts_mut(out_shared.as_ptr().add(start), len),
                )
            };

            // Tile phase: the single input read — an unseeded local
            // inclusive scan, whose last element is the tile aggregate.
            let mut acc = gen(start);
            tile[0] = acc;
            for (j, slot) in tile.iter_mut().enumerate().skip(1) {
                acc = op(acc, gen(start + j));
                *slot = acc;
            }
            let aggregate = acc;

            // Descriptor phase: publish, then look back. Block 0's
            // exclusive prefix is the identity; it publishes PREFIX
            // directly and never waits.
            let exclusive = if b == 0 {
                identity
            } else {
                desc.publish_aggregate(b, aggregate);
                desc.lookback(b, op)
            };
            desc.publish_prefix(b, op(exclusive, aggregate));

            // Output phase: the single write per element.
            if inclusive {
                for (j, slot) in out_tile.iter_mut().enumerate() {
                    *slot = op(exclusive, tile[j]);
                }
            } else {
                out_tile[0] = exclusive;
                for (j, slot) in out_tile.iter_mut().enumerate().skip(1) {
                    *slot = op(exclusive, tile[j - 1]);
                }
            }
        });
        let total = desc.prefix_value(blocks - 1);
        self.cap_end_launch(cap);
        self.san_mark_written(out);
        total
    }
}
