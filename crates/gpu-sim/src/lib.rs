//! # gpu-sim — a simulated bulk-synchronous GPU device
//!
//! The paper *Euler Meets GPU* (IPDPS 2021) runs CUDA kernels on an NVIDIA
//! GTX 980 and leans on the [moderngpu] library for sort, scan and
//! segmented-reduce primitives. This crate substitutes that stack with a
//! software device: kernels are expressed over a grid of *virtual threads*
//! and executed bulk-synchronously on a [rayon] thread pool. Every kernel
//! launch is a synchronization barrier, exactly like a CUDA kernel followed
//! by `cudaDeviceSynchronize()`.
//!
//! The substitution preserves what the paper's experiments measure — work,
//! depth, and memory-access structure of the algorithms — while running on
//! commodity CPUs. See `DESIGN.md` at the workspace root for the full
//! substitution argument.
//!
//! ## Quick tour
//!
//! ```
//! use gpu_sim::Device;
//!
//! let device = Device::new();
//! // A map kernel: out[i] = i * i  (one virtual thread per element)
//! let mut out = vec![0u64; 1024];
//! device.map(&mut out, |i| (i * i) as u64);
//! // A scan primitive (moderngpu substitute)
//! let prefix = device.scan_exclusive(&out, 0u64, |a, b| a + b);
//! assert_eq!(prefix[3], 0 + 1 + 4);
//! ```
//!
//! The primitive suite mirrors moderngpu's: radix [`sort`], generic
//! [`scan`] and [`reduce`], segmented reduce and segmented scan
//! ([`segreduce`]), stream compaction ([`compact`]), merge-path [`merge`]
//! and mergesort, load-balanced search and interval expand ([`lbs`]),
//! reduce-by-key ([`rbk`]) and histograms ([`histogram`]), with kernel
//! and work-item accounting in [`metrics`].
//!
//! Multi-launch pipelines draw their scratch buffers from the device
//! memory plane ([`arena`]): a size-bucketed pool with RAII handles
//! ([`ArenaVec`]/[`ScratchGuard`]) so that steady-state iterations
//! allocate nothing, plus `_into` and fused variants of the allocating
//! primitives (`scan_*_into`, `map_scan_*`, `gather_map_into`, ...).
//!
//! An opt-in sanitizer plane ([`sanitize`], `EMG_SANITIZE` or
//! [`DeviceConfig::sanitize`]) is the `compute-sanitizer` analogue:
//! memcheck / initcheck / racecheck over the tracked access layer
//! ([`Device::shared`] views and the checked atomic views), with
//! pool-width-independent virtual-block attribution and a
//! [`SharedSlice::benign`] whitelist for the algorithms' deliberate
//! commuting races.
//!
//! An opt-in launch-graph plane ([`launch_graph`], `EMG_CAPTURE` or
//! [`DeviceConfig::capture`]) records every launch's kernel label and
//! per-region access set through the same tracked views, and statically
//! analyzes the captured pipeline for inter-launch hazards, dead writes,
//! and fusion candidates. An opt-in fault plane ([`mod@fault`],
//! `EMG_FAULT` or [`DeviceConfig::faults`]) injects seeded,
//! schedule-independent failures — launch panics, refused allocations,
//! artificial latency — so the serving stack's failure handling is
//! testable and every chaos run replays from its seed. All `EMG_*` knobs
//! share one parsing contract, registered in [`mod@env`].
//!
//! [moderngpu]: https://github.com/moderngpu/moderngpu
//! [`SharedSlice::benign`]: device::SharedSlice::benign

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod atomic;
pub mod compact;
pub mod device;
pub mod env;
pub mod fault;
pub mod histogram;
pub mod launch_graph;
pub mod lbs;
pub mod lookback;
pub mod merge;
pub mod metrics;
pub mod rbk;
pub mod reduce;
pub mod sanitize;
pub mod scan;
pub mod segreduce;
pub mod sort;

pub use arena::ArenaError;
pub use arena::{ArenaPod, ArenaVec, DeviceArena, ScratchGuard};
pub use atomic::{as_atomic_u32, as_atomic_u64, AtomicF64Cell, AtomicViewU32, AtomicViewU64};
pub use device::{CaptureScope, Device, DeviceConfig, DeviceHandle, KernelLabel, SharedSlice};
pub use fault::{FaultConfig, FaultPause, FaultPlane};
pub use launch_graph::{
    Analysis, CaptureMode, DeadWrite, DepCounts, FusionCandidate, Hazard, HazardKind, LaunchGraph,
    Node, Region,
};
pub use lookback::ScanEngine;
pub use metrics::{Metrics, MetricsSnapshot, PhaseTimer};
pub use rbk::ReducedRuns;
pub use sanitize::{AccessKind, Finding, FindingKind, SanitizeMode};
