//! Reduce-by-key — collapse consecutive runs of equal keys, reducing the
//! values of each run (moderngpu / Thrust `reduce_by_key`).
//!
//! Appears throughout GPU graph pipelines wherever sorted half-edge arrays
//! need per-vertex aggregation: the DCEL `first` array is "first index of
//! each key run", and per-node non-tree neighbor minima are a reduce-by-key
//! over the sorted edge array. The implementation is the canonical
//! flag–scan–segmented-reduce composition, reusing the device's scan,
//! compaction and segmented-reduce primitives.

use crate::device::Device;

/// Output of [`Device::reduce_by_key`]: one entry per run of equal keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedRuns<K, T> {
    /// The distinct key of each run, in input order.
    pub keys: Vec<K>,
    /// The reduction of the values of each run.
    pub values: Vec<T>,
    /// Start index of each run in the input, plus the input length — a
    /// CSR-style offsets array (`runs + 1` entries).
    pub offsets: Vec<u32>,
}

impl<K, T> ReducedRuns<K, T> {
    /// Number of runs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the input was empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Length of run `r`.
    pub fn run_len(&self, r: usize) -> usize {
        (self.offsets[r + 1] - self.offsets[r]) as usize
    }
}

impl Device {
    /// Reduces consecutive runs of equal keys.
    ///
    /// For input `keys`/`values` of equal length, every maximal run of
    /// adjacent equal keys becomes one output entry whose value is the
    /// `op`-reduction (seeded with `identity`) of the run's values. Keys
    /// need not be globally sorted — only adjacency matters, exactly as in
    /// Thrust. O(n) work, O(log n) depth.
    ///
    /// # Panics
    /// Panics if `keys.len() != values.len()`.
    pub fn reduce_by_key<K, T, F>(
        &self,
        keys: &[K],
        values: &[T],
        identity: T,
        op: F,
    ) -> ReducedRuns<K, T>
    where
        K: PartialEq + Copy + Send + Sync,
        T: Copy + Send + Sync + Default,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(keys.len(), values.len(), "reduce_by_key: length mismatch");
        let n = keys.len();
        if n == 0 {
            return ReducedRuns {
                keys: Vec::new(),
                values: Vec::new(),
                offsets: vec![0],
            };
        }
        // Head flags → run start indices (one compaction), then the runs
        // form segments for a segmented reduce. The key reads go through
        // predicate / generator closures, so each launch gets them declared.
        self.capture_read(keys);
        let mut heads = self.compact_indices(n, |i| i == 0 || keys[i] != keys[i - 1]);
        heads.push(n as u32);
        let offsets = heads;
        let out_values = self.segmented_reduce(values, &offsets, identity, op);
        self.capture_read(keys);
        let out_keys = self.alloc_map_nondefault(offsets.len() - 1, |r| keys[offsets[r] as usize]);
        ReducedRuns {
            keys: out_keys,
            values: out_values,
            offsets,
        }
    }

    /// `alloc_map` for types without `Default` (keys of arbitrary type):
    /// collects instead of filling in place. Parallel for large `n`.
    fn alloc_map_nondefault<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        // First element seeds a fillable buffer, then a map kernel
        // overwrites every slot.
        let seed = f(0);
        let mut out = vec![seed; n];
        self.map(&mut out, f);
        out
    }

    /// Counts the length of every run of adjacent equal keys.
    ///
    /// Convenience wrapper: `reduce_by_key` with per-element weight 1.
    pub fn run_length_encode<K>(&self, keys: &[K]) -> ReducedRuns<K, u32>
    where
        K: PartialEq + Copy + Send + Sync,
    {
        let ones = vec![1u32; keys.len()];
        self.reduce_by_key(keys, &ones, 0, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn device() -> Device {
        Device::new()
    }

    /// Sequential oracle.
    fn naive_rbk(keys: &[u32], values: &[u64]) -> (Vec<u32>, Vec<u64>) {
        let mut ks = Vec::new();
        let mut vs = Vec::new();
        for (i, (&k, &v)) in keys.iter().zip(values).enumerate() {
            if i == 0 || keys[i - 1] != k {
                ks.push(k);
                vs.push(v);
            } else {
                *vs.last_mut().unwrap() += v;
            }
        }
        (ks, vs)
    }

    #[test]
    fn empty_input() {
        let d = device();
        let r = d.reduce_by_key::<u32, u64, _>(&[], &[], 0, |a, b| a + b);
        assert!(r.is_empty());
        assert_eq!(r.offsets, [0]);
    }

    #[test]
    fn single_run() {
        let d = device();
        let keys = vec![9u32; 10_000];
        let vals = vec![1u64; 10_000];
        let r = d.reduce_by_key(&keys, &vals, 0, |a, b| a + b);
        assert_eq!(r.keys, [9]);
        assert_eq!(r.values, [10_000]);
        assert_eq!(r.offsets, [0, 10_000]);
    }

    #[test]
    fn alternating_keys_all_singleton_runs() {
        let d = device();
        let keys: Vec<u32> = (0..5000).map(|i| i % 2).collect();
        let vals: Vec<u64> = (0..5000).map(|i| i as u64).collect();
        let r = d.reduce_by_key(&keys, &vals, 0, |a, b| a + b);
        assert_eq!(r.len(), 5000);
        assert_eq!(r.values, vals);
    }

    #[test]
    fn unsorted_keys_reduce_adjacent_runs_only() {
        let d = device();
        // Key 1 appears in two separate runs: they must NOT be merged.
        let keys = [1u32, 1, 2, 1, 1, 1];
        let vals = [10u64, 20, 5, 1, 2, 3];
        let r = d.reduce_by_key(&keys, &vals, 0, |a, b| a + b);
        assert_eq!(r.keys, [1, 2, 1]);
        assert_eq!(r.values, [30, 5, 6]);
        assert_eq!(r.offsets, [0, 2, 3, 6]);
        assert_eq!(r.run_len(0), 2);
        assert_eq!(r.run_len(2), 3);
    }

    #[test]
    fn matches_naive_on_random_runs() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(11);
        let mut keys = Vec::new();
        while keys.len() < 60_000 {
            let k: u32 = rng.gen_range(0..100);
            let run = rng.gen_range(1..20);
            keys.extend(std::iter::repeat_n(k, run));
        }
        let vals: Vec<u64> = (0..keys.len() as u64).collect();
        let (ek, ev) = naive_rbk(&keys, &vals);
        let r = d.reduce_by_key(&keys, &vals, 0, |a, b| a + b);
        assert_eq!(r.keys, ek);
        assert_eq!(r.values, ev);
    }

    #[test]
    fn min_reduction() {
        let d = device();
        let keys = [0u32, 0, 0, 1, 1];
        let vals = [5u32, 2, 9, 7, 3];
        let r = d.reduce_by_key(&keys, &vals, u32::MAX, |a, b| a.min(b));
        assert_eq!(r.values, [2, 3]);
    }

    #[test]
    fn run_length_encode_counts() {
        let d = device();
        let keys = [b'a', b'a', b'b', b'c', b'c', b'c'];
        let r = d.run_length_encode(&keys);
        assert_eq!(r.keys, [b'a', b'b', b'c']);
        assert_eq!(r.values, [2, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let d = device();
        d.reduce_by_key(&[1u32], &[1u64, 2], 0, |a, b| a + b);
    }
}
