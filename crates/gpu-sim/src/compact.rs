//! Stream compaction (filter): flag → scan → scatter.
//!
//! Used to build BFS frontiers and to separate tree from non-tree edges.

use crate::device::{Device, SharedSlice};
use rayon::prelude::*;

impl Device {
    /// Returns, in ascending order, every index `i in 0..n` with `pred(i)`.
    pub fn compact_indices<F>(&self, n: usize, pred: F) -> Vec<u32>
    where
        F: Fn(usize) -> bool + Sync,
    {
        self.metrics().record_primitive();
        if n == 0 {
            return Vec::new();
        }
        if n <= self.config().seq_threshold {
            self.metrics().record_launch(n as u64);
            return (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
        }

        let chunk = self.grid_chunk_len(n);
        let blocks = n.div_ceil(chunk);

        // Phase 1: count survivors per block.
        self.metrics().record_launch(n as u64);
        let mut counts = vec![0u32; blocks];
        self.run(|| {
            counts.par_iter_mut().enumerate().for_each(|(b, count)| {
                let start = b * chunk;
                let end = usize::min(start + chunk, n);
                *count = (start..end).filter(|&i| pred(i)).count() as u32;
            });
        });

        // Phase 2: block offsets (tiny, sequential).
        let mut offsets = vec![0u32; blocks];
        let mut acc = 0u32;
        for b in 0..blocks {
            offsets[b] = acc;
            acc += counts[b];
        }
        let total = acc as usize;

        // Phase 3: write survivors.
        self.metrics().record_launch(n as u64);
        let mut out = vec![0u32; total];
        {
            let shared = SharedSlice::new(&mut out);
            let offsets_ref = &offsets;
            self.run(|| {
                (0..blocks).into_par_iter().for_each(|b| {
                    let start = b * chunk;
                    let end = usize::min(start + chunk, n);
                    let mut pos = offsets_ref[b] as usize;
                    for i in start..end {
                        if pred(i) {
                            // SAFETY: blocks own disjoint [offset, offset+count)
                            // output ranges by construction of the offsets.
                            unsafe { shared.write(pos, i as u32) };
                            pos += 1;
                        }
                    }
                });
            });
        }
        out
    }

    /// Keeps the elements of `input` whose *value* satisfies `pred`,
    /// preserving order.
    pub fn compact<T, F>(&self, input: &[T], pred: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(&T) -> bool + Sync,
    {
        let idx = self.compact_indices(input.len(), |i| pred(&input[i]));
        if idx.is_empty() {
            return Vec::new();
        }
        let mut out = vec![input[0]; idx.len()];
        self.gather(&mut out, &idx, input);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    #[test]
    fn keeps_evens_in_order() {
        let device = Device::new();
        let out = device.compact_indices(100_000, |i| i % 2 == 0);
        assert_eq!(out.len(), 50_000);
        for (j, &i) in out.iter().enumerate() {
            assert_eq!(i as usize, 2 * j);
        }
    }

    #[test]
    fn empty_input() {
        let device = Device::new();
        assert!(device.compact_indices(0, |_| true).is_empty());
    }

    #[test]
    fn nothing_survives() {
        let device = Device::new();
        assert!(device.compact_indices(50_000, |_| false).is_empty());
    }

    #[test]
    fn everything_survives() {
        let device = Device::new();
        let out = device.compact_indices(30_000, |_| true);
        assert_eq!(out.len(), 30_000);
        assert!(out.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn compact_values() {
        let device = Device::new();
        let input: Vec<u32> = (0..80_000).collect();
        let out = device.compact(&input, |&v| v % 1000 == 7);
        assert_eq!(out.len(), 80);
        assert_eq!(out[0], 7);
        assert_eq!(out[79], 79_007);
    }

    #[test]
    fn small_input_sequential_path() {
        let device = Device::new();
        let out = device.compact_indices(10, |i| i >= 5);
        assert_eq!(out, vec![5, 6, 7, 8, 9]);
    }
}
