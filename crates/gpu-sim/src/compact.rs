//! Stream compaction (filter): flag → scan → scatter.
//!
//! Used to build BFS frontiers and to separate tree from non-tree edges.
//! Block counts/offsets come from the device arena;
//! [`Device::compact_indices_pooled`] also pools the output so a hot loop
//! compacts with zero allocation at steady state.
//!
//! Like the scans, compaction dispatches on
//! [`DeviceConfig::scan_engine`](crate::DeviceConfig::scan_engine): the
//! lookback engine fuses count → offset-resolve → write into **one**
//! launch via the [`crate::lookback`] descriptor protocol (the survivor
//! counts are the scanned values), where the two-pass baseline keeps the
//! classic count launch + write launch. Predicate evaluations are modeled
//! as one 4-byte read each in the traffic plane.

use crate::arena::ArenaVec;
use crate::device::{Device, SharedSlice};
use crate::lookback::{Descriptors, ScanEngine};
use rayon::prelude::*;

impl Device {
    /// Returns, in ascending order, every index `i in 0..n` with `pred(i)`.
    ///
    /// Runs [`Device::compact_indices_pooled`] and copies the survivors out
    /// (the copy is a host-side transfer, not device traffic).
    pub fn compact_indices<F>(&self, n: usize, pred: F) -> Vec<u32>
    where
        F: Fn(usize) -> bool + Sync,
    {
        let out = self.compact_indices_pooled(n, pred);
        self.capture_host_read(&out[..]);
        out.to_vec()
    }

    /// [`Device::compact_indices`] with the output drawn from the device
    /// arena — the zero-allocation variant for hot loops.
    pub fn compact_indices_pooled<F>(&self, n: usize, pred: F) -> ArenaVec<'_, u32>
    where
        F: Fn(usize) -> bool + Sync,
    {
        self.metrics().record_primitive();
        if n == 0 {
            return self.alloc_pooled(0);
        }
        let out = {
            let _cap = self.cap_scope("compact");
            if n <= self.config().seq_threshold {
                self.metrics().record_launch(n as u64);
                self.cap_instant_launch(n as u64);
                let mut out = self.alloc_pooled::<u32>(n);
                let mut len = 0usize;
                for i in 0..n {
                    if pred(i) {
                        out[len] = i as u32;
                        len += 1;
                    }
                }
                out.truncate(len);
                self.metrics().record_traffic(4 * n as u64, 4 * len as u64);
                self.san_mark_written(&out[..]);
                out
            } else if self.config().scan_engine == ScanEngine::Lookback {
                self.compact_lookback(n, &pred)
            } else {
                let (offsets, total, chunk, blocks) = self.compact_offsets(n, &pred);
                let mut out = self.alloc_pooled::<u32>(total);
                self.compact_write(n, &pred, &offsets, chunk, blocks, &mut out);
                out
            }
        };
        // The survivor region only exists (at its final truncated length)
        // after the launches ran, so the write is attributed afterwards.
        self.cap_note_output(&out[..]);
        out
    }

    /// Single-launch compaction: each block stages its survivors in the
    /// tile plane while counting them, resolves its output offset through
    /// the lookback descriptors (an additive scan of the survivor counts),
    /// and writes its run — one predicate evaluation per element and one
    /// launch total. The output is carved at full `n` capacity and
    /// truncated to the survivor total the last descriptor publishes.
    fn compact_lookback<F>(&self, n: usize, pred: &F) -> ArenaVec<'_, u32>
    where
        F: Fn(usize) -> bool + Sync,
    {
        let chunk = self.grid_chunk_len(n);
        let blocks = n.div_ceil(chunk);
        let mut status_buf = self.alloc_pooled::<u32>(blocks);
        let mut value_buf = self.alloc_pooled::<u32>(2 * blocks);
        let (agg_buf, pfx_buf) = value_buf.split_at_mut(blocks);
        let mut stage = self.alloc_pooled::<u32>(n);
        let mut out = self.alloc_pooled::<u32>(n);

        self.metrics().record_launch(n as u64);
        self.cap_instant_launch(n as u64);
        self.metrics().record_traffic(4 * n as u64, 0);
        let total = {
            let desc = Descriptors::new(&mut status_buf, agg_buf, pfx_buf);
            let stage_shared = SharedSlice::new(&mut stage);
            let out_shared = SharedSlice::new(&mut out);
            self.schedule_blocks(blocks, |b| {
                let start = b * chunk;
                let end = usize::min(start + chunk, n);
                // SAFETY: each block owns the disjoint staging range
                // [start, end).
                let tile = unsafe {
                    std::slice::from_raw_parts_mut(stage_shared.as_ptr().add(start), end - start)
                };
                let mut count = 0usize;
                for i in start..end {
                    if pred(i) {
                        tile[count] = i as u32;
                        count += 1;
                    }
                }
                let exclusive = if b == 0 {
                    0
                } else {
                    desc.publish_aggregate(b, count as u32);
                    desc.lookback(b, &|a, b| a + b)
                };
                desc.publish_prefix(b, exclusive + count as u32);
                let dst = exclusive as usize;
                for (j, &v) in tile[..count].iter().enumerate() {
                    // SAFETY: blocks own disjoint output runs
                    // [exclusive, exclusive + count) by construction of
                    // the scanned offsets.
                    unsafe { out_shared.write_unchecked(dst + j, v) };
                }
            });
            desc.prefix_value(blocks - 1) as usize
        };
        out.truncate(total);
        self.metrics().record_traffic(0, 4 * total as u64);
        self.san_mark_written(&out[..]);
        out
    }

    /// Phases 1–2: per-block survivor counts scanned into block offsets.
    /// Returns `(offsets, total, chunk, blocks)`.
    fn compact_offsets<F>(&self, n: usize, pred: &F) -> (ArenaVec<'_, u32>, usize, usize, usize)
    where
        F: Fn(usize) -> bool + Sync,
    {
        let chunk = self.grid_chunk_len(n);
        let blocks = n.div_ceil(chunk);

        // Phase 1: count survivors per block.
        self.metrics().record_launch(n as u64);
        self.cap_instant_launch(n as u64);
        self.metrics().record_traffic(4 * n as u64, 0);
        let mut counts = self.alloc_pooled::<u32>(blocks);
        self.run(|| {
            counts.par_iter_mut().enumerate().for_each(|(b, count)| {
                let start = b * chunk;
                let end = usize::min(start + chunk, n);
                *count = (start..end).filter(|&i| pred(i)).count() as u32;
            });
        });

        // Phase 2: block offsets (tiny, sequential).
        let mut offsets = self.alloc_pooled::<u32>(blocks);
        let mut acc = 0u32;
        for b in 0..blocks {
            offsets[b] = acc;
            acc += counts[b];
        }
        (offsets, acc as usize, chunk, blocks)
    }

    /// Phase 3: write survivors into `out` (sized to the survivor total).
    fn compact_write<F>(
        &self,
        n: usize,
        pred: &F,
        offsets: &[u32],
        chunk: usize,
        blocks: usize,
        out: &mut [u32],
    ) where
        F: Fn(usize) -> bool + Sync,
    {
        self.metrics().record_launch(n as u64);
        self.cap_instant_launch(n as u64);
        self.metrics()
            .record_traffic(4 * n as u64, 4 * out.len() as u64);
        let shared = SharedSlice::new(out);
        self.run(|| {
            (0..blocks).into_par_iter().for_each(|b| {
                let start = b * chunk;
                let end = usize::min(start + chunk, n);
                let mut pos = offsets[b] as usize;
                for i in start..end {
                    if pred(i) {
                        // SAFETY: blocks own disjoint [offset, offset+count)
                        // output ranges by construction of the offsets.
                        unsafe { shared.write_unchecked(pos, i as u32) };
                        pos += 1;
                    }
                }
            });
        });
        self.san_mark_written(out);
    }

    /// Keeps the elements of `input` whose *value* satisfies `pred`,
    /// preserving order.
    pub fn compact<T, F>(&self, input: &[T], pred: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(&T) -> bool + Sync,
    {
        let idx = self.compact_indices_pooled(input.len(), |i| pred(&input[i]));
        if idx.is_empty() {
            return Vec::new();
        }
        let mut out = vec![input[0]; idx.len()];
        self.gather(&mut out, &idx, input);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    #[test]
    fn keeps_evens_in_order() {
        let device = Device::new();
        let out = device.compact_indices(100_000, |i| i % 2 == 0);
        assert_eq!(out.len(), 50_000);
        for (j, &i) in out.iter().enumerate() {
            assert_eq!(i as usize, 2 * j);
        }
    }

    #[test]
    fn empty_input() {
        let device = Device::new();
        assert!(device.compact_indices(0, |_| true).is_empty());
    }

    #[test]
    fn nothing_survives() {
        let device = Device::new();
        assert!(device.compact_indices(50_000, |_| false).is_empty());
    }

    #[test]
    fn everything_survives() {
        let device = Device::new();
        let out = device.compact_indices(30_000, |_| true);
        assert_eq!(out.len(), 30_000);
        assert!(out.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn compact_values() {
        let device = Device::new();
        let input: Vec<u32> = (0..80_000).collect();
        let out = device.compact(&input, |&v| v % 1000 == 7);
        assert_eq!(out.len(), 80);
        assert_eq!(out[0], 7);
        assert_eq!(out[79], 79_007);
    }

    #[test]
    fn small_input_sequential_path() {
        let device = Device::new();
        let out = device.compact_indices(10, |i| i >= 5);
        assert_eq!(out, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn pooled_matches_allocating() {
        let device = Device::new();
        for n in [0usize, 10, 5000, 120_000] {
            let expect = device.compact_indices(n, |i| i % 3 == 1);
            let got = device.compact_indices_pooled(n, |i| i % 3 == 1);
            assert_eq!(&*got, &expect[..], "n={n}");
        }
    }

    #[test]
    fn steady_state_pooled_compaction_allocates_nothing() {
        let device = Device::new();
        let run = || {
            let v = device.compact_indices_pooled(100_000, |i| i % 7 == 0);
            assert_eq!(v.len(), 100_000usize.div_ceil(7));
        };
        run();
        let before = device.metrics().snapshot();
        for _ in 0..4 {
            run();
        }
        let d = device.metrics().snapshot().since(&before);
        assert_eq!(d.bytes_allocated, 0);
    }
}
