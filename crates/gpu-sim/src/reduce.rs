//! Parallel reductions.

use crate::device::Device;
use rayon::prelude::*;

impl Device {
    /// Reduces `input` with an associative operator.
    pub fn reduce<T, F>(&self, input: &[T], identity: T, op: F) -> T
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        self.capture_read(input);
        self.map_reduce(input.len(), |i| input[i], identity, op)
    }

    /// Fused transform + reduce: reduces `gen(0) … gen(n-1)` without
    /// materializing the generated array. `gen` must be pure.
    pub fn map_reduce<T, G, F>(&self, n: usize, gen: G, identity: T, op: F) -> T
    where
        T: Copy + Send + Sync,
        G: Fn(usize) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        self.metrics().record_primitive();
        self.metrics().record_launch(n as u64);
        {
            let _cap = self.cap_scope("reduce");
            self.cap_instant_launch(n as u64);
        }
        self.metrics()
            .record_traffic((n * size_of::<T>()) as u64, 0);
        if n <= self.config().seq_threshold {
            let mut acc = identity;
            for i in 0..n {
                acc = op(acc, gen(i));
            }
            return acc;
        }
        let chunk = self.grid_chunk_len(n);
        let blocks = n.div_ceil(chunk);
        self.run(|| {
            (0..blocks)
                .into_par_iter()
                .map(|b| {
                    let start = b * chunk;
                    let end = usize::min(start + chunk, n);
                    let mut acc = identity;
                    for i in start..end {
                        acc = op(acc, gen(i));
                    }
                    acc
                })
                .reduce(|| identity, &op)
        })
    }

    /// Maximum of a `u64` slice (0 on empty input).
    pub fn reduce_max_u64(&self, input: &[u64]) -> u64 {
        self.reduce(input, 0u64, |a, b| a.max(b))
    }

    /// Maximum of a `u32` slice (0 on empty input).
    pub fn reduce_max_u32(&self, input: &[u32]) -> u32 {
        self.reduce(input, 0u32, |a, b| a.max(b))
    }

    /// Minimum of a `u32` slice (`u32::MAX` on empty input).
    pub fn reduce_min_u32(&self, input: &[u32]) -> u32 {
        self.reduce(input, u32::MAX, |a, b| a.min(b))
    }

    /// Sum of a `u64` slice.
    pub fn reduce_sum_u64(&self, input: &[u64]) -> u64 {
        self.reduce(input, 0u64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    #[test]
    fn sum_matches_reference() {
        let device = Device::new();
        let input: Vec<u64> = (0..123_456).collect();
        assert_eq!(device.reduce_sum_u64(&input), 123_456 * 123_455 / 2);
    }

    #[test]
    fn max_and_min() {
        let device = Device::new();
        let input: Vec<u32> = (0..100_000)
            .map(|i| (i * 2_654_435_761u64 % 1_000_003) as u32)
            .collect();
        let max = *input.iter().max().unwrap();
        let min = *input.iter().min().unwrap();
        assert_eq!(device.reduce_max_u32(&input), max);
        assert_eq!(device.reduce_min_u32(&input), min);
    }

    #[test]
    fn empty_reduce_yields_identity() {
        let device = Device::new();
        assert_eq!(device.reduce_sum_u64(&[]), 0);
        assert_eq!(device.reduce_min_u32(&[]), u32::MAX);
    }

    #[test]
    fn single_element_reduce() {
        let device = Device::new();
        assert_eq!(device.reduce_max_u64(&[9]), 9);
    }
}
