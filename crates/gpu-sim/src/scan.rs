//! Parallel prefix sums (the `scan` primitive).
//!
//! The paper's §2.2 optimization rests on the observation that on a GPU the
//! array scan primitive is much faster than list ranking (7–8× per \[64\]), so
//! an Euler tour should be list-ranked *once* and every subsequent statistic
//! computed by scans over the resulting array. This module provides the scan:
//! a classic three-phase blocked algorithm (per-block reduce, exclusive scan
//! of block sums, per-block downsweep) — the same structure as the
//! moderngpu/CUB scans the paper uses.
//!
//! All operators must be associative; they need not be commutative.

use crate::device::Device;
use rayon::prelude::*;

impl Device {
    /// Inclusive scan: `out[i] = input[0] ⊕ … ⊕ input[i]`.
    pub fn scan_inclusive<T, F>(&self, input: &[T], identity: T, op: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let mut out = vec![identity; input.len()];
        self.scan_into(input, &mut out, identity, &op, true);
        out
    }

    /// Exclusive scan: `out[i] = identity ⊕ input[0] ⊕ … ⊕ input[i-1]`.
    pub fn scan_exclusive<T, F>(&self, input: &[T], identity: T, op: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let mut out = vec![identity; input.len()];
        self.scan_into(input, &mut out, identity, &op, false);
        out
    }

    /// Exclusive scan that also returns the total reduction of the input —
    /// the shape needed by stream compaction.
    pub fn scan_exclusive_with_total<T, F>(&self, input: &[T], identity: T, op: F) -> (Vec<T>, T)
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let mut out = vec![identity; input.len()];
        let total = self.scan_into(input, &mut out, identity, &op, false);
        (out, total)
    }

    /// Writes an inclusive or exclusive scan of `input` into `out` and
    /// returns the total reduction.
    fn scan_into<T, F>(&self, input: &[T], out: &mut [T], identity: T, op: &F, inclusive: bool) -> T
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(input.len(), out.len(), "scan: input/output length mismatch");
        let n = input.len();
        self.metrics().record_primitive();
        if n == 0 {
            return identity;
        }
        if n <= self.config().seq_threshold {
            self.metrics().record_launch(n as u64);
            let mut acc = identity;
            for i in 0..n {
                if inclusive {
                    acc = op(acc, input[i]);
                    out[i] = acc;
                } else {
                    out[i] = acc;
                    acc = op(acc, input[i]);
                }
            }
            return acc;
        }

        // Shared grid sizing caps blocks at a few per pool worker, so the
        // sequential phase-2 scan of block sums stays negligible while the
        // real worker count stays saturated.
        let chunk = self.grid_chunk_len(n);
        let blocks = n.div_ceil(chunk);

        // Phase 1 (parallel): reduce each block.
        self.metrics().record_launch(n as u64);
        let mut block_sums = vec![identity; blocks];
        self.run(|| {
            block_sums.par_iter_mut().enumerate().for_each(|(b, sum)| {
                let start = b * chunk;
                let end = usize::min(start + chunk, n);
                let mut acc = identity;
                for v in &input[start..end] {
                    acc = op(acc, *v);
                }
                *sum = acc;
            });
        });

        // Phase 2 (sequential, tiny): exclusive scan of block sums.
        self.metrics().record_launch(blocks as u64);
        let mut acc = identity;
        let mut block_offsets = vec![identity; blocks];
        for b in 0..blocks {
            block_offsets[b] = acc;
            acc = op(acc, block_sums[b]);
        }
        let total = acc;

        // Phase 3 (parallel): downsweep each block from its offset.
        self.metrics().record_launch(n as u64);
        self.run(|| {
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(b, chunk_out)| {
                    let start = b * chunk;
                    let mut acc = block_offsets[b];
                    for (j, slot) in chunk_out.iter_mut().enumerate() {
                        let v = input[start + j];
                        if inclusive {
                            acc = op(acc, v);
                            *slot = acc;
                        } else {
                            *slot = acc;
                            acc = op(acc, v);
                        }
                    }
                });
        });
        total
    }

    /// Convenience additive inclusive scan on `u64`.
    pub fn add_scan_inclusive_u64(&self, input: &[u64]) -> Vec<u64> {
        self.scan_inclusive(input, 0u64, |a, b| a + b)
    }

    /// Convenience additive exclusive scan on `u64`.
    pub fn add_scan_exclusive_u64(&self, input: &[u64]) -> Vec<u64> {
        self.scan_exclusive(input, 0u64, |a, b| a + b)
    }

    /// Convenience additive inclusive scan on `i64` (used for ±1 level sums
    /// along Euler tours).
    pub fn add_scan_inclusive_i64(&self, input: &[i64]) -> Vec<i64> {
        self.scan_inclusive(input, 0i64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    fn reference_inclusive(input: &[u64]) -> Vec<u64> {
        let mut acc = 0;
        input
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect()
    }

    #[test]
    fn inclusive_matches_reference_small() {
        let device = Device::new();
        let input: Vec<u64> = (0..100).collect();
        assert_eq!(
            device.add_scan_inclusive_u64(&input),
            reference_inclusive(&input)
        );
    }

    #[test]
    fn inclusive_matches_reference_large() {
        let device = Device::new();
        let input: Vec<u64> = (0..200_000).map(|i| (i * 7 + 3) % 11).collect();
        assert_eq!(
            device.add_scan_inclusive_u64(&input),
            reference_inclusive(&input)
        );
    }

    #[test]
    fn exclusive_shifts_by_one() {
        let device = Device::new();
        let input: Vec<u64> = (1..=50_000).collect();
        let inc = device.add_scan_inclusive_u64(&input);
        let exc = device.add_scan_exclusive_u64(&input);
        assert_eq!(exc[0], 0);
        for i in 1..input.len() {
            assert_eq!(exc[i], inc[i - 1]);
        }
    }

    #[test]
    fn with_total_returns_sum() {
        let device = Device::new();
        let input: Vec<u64> = vec![5; 99_999];
        let (_, total) = device.scan_exclusive_with_total(&input, 0, |a, b| a + b);
        assert_eq!(total, 5 * 99_999);
    }

    #[test]
    fn empty_scan() {
        let device = Device::new();
        assert!(device.add_scan_inclusive_u64(&[]).is_empty());
        let (v, t) = device.scan_exclusive_with_total(&[], 0u64, |a, b| a + b);
        assert!(v.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn single_element() {
        let device = Device::new();
        assert_eq!(device.add_scan_inclusive_u64(&[42]), vec![42]);
        assert_eq!(device.add_scan_exclusive_u64(&[42]), vec![0]);
    }

    #[test]
    fn non_commutative_operator_max_then_concat_order() {
        // String-length-free associative but non-commutative op:
        // f((a1,b1),(a2,b2)) = (a1, b2) composed over pairs keeps first/last.
        let device = Device::new();
        let input: Vec<(u32, u32)> = (0..50_000).map(|i| (i, i)).collect();
        let scanned = device.scan_inclusive(&input, (u32::MAX, u32::MAX), |a, b| {
            let first = if a.0 == u32::MAX { b.0 } else { a.0 };
            (first, b.1)
        });
        // Inclusive scan with "keep first, take last" must yield (0, i).
        for (i, &(f, l)) in scanned.iter().enumerate() {
            assert_eq!(f, 0);
            assert_eq!(l, i as u32);
        }
    }

    #[test]
    fn signed_level_scan() {
        let device = Device::new();
        // +1/-1 pattern like Euler tour levels.
        let input: Vec<i64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 1 } else { -1 })
            .collect();
        let out = device.add_scan_inclusive_i64(&input);
        assert_eq!(out[0], 1);
        assert_eq!(out[1], 0);
        assert_eq!(*out.last().unwrap(), 0);
    }

    #[test]
    fn min_scan_with_custom_op() {
        let device = Device::new();
        let input: Vec<u32> = (0..30_000).map(|i| 30_000 - i).collect();
        let out = device.scan_inclusive(&input, u32::MAX, |a, b| a.min(b));
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 30_000 - i as u32);
        }
    }
}
