//! Parallel prefix sums (the `scan` primitive).
//!
//! The paper's §2.2 optimization rests on the observation that on a GPU the
//! array scan primitive is much faster than list ranking (7–8× per \[64\]), so
//! an Euler tour should be list-ranked *once* and every subsequent statistic
//! computed by scans over the resulting array. Two interchangeable cores
//! back every entry point, selected by [`DeviceConfig::scan_engine`]:
//!
//! * [`ScanEngine::Lookback`] (default) — the single-pass decoupled-lookback
//!   scan of [`crate::lookback`]: 1 launch, ~1 read + 1 write per element;
//! * [`ScanEngine::TwoPass`] — the classic three-phase blocked algorithm
//!   (per-block reduce, exclusive scan of block sums, per-block downsweep —
//!   the moderngpu/CUB structure the paper uses): 2 launches, ~2 reads + 1
//!   write per element. Kept as the A/B baseline and bit-identical oracle.
//!
//! All operators must be associative; they need not be commutative.
//!
//! Two families of entry points:
//!
//! * allocating (`scan_inclusive`, `scan_exclusive`, ...) — return a fresh
//!   `Vec`;
//! * zero-allocation (`scan_inclusive_into`, `scan_exclusive_into`,
//!   [`Device::map_scan_inclusive_into`], ...) — write into a caller
//!   buffer and draw the per-block scratch from the device arena, so
//!   repeated launches allocate nothing at steady state. The `map_scan`
//!   variants additionally **fuse** an elementwise transform into the scan
//!   (the generator runs inside the block passes instead of materializing
//!   an intermediate array — a launch and an n-sized buffer saved).
//!
//! [`DeviceConfig::scan_engine`]: crate::DeviceConfig::scan_engine
//! [`ScanEngine::Lookback`]: crate::ScanEngine::Lookback
//! [`ScanEngine::TwoPass`]: crate::ScanEngine::TwoPass

use crate::arena::ArenaPod;
use crate::device::Device;
use crate::lookback::ScanEngine;
use rayon::prelude::*;

impl Device {
    /// Inclusive scan: `out[i] = input[0] ⊕ … ⊕ input[i]`.
    pub fn scan_inclusive<T, F>(&self, input: &[T], identity: T, op: F) -> Vec<T>
    where
        T: ArenaPod,
        F: Fn(T, T) -> T + Sync,
    {
        let mut out = vec![identity; input.len()];
        self.capture_read(input);
        self.map_scan_into(input.len(), |i| input[i], &mut out, identity, &op, true);
        out
    }

    /// Exclusive scan: `out[i] = identity ⊕ input[0] ⊕ … ⊕ input[i-1]`.
    pub fn scan_exclusive<T, F>(&self, input: &[T], identity: T, op: F) -> Vec<T>
    where
        T: ArenaPod,
        F: Fn(T, T) -> T + Sync,
    {
        let mut out = vec![identity; input.len()];
        self.capture_read(input);
        self.map_scan_into(input.len(), |i| input[i], &mut out, identity, &op, false);
        out
    }

    /// Exclusive scan that also returns the total reduction of the input —
    /// the shape needed by stream compaction.
    pub fn scan_exclusive_with_total<T, F>(&self, input: &[T], identity: T, op: F) -> (Vec<T>, T)
    where
        T: ArenaPod,
        F: Fn(T, T) -> T + Sync,
    {
        let mut out = vec![identity; input.len()];
        self.capture_read(input);
        let total = self.map_scan_into(input.len(), |i| input[i], &mut out, identity, &op, false);
        (out, total)
    }

    /// Inclusive scan into a caller buffer; block scratch comes from the
    /// device arena (zero allocation at steady state). Returns the total.
    ///
    /// # Panics
    /// Panics if `input.len() != out.len()`.
    pub fn scan_inclusive_into<T, F>(&self, input: &[T], out: &mut [T], identity: T, op: F) -> T
    where
        T: ArenaPod,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(input.len(), out.len(), "scan: input/output length mismatch");
        self.capture_read(input);
        self.map_scan_into(input.len(), |i| input[i], out, identity, &op, true)
    }

    /// Exclusive scan into a caller buffer; block scratch comes from the
    /// device arena. Returns the total reduction.
    ///
    /// # Panics
    /// Panics if `input.len() != out.len()`.
    pub fn scan_exclusive_into<T, F>(&self, input: &[T], out: &mut [T], identity: T, op: F) -> T
    where
        T: ArenaPod,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(input.len(), out.len(), "scan: input/output length mismatch");
        self.capture_read(input);
        self.map_scan_into(input.len(), |i| input[i], out, identity, &op, false)
    }

    /// Fused transform + inclusive scan: `out[i] = gen(0) ⊕ … ⊕ gen(i)`
    /// without materializing the generated array. Returns the total.
    ///
    /// `gen` must be pure — the blocked scan evaluates it twice per index
    /// (once in the block-reduce pass, once in the downsweep).
    ///
    /// # Panics
    /// Panics if `out.len() != n`.
    pub fn map_scan_inclusive_into<T, G, F>(
        &self,
        n: usize,
        gen: G,
        out: &mut [T],
        identity: T,
        op: F,
    ) -> T
    where
        T: ArenaPod,
        G: Fn(usize) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(out.len(), n, "map_scan: output length mismatch");
        let _fused = self.cap_scope("").fused();
        self.map_scan_into(n, gen, out, identity, &op, true)
    }

    /// Fused transform + exclusive scan (see
    /// [`Device::map_scan_inclusive_into`]). Returns the total.
    ///
    /// # Panics
    /// Panics if `out.len() != n`.
    pub fn map_scan_exclusive_into<T, G, F>(
        &self,
        n: usize,
        gen: G,
        out: &mut [T],
        identity: T,
        op: F,
    ) -> T
    where
        T: ArenaPod,
        G: Fn(usize) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(out.len(), n, "map_scan: output length mismatch");
        let _fused = self.cap_scope("").fused();
        self.map_scan_into(n, gen, out, identity, &op, false)
    }

    /// Engine dispatch for every scan entry point: handles the empty and
    /// sequential small-`n` cases, then hands the parallel grid to the
    /// configured [`ScanEngine`]. Per-block scratch comes from the arena.
    fn map_scan_into<T, G, F>(
        &self,
        n: usize,
        gen: G,
        out: &mut [T],
        identity: T,
        op: &F,
        inclusive: bool,
    ) -> T
    where
        T: ArenaPod,
        G: Fn(usize) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(out.len(), n, "scan: output length mismatch");
        self.metrics().record_primitive();
        if n == 0 {
            return identity;
        }
        let _cap = self.cap_scope("scan").write(&*out);
        if n <= self.config().seq_threshold {
            // Same metric taxonomy as the parallel engines: one launch,
            // one read + one write per element.
            let bytes = (n * size_of::<T>()) as u64;
            self.metrics().record_launch(n as u64);
            self.cap_instant_launch(n as u64);
            self.metrics().record_traffic(bytes, bytes);
            let mut acc = identity;
            for (i, slot) in out.iter_mut().enumerate() {
                if inclusive {
                    acc = op(acc, gen(i));
                    *slot = acc;
                } else {
                    *slot = acc;
                    acc = op(acc, gen(i));
                }
            }
            self.san_mark_written(out);
            return acc;
        }
        match self.config().scan_engine {
            ScanEngine::Lookback => self.scan_lookback(n, &gen, out, identity, op, inclusive),
            ScanEngine::TwoPass => self.scan_two_pass(n, &gen, out, identity, op, inclusive),
        }
    }

    /// The classic three-phase blocked scan over a generated source: block
    /// reduce, (host-side) exclusive scan of block sums, downsweep. Two
    /// kernel launches; the input is generated twice, so ~2 reads + 1
    /// write per element. The phase-2 scan runs over O(blocks) grid
    /// bookkeeping on the host between the launches — like a launch's
    /// parameter setup, it counts as neither a launch nor traffic.
    fn scan_two_pass<T, G, F>(
        &self,
        n: usize,
        gen: &G,
        out: &mut [T],
        identity: T,
        op: &F,
        inclusive: bool,
    ) -> T
    where
        T: ArenaPod,
        G: Fn(usize) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        debug_assert!(n > 0);
        // Shared grid sizing caps blocks at a few per pool worker, so the
        // sequential phase-2 scan of block sums stays negligible while the
        // real worker count stays saturated.
        let chunk = self.grid_chunk_len(n);
        let blocks = n.div_ceil(chunk);
        let mut block_scratch = self.alloc_pooled::<T>(2 * blocks);
        let (block_sums, block_offsets) = block_scratch.split_at_mut(blocks);
        let bytes = (n * size_of::<T>()) as u64;

        // Phase 1 (parallel): reduce each block — the first input read.
        self.metrics().record_launch(n as u64);
        let cap1 = self.cap_begin_launch(n as u64);
        self.metrics().record_traffic(bytes, 0);
        self.run(|| {
            block_sums[..blocks]
                .par_iter_mut()
                .enumerate()
                .for_each(|(b, sum)| {
                    let start = b * chunk;
                    let end = usize::min(start + chunk, n);
                    let mut acc = identity;
                    for i in start..end {
                        acc = op(acc, gen(i));
                    }
                    *sum = acc;
                });
        });
        self.cap_end_launch(cap1);

        // Phase 2 (host, tiny): exclusive scan of the block sums.
        let mut acc = identity;
        for b in 0..blocks {
            block_offsets[b] = acc;
            acc = op(acc, block_sums[b]);
        }
        let total = acc;

        // Phase 3 (parallel): downsweep each block from its offset — the
        // second input read and the output write.
        self.metrics().record_launch(n as u64);
        let cap3 = self.cap_begin_launch(n as u64);
        self.metrics().record_traffic(bytes, bytes);
        let block_offsets = &block_offsets[..blocks];
        self.run(|| {
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(b, chunk_out)| {
                    let start = b * chunk;
                    let mut acc = block_offsets[b];
                    for (j, slot) in chunk_out.iter_mut().enumerate() {
                        let v = gen(start + j);
                        if inclusive {
                            acc = op(acc, v);
                            *slot = acc;
                        } else {
                            *slot = acc;
                            acc = op(acc, v);
                        }
                    }
                });
        });
        self.cap_end_launch(cap3);
        self.san_mark_written(out);
        total
    }

    /// Convenience additive inclusive scan on `u64` (pooled scratch).
    pub fn add_scan_inclusive_u64(&self, input: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; input.len()];
        self.scan_inclusive_into(input, &mut out, 0u64, |a, b| a + b);
        out
    }

    /// Convenience additive exclusive scan on `u64` (pooled scratch).
    pub fn add_scan_exclusive_u64(&self, input: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; input.len()];
        self.scan_exclusive_into(input, &mut out, 0u64, |a, b| a + b);
        out
    }

    /// Convenience additive inclusive scan on `i64` (used for ±1 level sums
    /// along Euler tours; pooled scratch).
    pub fn add_scan_inclusive_i64(&self, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; input.len()];
        self.scan_inclusive_into(input, &mut out, 0i64, |a, b| a + b);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    fn reference_inclusive(input: &[u64]) -> Vec<u64> {
        let mut acc = 0;
        input
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect()
    }

    #[test]
    fn inclusive_matches_reference_small() {
        let device = Device::new();
        let input: Vec<u64> = (0..100).collect();
        assert_eq!(
            device.add_scan_inclusive_u64(&input),
            reference_inclusive(&input)
        );
    }

    #[test]
    fn inclusive_matches_reference_large() {
        let device = Device::new();
        let input: Vec<u64> = (0..200_000).map(|i| (i * 7 + 3) % 11).collect();
        assert_eq!(
            device.add_scan_inclusive_u64(&input),
            reference_inclusive(&input)
        );
    }

    #[test]
    fn exclusive_shifts_by_one() {
        let device = Device::new();
        let input: Vec<u64> = (1..=50_000).collect();
        let inc = device.add_scan_inclusive_u64(&input);
        let exc = device.add_scan_exclusive_u64(&input);
        assert_eq!(exc[0], 0);
        for i in 1..input.len() {
            assert_eq!(exc[i], inc[i - 1]);
        }
    }

    #[test]
    fn with_total_returns_sum() {
        let device = Device::new();
        let input: Vec<u64> = vec![5; 99_999];
        let (_, total) = device.scan_exclusive_with_total(&input, 0, |a, b| a + b);
        assert_eq!(total, 5 * 99_999);
    }

    #[test]
    fn empty_scan() {
        let device = Device::new();
        assert!(device.add_scan_inclusive_u64(&[]).is_empty());
        let (v, t) = device.scan_exclusive_with_total(&[], 0u64, |a, b| a + b);
        assert!(v.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn single_element() {
        let device = Device::new();
        assert_eq!(device.add_scan_inclusive_u64(&[42]), vec![42]);
        assert_eq!(device.add_scan_exclusive_u64(&[42]), vec![0]);
    }

    #[test]
    fn non_commutative_operator_max_then_concat_order() {
        // String-length-free associative but non-commutative op:
        // f((a1,b1),(a2,b2)) = (a1, b2) composed over pairs keeps first/last.
        let device = Device::new();
        let input: Vec<(u32, u32)> = (0..50_000).map(|i| (i, i)).collect();
        let scanned = device.scan_inclusive(&input, (u32::MAX, u32::MAX), |a, b| {
            let first = if a.0 == u32::MAX { b.0 } else { a.0 };
            (first, b.1)
        });
        // Inclusive scan with "keep first, take last" must yield (0, i).
        for (i, &(f, l)) in scanned.iter().enumerate() {
            assert_eq!(f, 0);
            assert_eq!(l, i as u32);
        }
    }

    #[test]
    fn signed_level_scan() {
        let device = Device::new();
        // +1/-1 pattern like Euler tour levels.
        let input: Vec<i64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 1 } else { -1 })
            .collect();
        let out = device.add_scan_inclusive_i64(&input);
        assert_eq!(out[0], 1);
        assert_eq!(out[1], 0);
        assert_eq!(*out.last().unwrap(), 0);
    }

    #[test]
    fn into_variants_match_allocating() {
        let device = Device::new();
        let input: Vec<u64> = (0..150_000).map(|i| (i * 13 + 5) % 97).collect();
        let mut inc = vec![0u64; input.len()];
        let t_inc = device.scan_inclusive_into(&input, &mut inc, 0, |a, b| a + b);
        assert_eq!(inc, device.scan_inclusive(&input, 0, |a, b| a + b));
        let mut exc = vec![0u64; input.len()];
        let t_exc = device.scan_exclusive_into(&input, &mut exc, 0, |a, b| a + b);
        let (exc_ref, total_ref) = device.scan_exclusive_with_total(&input, 0, |a, b| a + b);
        assert_eq!(exc, exc_ref);
        assert_eq!(t_exc, total_ref);
        assert_eq!(t_inc, total_ref);
    }

    #[test]
    fn map_scan_fuses_transform() {
        let device = Device::new();
        let n = 120_000;
        // Reference: materialize then scan.
        let materialized: Vec<u64> = (0..n as u64).map(|i| i % 7 + 1).collect();
        let expect = device.add_scan_inclusive_u64(&materialized);
        let mut fused = vec![0u64; n];
        let total =
            device.map_scan_inclusive_into(n, |i| (i as u64) % 7 + 1, &mut fused, 0, |a, b| a + b);
        assert_eq!(fused, expect);
        assert_eq!(total, *expect.last().unwrap());

        let expect_exc = device.add_scan_exclusive_u64(&materialized);
        let mut fused_exc = vec![0u64; n];
        device.map_scan_exclusive_into(n, |i| (i as u64) % 7 + 1, &mut fused_exc, 0, |a, b| a + b);
        assert_eq!(fused_exc, expect_exc);
    }

    #[test]
    fn steady_state_scans_allocate_nothing() {
        let device = Device::new();
        let input: Vec<u64> = (0..200_000).collect();
        let mut out = vec![0u64; input.len()];
        // Warm the pool.
        device.scan_inclusive_into(&input, &mut out, 0, |a, b| a + b);
        let before = device.metrics().snapshot();
        for _ in 0..5 {
            device.scan_inclusive_into(&input, &mut out, 0, |a, b| a + b);
        }
        let d = device.metrics().snapshot().since(&before);
        assert_eq!(d.bytes_allocated, 0, "steady-state scan must not allocate");
        assert!(d.bytes_reused > 0);
    }

    #[test]
    fn min_scan_with_custom_op() {
        let device = Device::new();
        let input: Vec<u32> = (0..30_000).map(|i| 30_000 - i).collect();
        let out = device.scan_inclusive(&input, u32::MAX, |a, b| a.min(b));
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 30_000 - i as u32);
        }
    }
}
