//! The device memory plane: a size-bucketed buffer pool with RAII handles.
//!
//! The paper's pipelines are short chains of dense array primitives (scan,
//! sort, gather/scatter) launched over and over — list-ranking rounds,
//! CC hooking passes, inlabel construction. A real GPU runtime amortizes
//! device allocations across launches (CUB's `DeviceAllocator`, cudf's
//! pool resource); heap-allocating fresh `Vec`s per launch instead pays
//! allocator traffic and page-fault churn on exactly the hot paths the
//! reproduction wants to time. [`DeviceArena`] closes that gap: freed
//! buffers return to a per-size-class free list and the next launch of the
//! same shape reuses them, so steady-state iterations allocate nothing.
//!
//! Three layers:
//!
//! * [`DeviceArena`] — the pool itself, owned by a [`Device`]. Buffers are
//!   raw byte blocks in power-of-two size classes (min 64 B), aligned to
//!   64 B so every primitive element type fits. Thread-safe: each class is
//!   a mutex-protected free list.
//! * [`ScratchGuard`] — an RAII handle over one raw block; returns the
//!   capacity to the pool on drop.
//! * [`ArenaVec<T>`] — a typed, fixed-length view over a guard that derefs
//!   to `&[T]` / `&mut [T]`; the pooled replacement for a scratch `Vec<T>`.
//!
//! Element types implement the [`ArenaPod`] marker: plain-old-data for
//! which any sequence of initialized bytes is a valid value (`u32`, `i64`,
//! tuples of such, ...). Blocks are born zeroed (`alloc_zeroed`) and only
//! ever rewritten through such types, so a reused block always contains
//! valid — if unspecified — values and an [`ArenaVec`] can hand out `&mut
//! [T]` without an initialization pass. The one wrinkle is padding:
//! writing a padded tuple type de-initializes its padding bytes, so such
//! types declare [`ArenaPod::MAY_PAD`] and taint their block, which is
//! re-zeroed on its next acquisition to restore the every-byte-initialized
//! invariant. Callers that need defined contents use
//! [`Device::alloc_filled`] or [`Device::alloc_pooled_map`].
//!
//! Reuse is observable: [`crate::Metrics::bytes_allocated`] counts bytes
//! fetched freshly from the system allocator and
//! [`crate::Metrics::bytes_reused`] counts bytes served from the pool, so
//! tests (and the `mem_sweep` experiment) can assert that steady-state
//! iterations allocate zero scratch bytes. Setting
//! [`crate::DeviceConfig::pooling`] to `false` turns the plane off — every
//! acquire hits the system allocator and every release frees — which is
//! the A/B baseline the benchmarks compare against.

use crate::device::Device;
use parking_lot::Mutex;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::marker::PhantomData;
use std::ptr::NonNull;

/// Alignment of every pooled block; covers all primitive element types and
/// keeps blocks cache-line aligned.
pub const ARENA_ALIGN: usize = 64;

/// Smallest size class, `1 << MIN_CLASS_SHIFT` bytes.
const MIN_CLASS_SHIFT: u32 = 6;
/// Number of power-of-two size classes (64 B .. 32 TiB — the top classes
/// exist so the index math never overflows, not because they get used).
const NUM_CLASSES: usize = 40;

/// Marker for plain-old-data element types the arena may store.
///
/// # Safety
/// Implementors must guarantee that **any** sequence of initialized bytes
/// of `size_of::<T>()` length is a valid `T` (no niches: no `bool`, no
/// references, no enums with invalid discriminants), and that `T` needs
/// alignment at most [`ARENA_ALIGN`]. Additionally, [`ArenaPod::MAY_PAD`]
/// must be `true` whenever the layout can contain padding bytes: writing
/// such a `T` de-initializes its padding, so the arena re-zeroes blocks
/// that ever held a padded type before recycling them as another type —
/// an under-approximating `MAY_PAD` would let uninitialized bytes leak
/// into a later `&[U]` view (undefined behavior).
pub unsafe trait ArenaPod: Copy + Send + Sync + 'static {
    /// Whether the layout may contain padding bytes. `false` promises the
    /// value representation covers every byte, keeping recycled blocks
    /// fully initialized with no re-zeroing.
    const MAY_PAD: bool;
}

macro_rules! impl_pod {
    ($($t:ty),*) => { $(
        // SAFETY: primitive numeric types admit every bit pattern and
        // have no padding.
        unsafe impl ArenaPod for $t {
            const MAY_PAD: bool = false;
        }
    )* };
}
impl_pod!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

// SAFETY: tuples of pod types contain only pod fields; inter-field and
// trailing padding is declared via MAY_PAD, so blocks that held padded
// tuples are re-zeroed before cross-type reuse.
unsafe impl<A: ArenaPod, B: ArenaPod> ArenaPod for (A, B) {
    const MAY_PAD: bool =
        A::MAY_PAD || B::MAY_PAD || size_of::<(A, B)>() != size_of::<A>() + size_of::<B>();
}
// SAFETY: as for pairs.
unsafe impl<A: ArenaPod, B: ArenaPod, C: ArenaPod> ArenaPod for (A, B, C) {
    const MAY_PAD: bool = A::MAY_PAD
        || B::MAY_PAD
        || C::MAY_PAD
        || size_of::<(A, B, C)>() != size_of::<A>() + size_of::<B>() + size_of::<C>();
}
// SAFETY: arrays of pod types are pod; stride equals element size, so an
// array adds no padding beyond its element's.
unsafe impl<A: ArenaPod, const N: usize> ArenaPod for [A; N] {
    const MAY_PAD: bool = A::MAY_PAD;
}

/// One pooled allocation: pointer plus its size class in bytes, plus
/// whether a padded element type ever wrote through it (in which case its
/// padding bytes may be uninitialized and the block must be re-zeroed
/// before the next reuse).
struct RawBlock {
    ptr: NonNull<u8>,
    bytes: usize,
    tainted: bool,
}

// SAFETY: a RawBlock is exclusively owned wherever it sits (free list or
// guard); transferring it between threads transfers that ownership.
unsafe impl Send for RawBlock {}

impl RawBlock {
    fn layout(bytes: usize) -> Layout {
        Layout::from_size_align(bytes, ARENA_ALIGN).expect("arena block layout")
    }

    /// Allocates a zeroed block of exactly `bytes` (a class size), or
    /// `None` when the system allocator refuses.
    fn try_alloc(bytes: usize) -> Option<Self> {
        debug_assert!(bytes.is_power_of_two() && bytes >= (1 << MIN_CLASS_SHIFT));
        let layout = Self::layout(bytes);
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        Some(Self {
            ptr: NonNull::new(ptr)?,
            bytes,
            tainted: false,
        })
    }

    /// Restores the fully-initialized invariant after a padded element
    /// type may have de-initialized padding bytes.
    fn rezero(&mut self) {
        // SAFETY: the block owns `bytes` writable bytes.
        unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, self.bytes) };
        self.tainted = false;
    }

    fn free(self) {
        // SAFETY: allocated by `alloc` with the identical layout.
        unsafe { dealloc(self.ptr.as_ptr(), Self::layout(self.bytes)) };
    }
}

/// Why a fallible arena acquisition did not produce a block: either the
/// device's fault plane refused it (see [`crate::fault`]) or the system
/// allocator did. Surfaced by [`Device::try_scratch`]; the infallible
/// wrappers turn it into a panic that carries the same message, so a
/// `catch_unwind` isolation layer (the `emg serve` batcher) can contain
/// either cause without the process dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaError {
    /// The fault plane's seeded schedule refused this acquisition.
    Injected {
        /// The refused request size.
        bytes: usize,
    },
    /// The system allocator returned null for the block.
    Exhausted {
        /// The size class that could not be allocated.
        bytes: usize,
    },
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::Injected { bytes } => write!(
                f,
                "{} refusing {bytes} bytes",
                crate::fault::INJECTED_ALLOC_FAIL
            ),
            ArenaError::Exhausted { bytes } => {
                write!(f, "device arena exhausted: {bytes}-byte class unavailable")
            }
        }
    }
}

impl std::error::Error for ArenaError {}

/// Rounds a byte request up to its size class. Zero-byte requests share the
/// smallest class index but never allocate (see [`DeviceArena::try_acquire`]).
fn class_of(bytes: usize) -> (usize, usize) {
    let rounded = bytes.next_power_of_two().max(1 << MIN_CLASS_SHIFT);
    let idx = (rounded.trailing_zeros() - MIN_CLASS_SHIFT) as usize;
    assert!(
        idx < NUM_CLASSES,
        "arena request of {bytes} bytes too large"
    );
    (idx, rounded)
}

/// The size-bucketed, thread-safe buffer pool owned by a [`Device`].
///
/// See the [module docs](self) for the design; normal code allocates
/// through the `Device` wrappers ([`Device::alloc_pooled`],
/// [`Device::alloc_filled`], [`Device::alloc_pooled_map`],
/// [`Device::scratch`]) so that reuse is recorded in the device metrics.
pub struct DeviceArena {
    buckets: [Mutex<Vec<RawBlock>>; NUM_CLASSES],
    pooling: bool,
}

impl std::fmt::Debug for DeviceArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceArena")
            .field("pooling", &self.pooling)
            .field("pooled_bytes", &self.pooled_bytes())
            .finish()
    }
}

impl DeviceArena {
    /// Creates an empty pool. With `pooling == false` the arena degrades to
    /// a plain allocator: acquires always hit the system allocator and
    /// releases free immediately (the benchmark baseline).
    pub(crate) fn new(pooling: bool) -> Self {
        Self {
            buckets: std::array::from_fn(|_| Mutex::new(Vec::new())),
            pooling,
        }
    }

    /// Whether buffers are pooled (true unless the device was configured
    /// with [`crate::DeviceConfig::pooling`] `== false`).
    pub fn pooling(&self) -> bool {
        self.pooling
    }

    /// Acquires a block of at least `bytes`; returns the guard and whether
    /// the block was served from the pool (`true`) or freshly allocated. A
    /// refused system allocation surfaces as [`ArenaError::Exhausted`]
    /// rather than aborting; the primitives thread this path through
    /// [`Device::try_scratch`], where the fault plane can also inject
    /// failures.
    fn try_acquire(&self, bytes: usize) -> Result<(ScratchGuard<'_>, bool), ArenaError> {
        if bytes == 0 {
            return Ok((
                ScratchGuard {
                    arena: self,
                    block: None,
                    san: None,
                    rec: None,
                },
                false,
            ));
        }
        let (idx, rounded) = class_of(bytes);
        let recycled = if self.pooling {
            self.buckets[idx].lock().pop()
        } else {
            None
        };
        let reused = recycled.is_some();
        let mut block = match recycled {
            Some(b) => b,
            None => RawBlock::try_alloc(rounded).ok_or(ArenaError::Exhausted { bytes: rounded })?,
        };
        if block.tainted {
            // A padded element type wrote through this block: its padding
            // bytes may be uninitialized. Re-zero so every byte handed out
            // is initialized again (the module invariant).
            block.rezero();
        }
        debug_assert_eq!(block.bytes, rounded);
        Ok((
            ScratchGuard {
                arena: self,
                block: Some(block),
                san: None,
                rec: None,
            },
            reused,
        ))
    }

    /// Returns a block to its free list (or frees it when pooling is off).
    fn release(&self, block: RawBlock) {
        if !self.pooling {
            block.free();
            return;
        }
        let (idx, rounded) = class_of(block.bytes);
        debug_assert_eq!(rounded, block.bytes);
        self.buckets[idx].lock().push(block);
    }

    /// Total bytes currently cached in free lists (not handed out).
    pub fn pooled_bytes(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.lock().iter().map(|blk| blk.bytes).sum::<usize>())
            .sum()
    }

    /// Frees every cached block, returning the pool to empty. Outstanding
    /// guards are unaffected; their blocks re-enter the pool on drop.
    pub fn trim(&self) {
        for bucket in &self.buckets {
            let blocks = std::mem::take(&mut *bucket.lock());
            for b in blocks {
                b.free();
            }
        }
    }
}

impl Drop for DeviceArena {
    fn drop(&mut self) {
        self.trim();
    }
}

/// RAII handle over one pooled raw block; the capacity returns to the pool
/// when the guard drops. Obtained from [`Device::scratch`].
pub struct ScratchGuard<'a> {
    arena: &'a DeviceArena,
    block: Option<RawBlock>,
    /// Set when the owning device runs initcheck: the block's shadow
    /// bitmap is unregistered when the guard returns the block.
    san: Option<&'a crate::sanitize::Sanitizer>,
    /// Set when the owning device captures its launch graph: regions
    /// backed by the block are retired when the guard returns it, so a
    /// recycled block gets fresh region ids (pooling never aliases).
    rec: Option<&'a crate::launch_graph::Recorder>,
}

// SAFETY: a guard exclusively owns its block; moving the guard moves that
// ownership, and a shared `&ScratchGuard` exposes no mutation.
unsafe impl Send for ScratchGuard<'_> {}
// SAFETY: as above — shared references only read the block metadata.
unsafe impl Sync for ScratchGuard<'_> {}

impl<'a> ScratchGuard<'a> {
    /// Usable capacity in bytes (the size class, ≥ the requested size).
    pub fn capacity(&self) -> usize {
        self.block.as_ref().map_or(0, |b| b.bytes)
    }

    /// Base pointer of the block (dangling-but-aligned for empty guards).
    fn base(&self) -> *mut u8 {
        match &self.block {
            Some(b) => b.ptr.as_ptr(),
            None => std::ptr::without_provenance_mut(ARENA_ALIGN),
        }
    }

    /// Typed view: the first `len` elements of the block.
    ///
    /// Sound for any [`ArenaPod`] `T` because blocks are born zeroed,
    /// padded element types taint their block for re-zeroing on reuse
    /// (see [`ArenaPod::MAY_PAD`]), and any initialized bit pattern is a
    /// valid `T`.
    fn typed<T: ArenaPod>(mut self, len: usize) -> ArenaVec<'a, T> {
        debug_assert!(len.checked_mul(size_of::<T>()).unwrap() <= self.capacity() || len == 0);
        const {
            assert!(align_of::<T>() <= ARENA_ALIGN, "element over-aligned");
        }
        if T::MAY_PAD {
            if let Some(block) = &mut self.block {
                block.tainted = true;
            }
        }
        ArenaVec {
            guard: self,
            len,
            _marker: PhantomData,
        }
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(block) = self.block.take() {
            if let Some(san) = self.san {
                san.unregister_shadow(block.ptr.as_ptr() as usize);
            }
            if let Some(rec) = self.rec {
                rec.arena_release(block.ptr.as_ptr() as usize);
            }
            self.arena.release(block);
        }
    }
}

/// A typed, fixed-length pooled buffer: the drop-in replacement for a
/// scratch `Vec<T>`. Derefs to `&[T]` / `&mut [T]`; contents are valid but
/// **unspecified** at birth unless allocated through [`Device::alloc_filled`]
/// or [`Device::alloc_pooled_map`]. The capacity returns to the device pool
/// on drop.
pub struct ArenaVec<'a, T: ArenaPod> {
    guard: ScratchGuard<'a>,
    len: usize,
    _marker: PhantomData<T>,
}

// SAFETY: semantically a `Vec<T>` — exclusive ownership of the buffer;
// `T: ArenaPod` implies `T: Send + Sync`.
unsafe impl<T: ArenaPod> Send for ArenaVec<'_, T> {}
// SAFETY: `&ArenaVec<T>` only permits `&[T]` access.
unsafe impl<T: ArenaPod> Sync for ArenaVec<'_, T> {}

impl<T: ArenaPod> std::ops::Deref for ArenaVec<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // SAFETY: the block holds ≥ len initialized pod elements (module
        // invariant: blocks are zeroed at birth, written only as pods).
        unsafe { std::slice::from_raw_parts(self.guard.base().cast::<T>(), self.len) }
    }
}

impl<T: ArenaPod> std::ops::DerefMut for ArenaVec<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as for Deref; the guard is exclusively owned.
        unsafe { std::slice::from_raw_parts_mut(self.guard.base().cast::<T>(), self.len) }
    }
}

impl<T: ArenaPod> AsRef<[T]> for ArenaVec<'_, T> {
    fn as_ref(&self) -> &[T] {
        self
    }
}

impl<T: ArenaPod + std::fmt::Debug> std::fmt::Debug for ArenaVec<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: ArenaPod> ArenaVec<'_, T> {
    /// Number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Shortens the view to `new_len` elements (no effect on capacity).
    ///
    /// # Panics
    /// Panics if `new_len > len`.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(new_len <= self.len, "ArenaVec::truncate beyond length");
        self.len = new_len;
    }

    /// Copies the contents into a plain `Vec` (for results that must
    /// outlive the device borrow).
    pub fn to_vec(&self) -> Vec<T> {
        self.as_ref().to_vec()
    }
}

impl Device {
    /// The device's buffer pool.
    pub fn arena(&self) -> &DeviceArena {
        self.arena_ref()
    }

    /// Acquires raw pooled scratch of at least `bytes`, recording the
    /// acquisition in the device metrics (`bytes_allocated` for fresh
    /// blocks, `bytes_reused` for pool hits).
    ///
    /// Under initcheck ([`crate::SanitizeMode`]) the block — fresh *or*
    /// recycled — is registered with an all-uninitialized shadow bitmap:
    /// reading stale contents of a reused block through a tracked view is
    /// exactly as much a finding as reading a fresh allocation.
    pub fn scratch(&self, bytes: usize) -> ScratchGuard<'_> {
        // An injected or genuine failure surfaces as a panic carrying the
        // ArenaError message, so an isolation layer (`catch_unwind` in the
        // serve batcher) can contain it; before the fallible path existed
        // a refused system allocation aborted the process instead.
        self.try_scratch(bytes)
            .unwrap_or_else(|e| panic!("device scratch of {bytes} bytes failed: {e}"))
    }

    /// The fallible twin of [`Device::scratch`]: every allocating
    /// primitive routes through here, so both injected allocation faults
    /// ([`crate::fault`], [`ArenaError::Injected`]) and a refusing system
    /// allocator ([`ArenaError::Exhausted`]) surface as values on this
    /// path — and as marked panics on the infallible wrappers above it.
    ///
    /// # Errors
    /// `ArenaError::Injected` when the device's fault plane refuses this
    /// acquisition, `ArenaError::Exhausted` when the allocator does.
    pub fn try_scratch(&self, bytes: usize) -> Result<ScratchGuard<'_>, ArenaError> {
        if bytes > 0 && self.fault_alloc() {
            return Err(ArenaError::Injected { bytes });
        }
        let (mut guard, reused) = self.arena_ref().try_acquire(bytes)?;
        self.metrics().record_arena(guard.capacity() as u64, reused);
        if let Some(san) = self.sanitizer() {
            if san.mode().initcheck() && guard.capacity() > 0 {
                san.register_shadow(guard.base() as usize, guard.capacity());
                guard.san = Some(san);
            }
        }
        if let Some(rec) = self.recorder() {
            if guard.capacity() > 0 {
                rec.arena_acquire(guard.base() as usize, guard.capacity());
                guard.rec = Some(rec);
            }
        }
        Ok(guard)
    }

    /// Allocates a pooled buffer of `len` elements with valid but
    /// **unspecified** contents — for outputs every slot of which the next
    /// kernel overwrites. Use [`Device::alloc_filled`] when initial values
    /// matter.
    pub fn alloc_pooled<T: ArenaPod>(&self, len: usize) -> ArenaVec<'_, T> {
        let bytes = len
            .checked_mul(size_of::<T>())
            .expect("arena allocation overflows");
        self.scratch(bytes).typed(len)
    }

    /// Allocates a pooled buffer of `len` copies of `value` (a broadcast
    /// kernel over a fresh pooled buffer).
    pub fn alloc_filled<T: ArenaPod>(&self, len: usize, value: T) -> ArenaVec<'_, T> {
        let mut v = self.alloc_pooled(len);
        self.fill(&mut v, value);
        v
    }

    /// Fused allocation + map: a pooled buffer with `out[i] = f(i)`, one
    /// kernel launch, no initialization pass.
    pub fn alloc_pooled_map<T: ArenaPod, F>(&self, len: usize, f: F) -> ArenaVec<'_, T>
    where
        F: Fn(usize) -> T + Sync,
    {
        let mut v = self.alloc_pooled(len);
        self.map(&mut v, f);
        v
    }

    /// Pooled copy of a slice (a device-to-device memcpy).
    pub fn alloc_copied<T: ArenaPod>(&self, src: &[T]) -> ArenaVec<'_, T> {
        let mut v = self.alloc_pooled(src.len());
        v.copy_from_slice(src);
        self.san_mark_written(&v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    #[test]
    fn injected_alloc_failures_surface_on_the_fallible_path() {
        let device = Device::with_config(DeviceConfig {
            faults: "alloc_fail:after=0".parse().unwrap(),
            ..Default::default()
        });
        // Every acquisition is refused: the fallible path returns the
        // injected error...
        assert!(matches!(
            device.try_scratch(64),
            Err(ArenaError::Injected { bytes: 64 })
        ));
        // ...and the infallible wrapper panics carrying the marker, so an
        // isolation layer can contain it.
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = device.scratch(64);
        }))
        .unwrap_err();
        let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(crate::fault::INJECTED_ALLOC_FAIL), "{msg:?}");
        // Zero-byte acquisitions never allocate, so they never fault.
        assert!(device.try_scratch(0).is_ok());
        // Paused, the same device allocates normally.
        let _quiet = device.pause_faults();
        assert!(device.try_scratch(64).is_ok());
        assert!(device.metrics().snapshot().faults_injected >= 2);
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_of(1), (0, 64));
        assert_eq!(class_of(64), (0, 64));
        assert_eq!(class_of(65), (1, 128));
        assert_eq!(class_of(4096), (6, 4096));
    }

    #[test]
    fn reuse_hits_the_pool() {
        let device = Device::new();
        let before = device.metrics().snapshot();
        {
            let _a = device.alloc_pooled::<u64>(10_000);
        }
        let mid = device.metrics().snapshot().since(&before);
        assert!(mid.bytes_allocated >= 80_000);
        assert_eq!(mid.bytes_reused, 0);
        {
            let _b = device.alloc_pooled::<u64>(10_000);
        }
        let after = device.metrics().snapshot().since(&before);
        assert_eq!(
            after.bytes_allocated, mid.bytes_allocated,
            "second acquisition must not allocate"
        );
        assert_eq!(after.bytes_reused, mid.bytes_allocated);
    }

    #[test]
    fn different_types_share_classes() {
        let device = Device::new();
        {
            let _a = device.alloc_pooled::<u64>(1000);
        }
        let before = device.metrics().snapshot();
        {
            // Same byte size, different element type: must reuse.
            let _b = device.alloc_pooled::<u32>(2000);
        }
        let d = device.metrics().snapshot().since(&before);
        assert_eq!(d.bytes_allocated, 0);
        assert!(d.bytes_reused > 0);
    }

    #[test]
    fn filled_and_map_contents() {
        let device = Device::new();
        let f = device.alloc_filled(5000, 7u32);
        assert!(f.iter().all(|&x| x == 7));
        drop(f);
        // The reused block held 7s; the map must fully overwrite.
        let m = device.alloc_pooled_map(5000, |i| i as u32);
        for (i, &v) in m.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
        let c = device.alloc_copied(&[3u32, 1, 4]);
        assert_eq!(&*c, &[3, 1, 4]);
    }

    #[test]
    fn padded_tuples_taint_and_rezero_on_reuse() {
        // (u32, u64) has 4 interior padding bytes: writing it may leave
        // those bytes uninitialized, so the block must come back zeroed.
        const {
            assert!(<(u32, u64)>::MAY_PAD);
            assert!(!<(u32, u32)>::MAY_PAD);
        }
        let device = Device::new();
        let n = 1000;
        {
            let mut padded = device.alloc_pooled::<(u32, u64)>(n);
            for (i, slot) in padded.iter_mut().enumerate() {
                *slot = (i as u32, u64::MAX);
            }
        }
        // Same size class, different type: the recycled block must be
        // re-zeroed, not expose the tuple bytes.
        let reused = device.alloc_pooled::<u32>(4 * n);
        assert!(
            reused.iter().all(|&b| b == 0),
            "tainted block must be re-zeroed before cross-type reuse"
        );
        // Unpadded recycling keeps contents (and skips the zeroing).
        {
            let _unpadded = device.alloc_filled(4 * n, 7u32);
        }
        let reused = device.alloc_pooled::<u32>(4 * n);
        assert!(reused.iter().all(|&b| b == 7));
    }

    #[test]
    fn zero_len_never_allocates() {
        let device = Device::new();
        let before = device.metrics().snapshot();
        let v = device.alloc_pooled::<u64>(0);
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        let d = device.metrics().snapshot().since(&before);
        assert_eq!(d.bytes_allocated + d.bytes_reused, 0);
    }

    #[test]
    fn trim_empties_the_pool() {
        let device = Device::new();
        {
            let _a = device.alloc_pooled::<u8>(1 << 20);
        }
        assert!(device.arena().pooled_bytes() >= 1 << 20);
        device.arena().trim();
        assert_eq!(device.arena().pooled_bytes(), 0);
    }

    #[test]
    fn pooling_off_always_allocates_fresh() {
        let device = Device::with_config(DeviceConfig {
            pooling: false,
            ..Default::default()
        });
        assert!(!device.arena().pooling());
        for _ in 0..3 {
            let _a = device.alloc_pooled::<u64>(4096);
        }
        assert_eq!(device.arena().pooled_bytes(), 0);
        let s = device.metrics().snapshot();
        assert_eq!(s.bytes_reused, 0);
        assert!(s.bytes_allocated >= 3 * 4096 * 8);
    }

    #[test]
    fn truncate_shortens_view() {
        let device = Device::new();
        let mut v = device.alloc_pooled_map(100, |i| i as u32);
        v.truncate(10);
        assert_eq!(v.len(), 10);
        assert_eq!(v[9], 9);
    }

    #[test]
    #[should_panic(expected = "truncate beyond length")]
    fn truncate_rejects_growth() {
        let device = Device::new();
        let mut v = device.alloc_pooled::<u32>(4);
        v.truncate(5);
    }

    #[test]
    fn concurrent_acquires_are_safe() {
        let device = Device::new();
        // Warm the pool, then hammer it from several host threads at once.
        for _ in 0..4 {
            let _ = device.alloc_pooled::<u64>(10_000);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let device = &device;
                s.spawn(move || {
                    for round in 0..50 {
                        let v = device.alloc_filled(3_000, t * 1000 + round);
                        assert!(v.iter().all(|&x| x == t * 1000 + round));
                    }
                });
            }
        });
    }
}
