//! Central registry for the `EMG_*` environment knobs.
//!
//! Every opt-in plane of the simulated device — and every other `EMG_*`
//! knob the workspace reads, such as the query server's batching knobs —
//! is switched by one environment variable; this module is the single
//! place that knows which variables exist and how their values parse.
//! The README's consolidated env-var table is generated from [`KNOBS`]
//! and `xtask lint` rule 9 fails if the two drift apart. The shared
//! contract:
//!
//! * **unset ⇒ default** — an absent variable always selects the knob's
//!   documented default (off / lookback / no recording);
//! * **panic on typo** — a *present but unparsable* value panics instead
//!   of silently selecting a default. A misspelled mode in a CI matrix or
//!   benchmark wrapper must never quietly disable the checks it meant to
//!   enable.
//!
//! New planes must register here (name in [`KNOBS`], parse behavior in
//! [`parse_knob`]) — the `knob_registry_is_closed` unit test enumerates
//! the registry so a knob added elsewhere fails the build's test run.

use crate::launch_graph::CaptureMode;
use crate::lookback::ScanEngine;
use crate::sanitize::SanitizeMode;
use std::str::FromStr;

/// Sanitizer plane selector; see [`crate::sanitize`].
pub const EMG_SANITIZE: &str = "EMG_SANITIZE";
/// Prefix-sum core selector; see [`crate::lookback`].
pub const EMG_SCAN_ENGINE: &str = "EMG_SCAN_ENGINE";
/// Bench JSONL sink path; read by the benchmark harness (a free-form
/// path, so any non-empty value "parses").
pub const EMG_BENCH_JSON: &str = "EMG_BENCH_JSON";
/// Launch-graph capture plane selector; see [`crate::launch_graph`].
pub const EMG_CAPTURE: &str = "EMG_CAPTURE";
/// Query-server batch-size cap: the coalescing queue flushes a batch to
/// the device once this many queries are pending (a positive integer;
/// read by the `emg-server` crate, registered here so every `EMG_*` knob
/// shares one contract and one documentation table).
pub const EMG_SERVE_BATCH: &str = "EMG_SERVE_BATCH";
/// Query-server flush deadline in microseconds: a queued query waits at
/// most this long for co-batched company before the batch is flushed to
/// the device anyway (a positive integer; read by the `emg-server`
/// crate).
pub const EMG_SERVE_DEADLINE_US: &str = "EMG_SERVE_DEADLINE_US";
/// Deterministic fault-injection spec; see [`crate::fault`]. A
/// comma-separated clause list such as
/// `launch_panic:p=0.01:seed=42,alloc_fail:after=100:every=37,delay:us=500`;
/// unset, empty, or `off` injects nothing.
pub const EMG_FAULT: &str = "EMG_FAULT";
/// Query-server idle-session reaper: a connected session that sends no
/// frame for this many milliseconds is closed (a positive integer; read
/// by the `emg-server` crate — the slow-loris / abandoned-connection
/// defense).
pub const EMG_SERVE_IDLE_MS: &str = "EMG_SERVE_IDLE_MS";
/// Query-server per-frame I/O deadline in milliseconds: once a frame has
/// started arriving, the whole frame (and every response write) must
/// complete within this budget or the session is closed (a positive
/// integer; read by the `emg-server` crate).
pub const EMG_SERVE_IO_TIMEOUT_MS: &str = "EMG_SERVE_IO_TIMEOUT_MS";
/// Query-server admission-control bound: the batcher accepts at most this
/// many pending query pairs; past it, new requests are refused with
/// `Overloaded` and a retry hint instead of growing the queue without
/// bound (a positive integer; read by the `emg-server` crate).
pub const EMG_SERVE_QUEUE: &str = "EMG_SERVE_QUEUE";

/// Every `EMG_*` knob the device stack reads, with a one-line summary.
/// Keep in sync with [`parse_knob`] (enforced by the unit test below).
pub const KNOBS: &[(&str, &str)] = &[
    (
        EMG_SANITIZE,
        "sanitizer checks: off|memcheck|initcheck|racecheck|full",
    ),
    (EMG_SCAN_ENGINE, "prefix-sum core: lookback|two_pass"),
    (EMG_BENCH_JSON, "path receiving benchmark JSONL records"),
    (EMG_CAPTURE, "launch-graph capture: off|on"),
    (
        EMG_SERVE_BATCH,
        "emg serve: flush a query batch at this many pending queries",
    ),
    (
        EMG_SERVE_DEADLINE_US,
        "emg serve: flush a query batch after this many microseconds",
    ),
    (
        EMG_FAULT,
        "fault injection: launch_panic:p=..:seed=..,alloc_fail:after=..:every=..,delay:us=..",
    ),
    (
        EMG_SERVE_IDLE_MS,
        "emg serve: close a session idle for this many milliseconds",
    ),
    (
        EMG_SERVE_IO_TIMEOUT_MS,
        "emg serve: per-frame read/write deadline in milliseconds",
    ),
    (
        EMG_SERVE_QUEUE,
        "emg serve: refuse (Overloaded) past this many pending query pairs",
    ),
];

/// Reads knob `var` as a `T`, applying the shared contract: unset (or,
/// for the enum knobs, empty) yields `T::default()`, an unparsable value
/// panics naming the variable.
///
/// # Panics
/// Panics when the variable is set to a value `T::from_str` rejects.
pub(crate) fn parse_env<T>(var: &str) -> T
where
    T: FromStr<Err = String> + Default,
{
    match std::env::var(var) {
        Err(_) => T::default(),
        Ok(v) => v.parse().unwrap_or_else(|e: String| panic!("{var}: {e}")),
    }
}

/// Validates `value` as a setting for knob `var` (the panic-on-typo core,
/// exposed without touching the process environment so tests can probe
/// every knob without races on `std::env`). Returns a normalized
/// description of what the value selects.
pub fn parse_knob(var: &str, value: &str) -> Result<String, String> {
    match var {
        EMG_SANITIZE => SanitizeMode::from_str(value).map(|m| format!("{m:?}")),
        EMG_SCAN_ENGINE => ScanEngine::from_str(value).map(|m| format!("{m:?}")),
        EMG_CAPTURE => CaptureMode::from_str(value).map(|m| format!("{m:?}")),
        EMG_BENCH_JSON => {
            if value.is_empty() {
                Err("empty path".to_string())
            } else {
                Ok(format!("jsonl sink {value:?}"))
            }
        }
        EMG_SERVE_BATCH
        | EMG_SERVE_DEADLINE_US
        | EMG_SERVE_IDLE_MS
        | EMG_SERVE_IO_TIMEOUT_MS
        | EMG_SERVE_QUEUE => match value.trim().parse::<u64>() {
            Ok(v) if v > 0 => Ok(format!("{var}={v}")),
            _ => Err(format!("expected a positive integer, got {value:?}")),
        },
        EMG_FAULT => crate::fault::FaultConfig::from_str(value).map(|c| format!("faults {c}")),
        other => Err(format!("unknown EMG knob {other:?}")),
    }
}

/// Reads a positive-integer knob (the `EMG_SERVE_*` family): unset or
/// empty yields `default`, anything else must parse as a positive
/// integer.
///
/// # Panics
/// Panics when the variable is set to anything but a positive integer —
/// the registry's panic-on-typo contract.
pub fn parse_positive_knob(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Err(_) => default,
        Ok(v) if v.is_empty() => default,
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(parsed) if parsed > 0 => parsed,
            _ => panic!("{var}: expected a positive integer, got {v:?}"),
        },
    }
}

/// The benchmark JSONL sink path (`EMG_BENCH_JSON`), if recording is
/// enabled. Centralized here so the bench harness shares the registry.
pub fn bench_json_path() -> Option<std::path::PathBuf> {
    std::env::var_os(EMG_BENCH_JSON)
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is closed: every knob in [`KNOBS`] parses through
    /// [`parse_knob`], accepts its documented defaults, and rejects typos.
    #[test]
    fn knob_registry_is_closed() {
        assert_eq!(KNOBS.len(), 10, "new knob? register it in env.rs");
        for (var, _help) in KNOBS {
            // A typo must be a hard error for every enum knob; the one
            // free-form knob (a path) instead rejects the empty string.
            let probe = if *var == EMG_BENCH_JSON {
                ""
            } else {
                "definitely-a-typo{}"
            };
            assert!(
                parse_knob(var, probe).is_err(),
                "{var}: bad values must not parse"
            );
        }
        // And an unregistered knob name is itself rejected.
        assert!(parse_knob("EMG_NOT_A_KNOB", "on").is_err());
    }

    #[test]
    fn documented_values_parse() {
        for v in [
            "off",
            "memcheck",
            "initcheck",
            "racecheck",
            "full",
            "1",
            "0",
        ] {
            parse_knob(EMG_SANITIZE, v).unwrap();
        }
        for v in ["lookback", "two_pass", "twopass", "two-pass", ""] {
            parse_knob(EMG_SCAN_ENGINE, v).unwrap();
        }
        for v in ["off", "on", "capture", "0", "1", ""] {
            parse_knob(EMG_CAPTURE, v).unwrap();
        }
        parse_knob(EMG_BENCH_JSON, "/tmp/bench.jsonl").unwrap();
        assert!(parse_knob(EMG_BENCH_JSON, "").is_err());
        for v in ["1", "64", "4096"] {
            parse_knob(EMG_SERVE_BATCH, v).unwrap();
            parse_knob(EMG_SERVE_DEADLINE_US, v).unwrap();
            parse_knob(EMG_SERVE_IDLE_MS, v).unwrap();
            parse_knob(EMG_SERVE_IO_TIMEOUT_MS, v).unwrap();
            parse_knob(EMG_SERVE_QUEUE, v).unwrap();
        }
        for v in ["0", "-3", "lots", "1.5"] {
            assert!(parse_knob(EMG_SERVE_BATCH, v).is_err(), "{v:?}");
            assert!(parse_knob(EMG_SERVE_DEADLINE_US, v).is_err(), "{v:?}");
            assert!(parse_knob(EMG_SERVE_QUEUE, v).is_err(), "{v:?}");
        }
        for v in [
            "",
            "off",
            "launch_panic:p=0.01:seed=42,alloc_fail:after=100,delay:us=500",
        ] {
            parse_knob(EMG_FAULT, v).unwrap();
        }
        assert!(parse_knob(EMG_FAULT, "definitely-a-typo{}").is_err());
    }

    #[test]
    fn case_and_whitespace_insensitive_enums() {
        parse_knob(EMG_SANITIZE, " Full ").unwrap();
        parse_knob(EMG_CAPTURE, "ON").unwrap();
        parse_knob(EMG_SCAN_ENGINE, "LookBack").unwrap();
    }
}
