//! Load-balanced search and vectorized sorted search — the moderngpu
//! primitives behind even edge-parallel iteration.
//!
//! Given a CSR-style `offsets` array (the exclusive prefix sum of segment
//! sizes), *load-balanced search* computes, for every flat work item
//! `i in 0..total`, the segment it belongs to. This turns "one thread per
//! segment" kernels — which stall on skewed segment sizes, the classic GPU
//! problem with power-law degree distributions — into perfectly balanced
//! "one thread per item" kernels. moderngpu builds its `interval_expand`,
//! `interval_move` and relational join primitives on it; here it also backs
//! the edge-balanced BFS variant in the `bridges` crate.
//!
//! The implementation is the linear-work co-iteration: each output tile
//! locates its starting segment with one binary search, then walks items
//! and segment boundaries together — O(total + segments) work across
//! O(total / tile) independent tiles.

use crate::device::{Device, SharedSlice};

/// Index of the last offset `<= item`, i.e. the segment containing `item`.
///
/// `offsets` must be non-decreasing with `offsets[0] == 0`. Empty segments
/// are skipped (an item never lands in a zero-length segment).
fn segment_of(offsets: &[u32], item: u32) -> usize {
    debug_assert!(!offsets.is_empty());
    // partition_point returns the first index whose offset exceeds item;
    // the containing segment starts one before it.
    offsets.partition_point(|&o| o <= item) - 1
}

impl Device {
    /// Load-balanced search: maps every work item to its segment.
    ///
    /// `offsets` has one entry per segment plus a final total (CSR row
    /// pointers); the result has length `offsets[last]` and `result[i]` is
    /// the segment index `s` with `offsets[s] <= i < offsets[s + 1]`.
    /// Empty segments produce no items.
    ///
    /// # Panics
    /// Panics if `offsets` is empty, does not start at zero, or decreases.
    pub fn load_balanced_search(&self, offsets: &[u32]) -> Vec<u32> {
        assert!(!offsets.is_empty(), "lbs: offsets must not be empty");
        assert_eq!(offsets[0], 0, "lbs: offsets must start at 0");
        debug_assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "lbs: offsets must be non-decreasing"
        );
        let total = *offsets.last().unwrap() as usize;
        let num_segments = offsets.len() - 1;
        let mut out = vec![0u32; total];
        if total == 0 {
            return out;
        }
        let tile = self.config().block_size.max(1);
        let tiles = total.div_ceil(tile);
        let _cap = self.cap_scope("lbs").read(offsets).write(&out[..]);
        let shared = SharedSlice::new(&mut out);
        self.for_each(tiles, |t| {
            let lo = t * tile;
            let hi = usize::min(lo + tile, total);
            // One binary search per tile, then co-iterate.
            let mut seg = segment_of(offsets, lo as u32);
            for i in lo..hi {
                while offsets[seg + 1] as usize <= i {
                    seg += 1;
                    debug_assert!(seg < num_segments);
                }
                // SAFETY: tiles write disjoint ranges [lo, hi).
                unsafe { shared.write_unchecked(i, seg as u32) };
            }
        });
        out
    }

    /// Interval expand: `out[i] = values[segment_of(i)]`.
    ///
    /// The moderngpu `interval_expand` — replicates one value per segment
    /// across that segment's items, load-balanced. `values.len()` must be
    /// `offsets.len() - 1`.
    ///
    /// # Panics
    /// Panics on the same conditions as [`Device::load_balanced_search`],
    /// or if `values` does not match the segment count.
    pub fn interval_expand<T>(&self, values: &[T], offsets: &[u32]) -> Vec<T>
    where
        T: Copy + Send + Sync + Default,
    {
        assert_eq!(
            values.len() + 1,
            offsets.len(),
            "interval_expand: values/offsets mismatch"
        );
        let seg_of = self.load_balanced_search(offsets);
        self.capture_read(values);
        self.alloc_map(seg_of.len(), |i| values[seg_of[i] as usize])
    }

    /// Vectorized sorted search: lower bound of every needle in `haystack`.
    ///
    /// Both inputs must be sorted. Returns, for each `needles[i]`, the first
    /// index `j` with `haystack[j] >= needles[i]` (i.e. `lower_bound`).
    /// Linear-work co-iteration over tiles of needles, one binary search per
    /// tile — O(needles + haystack/tiles·log) instead of a binary search per
    /// needle; this is moderngpu's `sorted_search` specialization.
    ///
    /// # Panics
    /// Debug builds panic if either input is unsorted.
    pub fn sorted_search_lower<T>(&self, needles: &[T], haystack: &[T]) -> Vec<u32>
    where
        T: Ord + Copy + Send + Sync,
    {
        debug_assert!(
            needles.windows(2).all(|w| w[0] <= w[1]),
            "sorted_search: needles not sorted"
        );
        debug_assert!(
            haystack.windows(2).all(|w| w[0] <= w[1]),
            "sorted_search: haystack not sorted"
        );
        let n = needles.len();
        let mut out = vec![0u32; n];
        if n == 0 {
            return out;
        }
        let tile = self.config().block_size.max(1);
        let tiles = n.div_ceil(tile);
        let _cap = self
            .cap_scope("sorted_search")
            .read(needles)
            .read(haystack)
            .write(&out[..]);
        let shared = SharedSlice::new(&mut out);
        self.for_each(tiles, |t| {
            let lo = t * tile;
            let hi = usize::min(lo + tile, n);
            // Start where the tile's first needle lands, then advance.
            let mut j = haystack.partition_point(|&h| h < needles[lo]);
            // The index addresses both needles and the absolute output
            // slot, so a range loop is the clearest form here.
            #[allow(clippy::needless_range_loop)]
            for i in lo..hi {
                while j < haystack.len() && haystack[j] < needles[i] {
                    j += 1;
                }
                // SAFETY: disjoint tile ranges.
                unsafe { shared.write_unchecked(i, j as u32) };
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new()
    }

    #[test]
    fn segment_of_basic() {
        let offsets = [0u32, 3, 3, 7, 10];
        assert_eq!(segment_of(&offsets, 0), 0);
        assert_eq!(segment_of(&offsets, 2), 0);
        // Item 3 skips the empty segment 1 and lands in segment 2.
        assert_eq!(segment_of(&offsets, 3), 2);
        assert_eq!(segment_of(&offsets, 6), 2);
        assert_eq!(segment_of(&offsets, 9), 3);
    }

    #[test]
    fn lbs_small_with_empty_segments() {
        let d = device();
        let offsets = [0u32, 2, 2, 5, 5, 6];
        let got = d.load_balanced_search(&offsets);
        assert_eq!(got, [0, 0, 2, 2, 2, 4]);
    }

    #[test]
    fn lbs_all_empty() {
        let d = device();
        let offsets = [0u32, 0, 0, 0];
        assert!(d.load_balanced_search(&offsets).is_empty());
    }

    #[test]
    fn lbs_single_giant_segment() {
        let d = device();
        let offsets = [0u32, 100_000];
        let got = d.load_balanced_search(&offsets);
        assert_eq!(got.len(), 100_000);
        assert!(got.iter().all(|&s| s == 0));
    }

    #[test]
    fn lbs_matches_naive_on_skewed_sizes() {
        let d = device();
        // Power-law-ish sizes: the exact shape LBS exists for.
        let sizes: Vec<u32> = (0..2000u32)
            .map(|i| if i % 97 == 0 { 500 } else { i % 4 })
            .collect();
        let mut offsets = vec![0u32];
        for &s in &sizes {
            offsets.push(offsets.last().unwrap() + s);
        }
        let got = d.load_balanced_search(&offsets);
        let mut expect = Vec::new();
        for (seg, &s) in sizes.iter().enumerate() {
            expect.extend(std::iter::repeat_n(seg as u32, s as usize));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn interval_expand_replicates() {
        let d = device();
        let offsets = [0u32, 1, 4, 4, 6];
        let values = [10u32, 20, 30, 40];
        assert_eq!(
            d.interval_expand(&values, &offsets),
            [10, 20, 20, 20, 40, 40]
        );
    }

    #[test]
    #[should_panic(expected = "values/offsets mismatch")]
    fn interval_expand_rejects_mismatch() {
        let d = device();
        d.interval_expand(&[1u32, 2], &[0u32, 1]);
    }

    #[test]
    fn sorted_search_matches_partition_point() {
        let d = device();
        let haystack: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let needles: Vec<u32> = (0..30_000).collect();
        let got = d.sorted_search_lower(&needles, &haystack);
        for (i, &g) in got.iter().enumerate() {
            let expect = haystack.partition_point(|&h| h < needles[i]) as u32;
            assert_eq!(g, expect, "needle {i}");
        }
    }

    #[test]
    fn sorted_search_needles_beyond_haystack() {
        let d = device();
        let haystack = [5u32, 6, 7];
        let needles = [0u32, 5, 7, 8, 100];
        assert_eq!(d.sorted_search_lower(&needles, &haystack), [0, 0, 2, 3, 3]);
    }

    #[test]
    fn sorted_search_empty_haystack() {
        let d = device();
        let needles = [1u32, 2, 3];
        assert_eq!(d.sorted_search_lower(&needles, &[]), [0, 0, 0]);
    }

    #[test]
    fn lbs_is_non_decreasing_and_consistent_with_offsets() {
        let d = device();
        let sizes = [7u32, 0, 1, 9999, 3, 0, 0, 12, 1, 1];
        let mut offsets = vec![0u32];
        for &s in &sizes {
            offsets.push(offsets.last().unwrap() + s);
        }
        let got = d.load_balanced_search(&offsets);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        for (i, &seg) in got.iter().enumerate() {
            let (s, e) = (offsets[seg as usize], offsets[seg as usize + 1]);
            assert!((s as usize) <= i && i < e as usize);
        }
    }
}
