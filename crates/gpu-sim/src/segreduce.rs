//! Segmented reduction — the `moderngpu segreduce` substitute.
//!
//! The Tarjan–Vishkin implementation uses segmented reduction to compute,
//! for every node, the minimum and maximum preorder number among its
//! non-tree neighbors (§4.1). Segments are described CSR-style by an
//! `offsets` array of `num_segments + 1` boundaries into `values`.
//!
//! Load balancing note: each segment is reduced by one virtual thread. For
//! power-law degree graphs a hub segment can dominate a block; the grids the
//! workspace runs keep total per-block work bounded by the block's summed
//! degrees, which matches the behaviour (not the micro-optimizations) of
//! GPU segreduce kernels.

use crate::arena::ArenaPod;
use crate::device::Device;

impl Device {
    /// Reduces each segment `values[offsets[s] .. offsets[s+1]]` with `op`.
    /// Empty segments yield `identity`.
    ///
    /// # Panics
    /// Panics if `offsets` is empty, non-monotone, or its last entry does
    /// not equal `values.len()`.
    pub fn segmented_reduce<T, F>(
        &self,
        values: &[T],
        offsets: &[u32],
        identity: T,
        op: F,
    ) -> Vec<T>
    where
        T: Copy + Send + Sync + Default,
        F: Fn(T, T) -> T + Sync,
    {
        assert!(
            !offsets.is_empty(),
            "segreduce: offsets must contain at least one boundary"
        );
        let mut out = vec![T::default(); offsets.len() - 1];
        self.segmented_reduce_into(values, offsets, identity, op, &mut out);
        out
    }

    /// [`Device::segmented_reduce`] into a caller buffer of
    /// `offsets.len() - 1` elements — the zero-allocation variant.
    ///
    /// # Panics
    /// As [`Device::segmented_reduce`], plus a length check on `out`.
    pub fn segmented_reduce_into<T, F>(
        &self,
        values: &[T],
        offsets: &[u32],
        identity: T,
        op: F,
        out: &mut [T],
    ) where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        assert_eq!(
            *offsets
                .last()
                .expect("segreduce: offsets must contain at least one boundary")
                as usize,
            values.len(),
            "segreduce: last offset must equal values.len()"
        );
        self.capture_read(values);
        self.map_segmented_reduce_into(offsets, identity, |slot| values[slot], op, out);
    }

    /// Fused gather + segmented reduce: reduces, for each segment `s`, the
    /// generated values `gen(offsets[s]) .. gen(offsets[s+1])` — without
    /// materializing the per-slot value array. This is the paper's
    /// "per-node extremes of non-tree neighbor preorders" shape: the CSR
    /// adjacency provides the segments and `gen` computes each slot's
    /// contribution on the fly.
    ///
    /// # Panics
    /// Panics if `offsets` is empty or non-monotone, or if
    /// `out.len() + 1 != offsets.len()`.
    pub fn map_segmented_reduce_into<T, G, F>(
        &self,
        offsets: &[u32],
        identity: T,
        gen: G,
        op: F,
        out: &mut [T],
    ) where
        T: Copy + Send + Sync,
        G: Fn(usize) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        assert!(
            !offsets.is_empty(),
            "segreduce: offsets must contain at least one boundary"
        );
        let segments = offsets.len() - 1;
        assert_eq!(out.len(), segments, "segreduce: output length mismatch");
        self.metrics().record_primitive();
        let slots = *offsets.last().unwrap() as u64;
        self.metrics().record_traffic(
            slots * size_of::<T>() as u64 + (offsets.len() as u64) * 4,
            (segments * size_of::<T>()) as u64,
        );
        let _cap = self
            .cap_scope("segreduce")
            .fused()
            .read(offsets)
            .write(&*out);
        self.map(out, |s| {
            let start = offsets[s] as usize;
            let end = offsets[s + 1] as usize;
            assert!(start <= end, "segreduce: offsets must be monotone");
            let mut acc = identity;
            for slot in start..end {
                acc = op(acc, gen(slot));
            }
            acc
        });
    }

    /// Per-segment minimum of `u32` values (`u32::MAX` for empty segments).
    pub fn segmented_min_u32(&self, values: &[u32], offsets: &[u32]) -> Vec<u32> {
        self.segmented_reduce(values, offsets, u32::MAX, |a, b| a.min(b))
    }

    /// Per-segment maximum of `u32` values (`0` for empty segments).
    pub fn segmented_max_u32(&self, values: &[u32], offsets: &[u32]) -> Vec<u32> {
        self.segmented_reduce(values, offsets, 0u32, |a, b| a.max(b))
    }

    /// Per-segment inclusive scan — the `moderngpu segscan` substitute.
    ///
    /// `out[i]` is the `op`-prefix (seeded with `identity`) of the segment
    /// containing `i`, up to and including `i`. Implemented as the classic
    /// *flagged scan*: the fused map-scan runs over `(head_flag, value)`
    /// pairs whose combiner resets accumulation at segment heads — head
    /// flags being the associativity trick that makes segmented scans a
    /// single unsegmented scan. Head flags and the pair array come from
    /// the device arena.
    ///
    /// # Panics
    /// Same contract as [`Device::segmented_reduce`].
    pub fn segmented_scan_inclusive<T, F>(
        &self,
        values: &[T],
        offsets: &[u32],
        identity: T,
        op: F,
    ) -> Vec<T>
    where
        T: ArenaPod + Default,
        F: Fn(T, T) -> T + Sync,
    {
        assert!(
            !offsets.is_empty(),
            "segscan: offsets must contain at least one boundary"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            values.len(),
            "segscan: last offset must equal values.len()"
        );
        let n = values.len();
        if n == 0 {
            return Vec::new();
        }
        // Head flags (1 at the first slot of every non-empty segment).
        // Traffic: the flag array is written once and each boundary is read
        // once; the flagged pair scan below accounts for itself.
        self.metrics()
            .record_traffic((offsets.len() as u64) * 4, 4 * n as u64);
        let mut head = self.alloc_filled(n, 0u32);
        for w in offsets.windows(2) {
            if w[0] < w[1] {
                head[w[0] as usize] = 1;
            }
        }
        debug_assert_eq!(head[0], 1, "first non-empty segment must start at 0");
        let head = &head;
        let mut scanned = self.alloc_pooled::<(u32, T)>(n);
        // The flagged pair scan reads the head flags and values through its
        // generator closure — invisible to the tracked layer, so declared.
        self.capture_read(&head[..]);
        self.capture_read(values);
        self.map_scan_inclusive_into(
            n,
            |i| (head[i], values[i]),
            &mut scanned,
            (0u32, identity),
            |a, b| {
                if b.0 == 1 {
                    b
                } else {
                    (a.0, op(a.1, b.1))
                }
            },
        );
        let scanned = &scanned;
        self.capture_read(&scanned[..]);
        // Unzip: one pair read and one value write per slot.
        self.metrics().record_traffic(
            (n * size_of::<(u32, T)>()) as u64,
            std::mem::size_of_val(values) as u64,
        );
        let mut out = vec![T::default(); n];
        self.map(&mut out, |i| scanned[i].1);
        out
    }

    /// Per-segment inclusive sums of `u64` values.
    pub fn segmented_add_scan_u64(&self, values: &[u64], offsets: &[u32]) -> Vec<u64> {
        self.segmented_scan_inclusive(values, offsets, 0u64, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;

    #[test]
    fn basic_segments() {
        let device = Device::new();
        let values = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let offsets = [0u32, 3, 3, 5, 8];
        let mins = device.segmented_min_u32(&values, &offsets);
        assert_eq!(mins, vec![1, u32::MAX, 1, 2]);
        let maxs = device.segmented_max_u32(&values, &offsets);
        assert_eq!(maxs, vec![4, 0, 5, 9]);
    }

    #[test]
    fn sum_segments_large() {
        let device = Device::new();
        // 10_000 segments of length 5 each.
        let values: Vec<u32> = (0..50_000).map(|i| (i % 7) as u32).collect();
        let offsets: Vec<u32> = (0..=10_000u32).map(|s| s * 5).collect();
        let sums = device.segmented_reduce(&values, &offsets, 0u32, |a, b| a + b);
        for (s, &sum) in sums.iter().enumerate() {
            let expect: u32 = (0..5).map(|j| ((s * 5 + j) % 7) as u32).sum();
            assert_eq!(sum, expect);
        }
    }

    #[test]
    fn single_segment_covers_all() {
        let device = Device::new();
        let values: Vec<u32> = (0..1000).collect();
        let offsets = [0u32, 1000];
        let out = device.segmented_max_u32(&values, &offsets);
        assert_eq!(out, vec![999]);
    }

    #[test]
    fn zero_segments() {
        let device = Device::new();
        let out = device.segmented_min_u32(&[], &[0]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn mismatched_offsets_panic() {
        let device = Device::new();
        let _ = device.segmented_min_u32(&[1, 2, 3], &[0, 2]);
    }

    #[test]
    fn skewed_segments() {
        let device = Device::new();
        // One hub segment of 90_000 values plus many singletons.
        let mut values: Vec<u32> = (0..90_000).collect();
        values.extend(0..10_000u32);
        let mut offsets = vec![0u32, 90_000];
        offsets.extend((1..=10_000u32).map(|i| 90_000 + i));
        let mins = device.segmented_min_u32(&values, &offsets);
        assert_eq!(mins[0], 0);
        assert_eq!(mins.len(), 10_001);
        assert_eq!(mins[1], 0);
        assert_eq!(mins[10_000], 9_999);
    }

    #[test]
    fn segscan_small_example() {
        let device = Device::new();
        let values = [1u64, 2, 3, 4, 5, 6];
        let offsets = [0u32, 2, 2, 5, 6];
        let got = device.segmented_add_scan_u64(&values, &offsets);
        assert_eq!(got, [1, 3, 3, 7, 12, 6]);
    }

    #[test]
    fn segscan_single_segment_equals_global_scan() {
        let device = Device::new();
        let values: Vec<u64> = (0..50_000).map(|i| i % 17).collect();
        let offsets = [0u32, 50_000];
        let got = device.segmented_add_scan_u64(&values, &offsets);
        let expect = device.add_scan_inclusive_u64(&values);
        assert_eq!(got, expect);
    }

    #[test]
    fn segscan_all_singletons_is_identity_copy() {
        let device = Device::new();
        let values: Vec<u64> = (0..10_000).collect();
        let offsets: Vec<u32> = (0..=10_000).collect();
        let got = device.segmented_add_scan_u64(&values, &offsets);
        assert_eq!(got, values);
    }

    #[test]
    fn segscan_matches_per_segment_reference() {
        let device = Device::new();
        // Irregular sizes including empties.
        let sizes = [0u32, 3, 1, 0, 7, 2, 0, 0, 11, 1];
        let mut offsets = vec![0u32];
        for &s in &sizes {
            offsets.push(offsets.last().unwrap() + s);
        }
        let n = *offsets.last().unwrap() as usize;
        let values: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
        let got = device.segmented_add_scan_u64(&values, &offsets);
        for w in offsets.windows(2) {
            let mut acc = 0;
            for i in w[0] as usize..w[1] as usize {
                acc += values[i];
                assert_eq!(got[i], acc);
            }
        }
    }

    #[test]
    fn segscan_empty_values() {
        let device = Device::new();
        let got = device.segmented_add_scan_u64(&[], &[0, 0, 0]);
        assert!(got.is_empty());
    }

    #[test]
    fn segscan_generic_max() {
        let device = Device::new();
        let values = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let offsets = [0u32, 4, 8];
        let got = device.segmented_scan_inclusive(&values, &offsets, 0u32, |a, b| a.max(b));
        assert_eq!(got, [3, 3, 4, 4, 5, 9, 9, 9]);
    }
}
