//! Parallel merge and merge-based sorting — the moderngpu `merge` /
//! `mergesort` primitives.
//!
//! The radix sort in [`crate::sort`] covers the integer keys that dominate
//! the paper's pipelines (DCEL construction packs edge endpoints into `u64`
//! keys). moderngpu additionally ships a comparison-based merge and
//! mergesort, which the library exposes for key types without a radix
//! decomposition. Both are implemented here with the classic *merge path*
//! partitioning [Green, McColl, Bader 2012]: the output is cut into
//! equal-sized tiles, and one diagonal binary search per tile finds the
//! split points in the two inputs, so every tile merges an independent pair
//! of input ranges sequentially. This is exactly how GPU merges assign one
//! tile per thread block.

use crate::device::Device;

/// Finds the merge-path split point for diagonal `d`.
///
/// Returns `i` such that a stable merge of `a[..i]` and `b[..d - i]`
/// produces the first `d` output elements (ties are taken from `a` first).
/// `d` must be at most `a.len() + b.len()`.
fn merge_path<T: Ord>(a: &[T], b: &[T], d: usize) -> usize {
    debug_assert!(d <= a.len() + b.len());
    let mut lo = d.saturating_sub(b.len());
    let mut hi = usize::min(d, a.len());
    // Invariant: the split lies in [lo, hi].
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = d - i - 1;
        // Stable: a[i] goes before b[j] when a[i] <= b[j].
        if a[i] <= b[j] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    lo
}

/// Sequentially merges `a` and `b` into `out` (stable: ties from `a` first).
fn merge_serial<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Sequentially merges keyed pairs (stable on keys, ties from `a` first).
#[allow(clippy::too_many_arguments)]
fn merge_pairs_serial<K: Ord + Copy, V: Copy>(
    ka: &[K],
    va: &[V],
    kb: &[K],
    vb: &[V],
    out_k: &mut [K],
    out_v: &mut [V],
) {
    let (mut i, mut j) = (0, 0);
    for s in 0..out_k.len() {
        if i < ka.len() && (j >= kb.len() || ka[i] <= kb[j]) {
            out_k[s] = ka[i];
            out_v[s] = va[i];
            i += 1;
        } else {
            out_k[s] = kb[j];
            out_v[s] = vb[j];
            j += 1;
        }
    }
}

impl Device {
    /// Merges two sorted slices into a fresh sorted vector.
    ///
    /// Stable in the moderngpu sense: equal elements keep their input order,
    /// with all of `a`'s copies before `b`'s. One merge-path binary search
    /// per output tile, then independent sequential tile merges — O(n + m)
    /// work, O(log(n + m)) depth.
    ///
    /// # Panics
    /// Debug builds panic if either input is not sorted.
    pub fn merge<T>(&self, a: &[T], b: &[T]) -> Vec<T>
    where
        T: Ord + Copy + Send + Sync + Default,
    {
        debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "merge: a not sorted");
        debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "merge: b not sorted");
        self.metrics().record_primitive();
        let n = a.len() + b.len();
        let mut out = vec![T::default(); n];
        if n == 0 {
            return out;
        }
        // Every input element is read once by its tile merge and every
        // output slot written once; the O(tiles · log n) diagonal-search
        // probes are grid bookkeeping, not data-plane traffic.
        let bytes = (n * size_of::<T>()) as u64;
        self.metrics().record_traffic(bytes, bytes);
        let tile = self.config().block_size.max(1);
        let tiles = n.div_ceil(tile);
        // One diagonal search per tile boundary. The searches are
        // independent, so they form a single kernel launch; the tile merges
        // form a second one. out is written by disjoint tiles.
        self.capture_read(a);
        self.capture_read(b);
        let splits = self.alloc_map(tiles + 1, |t| {
            let d = usize::min(t * tile, n);
            merge_path(a, b, d) as u32
        });
        let _cap = self
            .cap_scope("merge")
            .read(a)
            .read(b)
            .read(&splits[..])
            .write(&out[..]);
        let shared = crate::device::SharedSlice::new(&mut out);
        self.for_each(tiles, |t| {
            let d0 = t * tile;
            let d1 = usize::min(d0 + tile, n);
            let (i0, i1) = (splits[t] as usize, splits[t + 1] as usize);
            let (j0, j1) = (d0 - i0, d1 - i1);
            let mut buf = vec![T::default(); d1 - d0];
            merge_serial(&a[i0..i1], &b[j0..j1], &mut buf);
            for (off, v) in buf.into_iter().enumerate() {
                // SAFETY: tiles cover disjoint output ranges [d0, d1).
                unsafe { shared.write_unchecked(d0 + off, v) };
            }
        });
        out
    }

    /// Merges two sorted key/value sequences into fresh sorted vectors.
    ///
    /// The values ride along with their keys; ordering and stability are as
    /// in [`Device::merge`].
    ///
    /// # Panics
    /// Panics if `ka.len() != va.len()` or `kb.len() != vb.len()`.
    pub fn merge_pairs<K, V>(&self, ka: &[K], va: &[V], kb: &[K], vb: &[V]) -> (Vec<K>, Vec<V>)
    where
        K: Ord + Copy + Send + Sync + Default,
        V: Copy + Send + Sync + Default,
    {
        assert_eq!(ka.len(), va.len(), "merge_pairs: a key/value mismatch");
        assert_eq!(kb.len(), vb.len(), "merge_pairs: b key/value mismatch");
        self.metrics().record_primitive();
        let n = ka.len() + kb.len();
        let mut out_k = vec![K::default(); n];
        let mut out_v = vec![V::default(); n];
        if n == 0 {
            return (out_k, out_v);
        }
        let bytes = (n * (size_of::<K>() + size_of::<V>())) as u64;
        self.metrics().record_traffic(bytes, bytes);
        let tile = self.config().block_size.max(1);
        let tiles = n.div_ceil(tile);
        self.capture_read(ka);
        self.capture_read(kb);
        let splits = self.alloc_map(tiles + 1, |t| {
            let d = usize::min(t * tile, n);
            merge_path(ka, kb, d) as u32
        });
        let _cap = self
            .cap_scope("merge")
            .read(ka)
            .read(va)
            .read(kb)
            .read(vb)
            .read(&splits[..])
            .write(&out_k[..])
            .write(&out_v[..]);
        let sk = crate::device::SharedSlice::new(&mut out_k);
        let sv = crate::device::SharedSlice::new(&mut out_v);
        self.for_each(tiles, |t| {
            let d0 = t * tile;
            let d1 = usize::min(d0 + tile, n);
            let (i0, i1) = (splits[t] as usize, splits[t + 1] as usize);
            let (j0, j1) = (d0 - i0, d1 - i1);
            let mut bk = vec![K::default(); d1 - d0];
            let mut bv = vec![V::default(); d1 - d0];
            merge_pairs_serial(
                &ka[i0..i1],
                &va[i0..i1],
                &kb[j0..j1],
                &vb[j0..j1],
                &mut bk,
                &mut bv,
            );
            for off in 0..(d1 - d0) {
                // SAFETY: tiles cover disjoint output ranges.
                unsafe {
                    sk.write_unchecked(d0 + off, bk[off]);
                    sv.write_unchecked(d0 + off, bv[off]);
                }
            }
        });
        (out_k, out_v)
    }

    /// Sorts a slice with a parallel bottom-up mergesort.
    ///
    /// Comparison-based counterpart to the radix sort in [`crate::sort`],
    /// for key types without a radix decomposition. Runs of `block_size`
    /// elements are sorted independently (the CTA-local sort of a GPU
    /// mergesort), then pairs of runs are merged with [`Device::merge`]'s
    /// tile scheme until one run remains. Stable. O(n log n) work,
    /// O(log² n) depth.
    pub fn merge_sort<T>(&self, data: &mut Vec<T>)
    where
        T: Ord + Copy + Send + Sync + Default,
    {
        self.metrics().record_primitive();
        let n = data.len();
        if n <= 1 {
            return;
        }
        let run = self.config().block_size.max(1);
        let bytes = (n * size_of::<T>()) as u64;
        // Phase 1: independent run sorts (one launch, in-place read+write).
        self.metrics().record_traffic(bytes, bytes);
        {
            let runs = n.div_ceil(run);
            let _cap = self
                .cap_scope("mergesort.runs")
                .read(&data[..])
                .write(&data[..]);
            let shared = crate::device::SharedSlice::new(data.as_mut_slice());
            self.for_each(runs, |r| {
                let lo = r * run;
                let hi = usize::min(lo + run, n);
                // SAFETY: runs are disjoint; each virtual thread owns
                // data[lo..hi] exclusively for this launch.
                let slice =
                    unsafe { std::slice::from_raw_parts_mut(shared.as_ptr().add(lo), hi - lo) };
                slice.sort_unstable();
            });
        }
        // Phase 2: log(n/run) rounds of pairwise run merges.
        let mut width = run;
        while width < n {
            // Each round streams the whole array out of place.
            self.metrics().record_traffic(bytes, bytes);
            let mut next = vec![T::default(); n];
            let pairs = n.div_ceil(2 * width);
            // Copy-through for a trailing lone run happens naturally: its
            // "b" side is empty.
            let src = &*data;
            let _cap = self
                .cap_scope("mergesort.merge")
                .read(&src[..])
                .write(&next[..]);
            let shared = crate::device::SharedSlice::new(&mut next);
            self.for_each(pairs, |p| {
                let lo = p * 2 * width;
                let mid = usize::min(lo + width, n);
                let hi = usize::min(lo + 2 * width, n);
                let mut buf = vec![T::default(); hi - lo];
                merge_serial(&src[lo..mid], &src[mid..hi], &mut buf);
                for (off, v) in buf.into_iter().enumerate() {
                    // SAFETY: pair p exclusively owns next[lo..hi].
                    unsafe { shared.write_unchecked(lo + off, v) };
                }
            });
            *data = next;
            width *= 2;
        }
    }

    /// Sorts key/value pairs by key with a parallel stable mergesort.
    ///
    /// # Panics
    /// Panics if `keys.len() != vals.len()`.
    pub fn merge_sort_pairs<K, V>(&self, keys: &mut Vec<K>, vals: &mut Vec<V>)
    where
        K: Ord + Copy + Send + Sync + Default,
        V: Copy + Send + Sync + Default,
    {
        assert_eq!(keys.len(), vals.len(), "merge_sort_pairs: length mismatch");
        self.metrics().record_primitive();
        let n = keys.len();
        if n <= 1 {
            return;
        }
        let run = self.config().block_size.max(1);
        let bytes = (n * (size_of::<K>() + size_of::<V>())) as u64;
        self.metrics().record_traffic(bytes, bytes);
        {
            let runs = n.div_ceil(run);
            let _cap = self
                .cap_scope("mergesort.runs")
                .read(&keys[..])
                .write(&keys[..])
                .read(&vals[..])
                .write(&vals[..]);
            let sk = crate::device::SharedSlice::new(keys.as_mut_slice());
            let sv = crate::device::SharedSlice::new(vals.as_mut_slice());
            self.for_each(runs, |r| {
                let lo = r * run;
                let hi = usize::min(lo + run, n);
                // SAFETY: disjoint runs, as in merge_sort.
                let (ks, vs) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(sk.as_ptr().add(lo), hi - lo),
                        std::slice::from_raw_parts_mut(sv.as_ptr().add(lo), hi - lo),
                    )
                };
                // Stable index sort of the run, then apply the permutation.
                let mut idx: Vec<u32> = (0..(hi - lo) as u32).collect();
                idx.sort_by_key(|&i| ks[i as usize]);
                let ks_old: Vec<K> = ks.to_vec();
                let vs_old: Vec<V> = vs.to_vec();
                for (dst, &i) in idx.iter().enumerate() {
                    ks[dst] = ks_old[i as usize];
                    vs[dst] = vs_old[i as usize];
                }
            });
        }
        let mut width = run;
        while width < n {
            self.metrics().record_traffic(bytes, bytes);
            let mut next_k = vec![K::default(); n];
            let mut next_v = vec![V::default(); n];
            let pairs = n.div_ceil(2 * width);
            let (ks, vs) = (&*keys, &*vals);
            let _cap = self
                .cap_scope("mergesort.merge")
                .read(&ks[..])
                .read(&vs[..])
                .write(&next_k[..])
                .write(&next_v[..]);
            let sk = crate::device::SharedSlice::new(&mut next_k);
            let sv = crate::device::SharedSlice::new(&mut next_v);
            self.for_each(pairs, |p| {
                let lo = p * 2 * width;
                let mid = usize::min(lo + width, n);
                let hi = usize::min(lo + 2 * width, n);
                let mut bk = vec![K::default(); hi - lo];
                let mut bv = vec![V::default(); hi - lo];
                merge_pairs_serial(
                    &ks[lo..mid],
                    &vs[lo..mid],
                    &ks[mid..hi],
                    &vs[mid..hi],
                    &mut bk,
                    &mut bv,
                );
                for off in 0..(hi - lo) {
                    // SAFETY: pair p exclusively owns [lo, hi).
                    unsafe {
                        sk.write_unchecked(lo + off, bk[off]);
                        sv.write_unchecked(lo + off, bv[off]);
                    }
                }
            });
            *keys = next_k;
            *vals = next_v;
            width *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn device() -> Device {
        Device::new()
    }

    #[test]
    fn merge_path_splits_are_monotone() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [2u32, 4, 6, 8];
        let mut prev = 0;
        for d in 0..=a.len() + b.len() {
            let i = merge_path(&a, &b, d);
            assert!(i >= prev);
            assert!(i <= a.len() && d - i <= b.len());
            prev = i;
        }
    }

    #[test]
    fn merge_interleaved() {
        let d = device();
        let a: Vec<u32> = (0..1000).map(|i| 2 * i).collect();
        let b: Vec<u32> = (0..1000).map(|i| 2 * i + 1).collect();
        let m = d.merge(&a, &b);
        let expect: Vec<u32> = (0..2000).collect();
        assert_eq!(m, expect);
    }

    #[test]
    fn merge_empty_sides() {
        let d = device();
        let a: Vec<u32> = (0..100).collect();
        assert_eq!(d.merge(&a, &[]), a);
        assert_eq!(d.merge(&[], &a), a);
        assert_eq!(d.merge::<u32>(&[], &[]), Vec::<u32>::new());
    }

    #[test]
    fn merge_all_duplicates() {
        let d = device();
        let a = vec![5u32; 5000];
        let b = vec![5u32; 3000];
        let m = d.merge(&a, &b);
        assert_eq!(m.len(), 8000);
        assert!(m.iter().all(|&x| x == 5));
    }

    #[test]
    fn merge_matches_std_on_random_input() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let mut a: Vec<u64> = (0..9173).map(|_| rng.gen_range(0..500)).collect();
            let mut b: Vec<u64> = (0..12001).map(|_| rng.gen_range(0..500)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let got = d.merge(&a, &b);
            let mut expect = a.clone();
            expect.extend_from_slice(&b);
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn merge_pairs_is_stable() {
        let d = device();
        // Equal keys: a's values (tagged 0) must precede b's (tagged 1).
        let ka = vec![7u32; 4000];
        let va = vec![0u8; 4000];
        let kb = vec![7u32; 4000];
        let vb = vec![1u8; 4000];
        let (k, v) = d.merge_pairs(&ka, &va, &kb, &vb);
        assert!(k.iter().all(|&x| x == 7));
        assert!(v[..4000].iter().all(|&t| t == 0));
        assert!(v[4000..].iter().all(|&t| t == 1));
    }

    #[test]
    fn merge_sort_random() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<i64> = (0..50_000).map(|_| rng.gen_range(-1000..1000)).collect();
        let mut expect = data.clone();
        expect.sort();
        d.merge_sort(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn merge_sort_already_sorted_and_reverse() {
        let d = device();
        let mut asc: Vec<u32> = (0..30_000).collect();
        let expect = asc.clone();
        d.merge_sort(&mut asc);
        assert_eq!(asc, expect);
        let mut desc: Vec<u32> = (0..30_000).rev().collect();
        d.merge_sort(&mut desc);
        assert_eq!(desc, expect);
    }

    #[test]
    fn merge_sort_tiny() {
        let d = device();
        let mut v: Vec<u32> = vec![];
        d.merge_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![3u32];
        d.merge_sort(&mut v);
        assert_eq!(v, [3]);
        let mut v = vec![2u32, 1];
        d.merge_sort(&mut v);
        assert_eq!(v, [1, 2]);
    }

    #[test]
    fn merge_sort_pairs_stable_permutation() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(99);
        // Few distinct keys so stability is observable: values record the
        // original index; within a key they must stay increasing.
        let mut keys: Vec<u32> = (0..40_000).map(|_| rng.gen_range(0..8)).collect();
        let orig = keys.clone();
        let mut vals: Vec<u32> = (0..40_000).collect();
        d.merge_sort_pairs(&mut keys, &mut vals);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        for w in vals.windows(2).zip(keys.windows(2)) {
            let (v, k) = w;
            if k[0] == k[1] {
                assert!(v[0] < v[1], "stability violated");
            }
        }
        // Values are a permutation consistent with the keys.
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(keys[i], orig[v as usize]);
        }
    }

    #[test]
    fn merge_sort_matches_radix_sort() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(3);
        let mut a: Vec<u64> = (0..25_000).map(|_| rng.gen()).collect();
        let mut b = a.clone();
        d.merge_sort(&mut a);
        d.sort_u64(&mut b);
        assert_eq!(a, b);
    }
}
